//! Execution statistics.
//!
//! The paper measures traversal strategies by (a) the number of SQL queries
//! executed (Figure 11, Table 4) and (b) the total time spent executing them
//! (Figures 12, 14, 15). [`ExecStats`] captures both for our engine.

use std::time::Duration;

/// Counters accumulated by an [`crate::Executor`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Number of query executions (each `exists`/`execute` call is one).
    pub queries: u64,
    /// Rows touched across all executions (scan + semi-join work).
    pub rows_examined: u64,
    /// Total wall-clock time spent inside executions.
    pub total_time: Duration,
}

impl ExecStats {
    /// Records one finished execution.
    pub fn record(&mut self, elapsed: Duration) {
        self.queries += 1;
        self.total_time += elapsed;
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &ExecStats) {
        self.queries += other.queries;
        self.rows_examined += other.rows_examined;
        self.total_time += other.total_time;
    }

    /// Mean time per query, or zero if none ran.
    pub fn mean_time(&self) -> Duration {
        if self.queries == 0 {
            Duration::ZERO
        } else {
            self.total_time / self.queries as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_merge() {
        let mut a = ExecStats::default();
        a.record(Duration::from_millis(10));
        a.record(Duration::from_millis(20));
        assert_eq!(a.queries, 2);
        assert_eq!(a.total_time, Duration::from_millis(30));
        assert_eq!(a.mean_time(), Duration::from_millis(15));

        let mut b = ExecStats { rows_examined: 5, ..ExecStats::default() };
        b.record(Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.queries, 3);
        assert_eq!(a.rows_examined, 5);
        assert_eq!(a.total_time, Duration::from_millis(35));
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(ExecStats::default().mean_time(), Duration::ZERO);
    }
}
