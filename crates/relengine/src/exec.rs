//! Join-tree execution: emptiness checks and bounded enumeration.
//!
//! Join networks are trees, so queries are acyclic and a single bottom-up
//! semi-join pass (Yannakakis) decides emptiness exactly: after reducing every
//! node against its children, a root row survives if and only if it extends to
//! a full match of the whole tree. Enumeration then proceeds top-down over the
//! reduced sets, with a result limit for early exit — aliveness only needs the
//! first tuple.

use std::collections::{HashMap, HashSet};
use std::time::Instant;

use crate::catalog::Database;
use crate::error::EngineError;
use crate::plan::JoinTreePlan;
use crate::stats::ExecStats;
use crate::table::{RowId, Table};

/// One result tuple: for each plan node (by index), the matched row id.
pub type MatchTuple = Vec<RowId>;

/// One enumeration step: `(node, parent, parent_col, join value → live rows)`.
type EnumStep = (usize, usize, usize, HashMap<i64, Vec<RowId>>);

/// The set of live rows at a plan node during reduction.
#[derive(Debug, Clone)]
enum LiveSet {
    /// Every row of the table is (still) live.
    All,
    /// Exactly these rows are live (ascending row ids).
    Rows(Vec<RowId>),
}

impl LiveSet {
    fn is_empty(&self, table: &Table) -> bool {
        match self {
            LiveSet::All => table.is_empty(),
            LiveSet::Rows(r) => r.is_empty(),
        }
    }
}

/// Membership test for "does the child have a live row with this join value".
enum ValueMembership<'a> {
    Indexed(&'a Table, usize),
    Set(HashSet<i64>),
}

impl ValueMembership<'_> {
    fn contains(&self, v: i64) -> bool {
        match self {
            ValueMembership::Indexed(t, col) => {
                t.lookup_indexed(*col, v).is_some_and(|rows| !rows.is_empty())
            }
            ValueMembership::Set(s) => s.contains(&v),
        }
    }
}

/// Executes join-tree plans against a database, counting every execution.
///
/// One call to [`Executor::exists`] or [`Executor::execute`] corresponds to
/// one "SQL query executed" in the paper's measurements.
pub struct Executor<'a> {
    db: &'a Database,
    stats: ExecStats,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `db`.
    pub fn new(db: &'a Database) -> Self {
        Executor { db, stats: ExecStats::default() }
    }

    /// Accumulated execution statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Folds another executor's statistics into this one's — how a pool
    /// owner merges the counts of per-worker executors after a parallel run.
    pub fn absorb_stats(&mut self, other: &ExecStats) {
        self.stats.merge(other);
    }

    /// The database this executor runs against.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Does the query return at least one tuple? (The paper's aliveness test.)
    pub fn exists(&mut self, plan: &JoinTreePlan) -> Result<bool, EngineError> {
        plan.validate(self.db)?;
        let start = Instant::now();
        let alive = self.reduce(plan)?.is_some();
        self.stats.record(start.elapsed());
        Ok(alive)
    }

    /// Evaluates the query, returning up to `limit` result tuples.
    ///
    /// Each tuple maps plan-node index to the matched row id. `limit == 0`
    /// means unlimited.
    pub fn execute(
        &mut self,
        plan: &JoinTreePlan,
        limit: usize,
    ) -> Result<Vec<MatchTuple>, EngineError> {
        plan.validate(self.db)?;
        let start = Instant::now();
        let result = match self.reduce(plan)? {
            None => Vec::new(),
            Some(live) => self.enumerate(plan, live, limit),
        };
        self.stats.record(start.elapsed());
        Ok(result)
    }

    /// Counts result tuples, up to `cap` (0 = exact count, unbounded).
    pub fn count(&mut self, plan: &JoinTreePlan, cap: usize) -> Result<usize, EngineError> {
        Ok(self.execute(plan, cap)?.len())
    }

    /// Bottom-up semi-join reduction rooted at node 0. Returns `None` as soon
    /// as any live set empties (the query is dead), otherwise the fully
    /// reduced live sets.
    fn reduce(&mut self, plan: &JoinTreePlan) -> Result<Option<Vec<LiveSet>>, EngineError> {
        let n = plan.node_count();
        let mut live: Vec<LiveSet> = Vec::with_capacity(n);
        // Initial per-node filtering: candidates ∩ predicate.
        for node in plan.nodes() {
            let table = self.db.table(node.table);
            let set = match (&node.candidates, node.predicate.is_true()) {
                (None, true) => LiveSet::All,
                (None, false) => {
                    let mut rows = Vec::new();
                    for (rid, row) in table.iter() {
                        self.stats.rows_examined += 1;
                        if node.predicate.eval(table.schema(), row) {
                            rows.push(rid);
                        }
                    }
                    LiveSet::Rows(rows)
                }
                (Some(cands), _) => {
                    let mut rows = Vec::with_capacity(cands.len());
                    for &rid in cands {
                        if (rid as usize) >= table.len() {
                            return Err(EngineError::InvalidPlan(format!(
                                "candidate row {rid} out of range for table `{}`",
                                table.schema().name
                            )));
                        }
                        self.stats.rows_examined += 1;
                        if node.predicate.eval(table.schema(), table.row(rid)) {
                            rows.push(rid);
                        }
                    }
                    LiveSet::Rows(rows)
                }
            };
            if set.is_empty(table) {
                return Ok(None);
            }
            live.push(set);
        }

        // Children-before-parent semi-joins.
        for (node, parent_edge, parent) in plan.post_order(0) {
            if parent == usize::MAX {
                continue; // root has no parent to reduce
            }
            let edge = plan.edges()[parent_edge];
            let (child_col, parent_col) = if edge.a == node {
                (edge.a_col, edge.b_col)
            } else {
                (edge.b_col, edge.a_col)
            };
            let child_table = self.db.table(plan.nodes()[node].table);
            let membership = match &live[node] {
                LiveSet::Rows(rows) => {
                    let mut s = HashSet::with_capacity(rows.len());
                    for &rid in rows {
                        if let Some(v) = child_table.row(rid)[child_col].as_int() {
                            s.insert(v);
                        }
                    }
                    ValueMembership::Set(s)
                }
                LiveSet::All => {
                    if child_table.has_index(child_col) {
                        ValueMembership::Indexed(child_table, child_col)
                    } else {
                        let mut s = HashSet::new();
                        for (_, row) in child_table.iter() {
                            self.stats.rows_examined += 1;
                            if let Some(v) = row[child_col].as_int() {
                                s.insert(v);
                            }
                        }
                        ValueMembership::Set(s)
                    }
                }
            };
            let parent_table = self.db.table(plan.nodes()[parent].table);
            let filtered: Vec<RowId> = match &live[parent] {
                LiveSet::All => parent_table
                    .iter()
                    .filter(|(_, row)| {
                        row[parent_col].as_int().is_some_and(|v| membership.contains(v))
                    })
                    .map(|(rid, _)| rid)
                    .collect(),
                LiveSet::Rows(rows) => rows
                    .iter()
                    .copied()
                    .filter(|&rid| {
                        parent_table.row(rid)[parent_col]
                            .as_int()
                            .is_some_and(|v| membership.contains(v))
                    })
                    .collect(),
            };
            self.stats.rows_examined += filtered.len() as u64;
            if filtered.is_empty() {
                return Ok(None);
            }
            live[parent] = LiveSet::Rows(filtered);
        }
        Ok(Some(live))
    }

    /// Top-down enumeration over reduced live sets, rooted at node 0.
    ///
    /// Nodes are assigned in pre-order (parent before child), so the only
    /// constraint on a node — the equi-join with its already-assigned parent —
    /// can be satisfied from a per-node `join value → live rows` map, and
    /// plain backtracking enumerates exactly the join results.
    fn enumerate(&mut self, plan: &JoinTreePlan, live: Vec<LiveSet>, limit: usize) -> Vec<MatchTuple> {
        let n = plan.node_count();
        // Materialize every live set.
        let rows_per_node: Vec<Vec<RowId>> = live
            .into_iter()
            .enumerate()
            .map(|(i, set)| match set {
                LiveSet::Rows(r) => r,
                LiveSet::All => {
                    let t = self.db.table(plan.nodes()[i].table);
                    (0..t.len() as RowId).collect()
                }
            })
            .collect();

        // Pre-order = reversed post-order; each entry is (node, parent_col,
        // by-value map of the node's live rows keyed on its own join column).
        let mut post = plan.post_order(0);
        post.reverse();
        let mut steps: Vec<EnumStep> = Vec::new();
        for &(node, parent_edge, parent) in &post {
            if parent == usize::MAX {
                continue;
            }
            let edge = plan.edges()[parent_edge];
            let (child_col, parent_col) = if edge.a == node {
                (edge.a_col, edge.b_col)
            } else {
                (edge.b_col, edge.a_col)
            };
            let table = self.db.table(plan.nodes()[node].table);
            let mut map: HashMap<i64, Vec<RowId>> = HashMap::new();
            for &rid in &rows_per_node[node] {
                if let Some(v) = table.row(rid)[child_col].as_int() {
                    map.entry(v).or_default().push(rid);
                }
            }
            steps.push((node, parent, parent_col, map));
        }

        let mut results = Vec::new();
        let mut assignment: Vec<RowId> = vec![0; n];
        for &root_row in &rows_per_node[0] {
            assignment[0] = root_row;
            if !self.backtrack(plan, &steps, 0, &mut assignment, &mut results, limit) {
                break;
            }
        }
        results
    }

    /// Assigns `steps[pos..]` in order; returns `false` once `limit` results
    /// have been collected.
    fn backtrack(
        &self,
        plan: &JoinTreePlan,
        steps: &[EnumStep],
        pos: usize,
        assignment: &mut Vec<RowId>,
        results: &mut Vec<MatchTuple>,
        limit: usize,
    ) -> bool {
        if pos == steps.len() {
            results.push(assignment.clone());
            return limit == 0 || results.len() < limit;
        }
        let (node, parent, parent_col, ref map) = steps[pos];
        let table = self.db.table(plan.nodes()[parent].table);
        let Some(v) = table.row(assignment[parent])[parent_col].as_int() else {
            return true; // null join value: no extension on this branch
        };
        let Some(rows) = map.get(&v) else {
            return true;
        };
        for &rid in rows {
            assignment[node] = rid;
            if !self.backtrack(plan, steps, pos + 1, assignment, results, limit) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::plan::{PlanEdge, PlanNode};
    use crate::predicate::Predicate;
    use crate::value::{DataType, Value};

    /// color(id, name); item(id, name, color_id); tag(id, item_id, label)
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("color")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("tag")
            .column("id", DataType::Int)
            .column("item_id", DataType::Int)
            .column("label", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        b.foreign_key("tag", "item_id", "item", "id").unwrap();
        let mut db = b.finish().unwrap();
        for (id, name) in [(1, "red"), (2, "yellow"), (3, "saffron")] {
            db.insert_values("color", vec![Value::Int(id), Value::text(name)]).unwrap();
        }
        for (id, name, cid) in [
            (1, "scented oil", 3),
            (2, "scented candle", 2),
            (3, "plain candle", 1),
        ] {
            db.insert_values("item", vec![Value::Int(id), Value::text(name), Value::Int(cid)])
                .unwrap();
        }
        for (id, iid, label) in [(1, 1, "luxury"), (2, 2, "gift"), (3, 2, "luxury")] {
            db.insert_values("tag", vec![Value::Int(id), Value::Int(iid), Value::text(label)])
                .unwrap();
        }
        db.finalize();
        db
    }

    fn plan2(db: &Database, item_kw: &str, color_kw: &str) -> JoinTreePlan {
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains(item_kw)),
                PlanNode::new(color, Predicate::any_text_contains(color_kw)),
            ],
            vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
        )
        .unwrap()
    }

    #[test]
    fn single_table_exists() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("candle"))],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).unwrap());
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("incense"))],
            vec![],
        )
        .unwrap();
        assert!(!ex.exists(&p).unwrap());
        assert_eq!(ex.stats().queries, 2);
    }

    #[test]
    fn two_way_join_alive_and_dead() {
        let db = db();
        let mut ex = Executor::new(&db);
        // "scented candle whose color is yellow" exists (item 2).
        assert!(ex.exists(&plan2(&db, "scented", "yellow")).unwrap());
        // "scented candle whose color is saffron": item 1 is saffron but is
        // an oil, not a candle; candle items are yellow/red.
        assert!(ex.exists(&plan2(&db, "scented", "saffron")).unwrap()); // scented oil is saffron
        assert!(!ex.exists(&plan2(&db, "candle", "saffron")).unwrap());
    }

    #[test]
    fn three_way_chain_join() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        let tag = db.table_id("tag").unwrap();
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::True),
                PlanNode::new(color, Predicate::any_text_contains("yellow")),
                PlanNode::new(tag, Predicate::any_text_contains("luxury")),
            ],
            vec![
                PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 },
                PlanEdge { a: 2, a_col: 1, b: 0, b_col: 0 },
            ],
        )
        .unwrap();
        // item 2 is yellow and tagged luxury.
        let tuples = ex.execute(&plan, 0).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0][0], 1); // item row id 1 == item id 2
    }

    #[test]
    fn enumeration_counts_cross_products_along_tree() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let tag = db.table_id("tag").unwrap();
        // item 2 has two tags -> two result tuples for "scented candle" + any tag.
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains("scented candle")),
                PlanNode::free(tag),
            ],
            vec![PlanEdge { a: 1, a_col: 1, b: 0, b_col: 0 }],
        )
        .unwrap();
        assert_eq!(ex.count(&plan, 0).unwrap(), 2);
        // Limit respected.
        assert_eq!(ex.execute(&plan, 1).unwrap().len(), 1);
    }

    #[test]
    fn candidates_prefilter() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        // Candidate list excludes the matching row: dead despite predicate match.
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("oil")).with_candidates(vec![1, 2])],
            vec![],
        )
        .unwrap();
        assert!(!ex.exists(&p).unwrap());
        // Candidate list includes it: alive.
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("oil")).with_candidates(vec![0])],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).unwrap());
    }

    #[test]
    fn candidate_out_of_range_is_error() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::True).with_candidates(vec![99])],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).is_err());
    }

    #[test]
    fn free_single_node_alive_iff_table_nonempty() {
        let mut b = DatabaseBuilder::new();
        b.table("empty").column("id", DataType::Int);
        let db = b.finish().unwrap();
        let mut ex = Executor::new(&db);
        let p = JoinTreePlan::new(vec![PlanNode::free(0)], vec![]).unwrap();
        assert!(!ex.exists(&p).unwrap());
    }

    #[test]
    fn null_fk_never_joins() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("id", DataType::Int).primary_key("id");
        b.table("b").column("id", DataType::Int).column("a_id", DataType::Int);
        b.foreign_key("b", "a_id", "a", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("a", vec![Value::Int(1)]).unwrap();
        db.insert_values("b", vec![Value::Int(1), Value::Null]).unwrap();
        db.finalize();
        let mut ex = Executor::new(&db);
        let p = JoinTreePlan::new(
            vec![PlanNode::free(0), PlanNode::free(1)],
            vec![PlanEdge { a: 1, a_col: 1, b: 0, b_col: 0 }],
        )
        .unwrap();
        assert!(!ex.exists(&p).unwrap());
    }

    #[test]
    fn self_join_same_table_two_instances() {
        // Two instances of `tag` joined through `item`: tags sharing an item.
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let tag = db.table_id("tag").unwrap();
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::free(item),
                PlanNode::new(tag, Predicate::any_text_contains("gift")),
                PlanNode::new(tag, Predicate::any_text_contains("luxury")),
            ],
            vec![
                PlanEdge { a: 1, a_col: 1, b: 0, b_col: 0 },
                PlanEdge { a: 2, a_col: 1, b: 0, b_col: 0 },
            ],
        )
        .unwrap();
        let tuples = ex.execute(&plan, 0).unwrap();
        // Item 2 carries both a gift and a luxury tag.
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0][1], 1); // tag row 1 = gift
        assert_eq!(tuples[0][2], 2); // tag row 2 = luxury on item 2
    }

    #[test]
    fn stats_accumulate_time() {
        let db = db();
        let mut ex = Executor::new(&db);
        ex.exists(&plan2(&db, "scented", "yellow")).unwrap();
        ex.exists(&plan2(&db, "scented", "yellow")).unwrap();
        assert_eq!(ex.stats().queries, 2);
        assert!(ex.stats().rows_examined > 0);
        ex.reset_stats();
        assert_eq!(ex.stats().queries, 0);
    }
}
