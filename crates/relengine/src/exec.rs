//! Join-tree execution: emptiness checks and bounded enumeration.
//!
//! Join networks are trees, so queries are acyclic and a single bottom-up
//! semi-join pass (Yannakakis) decides emptiness exactly: after reducing every
//! node against its children, a root row survives if and only if it extends to
//! a full match of the whole tree. Enumeration then proceeds top-down over the
//! reduced sets, with a result limit for early exit — aliveness only needs the
//! first tuple.
//!
//! Two cache-oriented extensions feed the cross-probe evaluation cache
//! (`kwdebug`'s session cache): plan nodes may carry a pre-verified shared
//! *selection* (the executor then skips predicate evaluation for that node)
//! and sorted join-value *constraints* standing in for pruned child subtrees;
//! [`Executor::exists_harvesting`] additionally reports, per requested node,
//! the sorted join-value set that survived that node's subtree reduction —
//! exactly the set a later probe can reuse as a constraint.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::catalog::{Database, TableId};
use crate::error::EngineError;
use crate::plan::{JoinTreePlan, PlanNode};
use crate::sortedvals::{intersect_sorted, normalize, ValuePostings};
use crate::stats::ExecStats;
use crate::table::{Row, RowId, Table};

/// One result tuple: for each plan node (by index), the matched row id.
pub type MatchTuple = Vec<RowId>;

/// Per-requested-node harvest output of [`Executor::exists_harvesting`]:
/// `Some(values)` when the subtree's surviving join-value set is known
/// (including the empty set when the subtree is known unsatisfiable),
/// `None` when the reduction never materialized it.
pub type HarvestOut = Vec<Option<Vec<i64>>>;

/// One enumeration step: `(node, parent, parent_col, join value → live rows)`.
type EnumStep = (usize, usize, usize, ValueRows);

/// A node's live rows grouped by join value, for enumeration: a map built by
/// reading each live row once, the shared postings of a still-untouched
/// cached selection, or — for a free unfiltered node — the table's own
/// column index. The latter two group with zero row reads.
enum ValueRows {
    Map(HashMap<i64, Vec<RowId>>),
    Postings(Arc<ValuePostings>),
    Indexed(TableId, usize),
}

impl ValueRows {
    fn rows_for<'a>(&'a self, db: &'a Database, v: i64) -> &'a [RowId] {
        match self {
            ValueRows::Map(m) => m.get(&v).map(Vec::as_slice).unwrap_or(&[]),
            ValueRows::Postings(p) => p.rows_for(v),
            ValueRows::Indexed(table, col) => {
                db.table(*table).lookup_indexed(*col, v).unwrap_or(&[])
            }
        }
    }
}

/// The set of live rows at a plan node during reduction.
#[derive(Debug, Clone)]
enum LiveSet {
    /// Every row of the table is (still) live.
    All,
    /// Exactly these rows are live (ascending row ids).
    Rows(Vec<RowId>),
    /// Exactly these rows are live, borrowed from a shared pre-verified
    /// selection — no copy is made until a semi-join actually filters it.
    Shared(Arc<Vec<RowId>>),
    /// Exactly the rows of `sel` whose value in `col` lies in the sorted
    /// `vals`. Built when a selection's only constrained column carries
    /// pre-extracted values ([`PlanNode::col_postings`]): `vals` is then the
    /// constraint ∩ the selection's distinct values, so every element is
    /// witnessed by a row and the set is empty iff no row survives. Rows are
    /// materialized only when a later step genuinely needs them.
    Deferred { sel: Arc<Vec<RowId>>, col: usize, vals: Vec<i64> },
}

impl LiveSet {
    fn is_empty(&self, table: &Table) -> bool {
        match self {
            LiveSet::All => table.is_empty(),
            LiveSet::Rows(r) => r.is_empty(),
            LiveSet::Shared(r) => r.is_empty(),
            LiveSet::Deferred { vals, .. } => vals.is_empty(),
        }
    }
}

/// The rows of `sel` whose `col` value is in sorted `vals` — materializing a
/// [`LiveSet::Deferred`]. Reads every selection row once.
fn deferred_rows(table: &Table, sel: &[RowId], col: usize, vals: &[i64]) -> Vec<RowId> {
    sel.iter()
        .copied()
        .filter(|&rid| {
            table.row(rid)[col].as_int().is_some_and(|v| vals.binary_search(&v).is_ok())
        })
        .collect()
}

/// Membership test for "does the child have a live row with this join value".
enum ValueMembership<'a> {
    Indexed(&'a Table, usize),
    Sorted(Vec<i64>),
    /// Pre-extracted values borrowed from the plan's `col_postings` — the
    /// untouched-selection case, where no row needs to be re-read.
    SortedRef(&'a [i64]),
}

impl ValueMembership<'_> {
    fn contains(&self, v: i64) -> bool {
        match self {
            ValueMembership::Indexed(t, col) => {
                t.lookup_indexed(*col, v).is_some_and(|rows| !rows.is_empty())
            }
            ValueMembership::Sorted(s) => s.binary_search(&v).is_ok(),
            ValueMembership::SortedRef(s) => s.binary_search(&v).is_ok(),
        }
    }

    fn as_sorted(&self) -> Option<&[i64]> {
        match self {
            ValueMembership::Indexed(..) => None,
            ValueMembership::Sorted(s) => Some(s),
            ValueMembership::SortedRef(s) => Some(s),
        }
    }
}

/// A node's merged join-value constraints: same-column sets are intersected
/// once (galloping) before the row loop, so each row pays one binary search
/// per distinct constrained column.
enum ConstraintSet<'p> {
    Borrowed(&'p [i64]),
    Owned(Vec<i64>),
}

impl ConstraintSet<'_> {
    fn as_slice(&self) -> &[i64] {
        match self {
            ConstraintSet::Borrowed(s) => s,
            ConstraintSet::Owned(v) => v,
        }
    }
}

fn merged_constraints(node: &PlanNode) -> Vec<(usize, ConstraintSet<'_>)> {
    let mut out: Vec<(usize, ConstraintSet<'_>)> = Vec::new();
    for (col, vals) in &node.constraints {
        if let Some(existing) = out.iter_mut().find(|(c, _)| c == col) {
            existing.1 = ConstraintSet::Owned(intersect_sorted(existing.1.as_slice(), vals));
        } else {
            out.push((*col, ConstraintSet::Borrowed(vals)));
        }
    }
    out
}

fn filter_rows(
    table: &Table,
    rows: &[RowId],
    col: usize,
    membership: &ValueMembership<'_>,
) -> Vec<RowId> {
    rows.iter()
        .copied()
        .filter(|&rid| table.row(rid)[col].as_int().is_some_and(|v| membership.contains(v)))
        .collect()
}

/// The ascending rows of `p` whose value lies in the sorted `vals` — a
/// semi-join answered purely from postings, with zero row reads. Iterates
/// whichever side is shorter; groups are disjoint so a final sort restores
/// row order without deduplication.
fn postings_semijoin(p: &ValuePostings, vals: &[i64]) -> Vec<RowId> {
    let mut out = Vec::new();
    if p.values().len() <= vals.len() {
        for (i, v) in p.values().iter().enumerate() {
            if vals.binary_search(v).is_ok() {
                out.extend_from_slice(p.rows_at(i));
            }
        }
    } else {
        for &v in vals {
            out.extend_from_slice(p.rows_for(v));
        }
    }
    out.sort_unstable();
    out
}

/// Two-pointer intersection of ascending row-id slices.
fn intersect_rows(a: &[RowId], b: &[RowId]) -> Vec<RowId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

fn row_passes(row: &Row, cons: &[(usize, ConstraintSet<'_>)]) -> bool {
    cons.iter().all(|(col, set)| {
        row.get(*col)
            .and_then(|v| v.as_int())
            .is_some_and(|v| set.as_slice().binary_search(&v).is_ok())
    })
}

/// Collects subtree value-sets during a harvesting reduction and attributes
/// deaths: when a node's live set empties, every enclosing subtree (the node
/// and its ancestors toward the root) is known unsatisfiable, so their
/// harvests are the empty set.
struct Harvester<'h> {
    /// `req_pos[node]` = index into `out`, or `usize::MAX` if not requested.
    req_pos: Vec<usize>,
    /// Rooted parent links (`usize::MAX` at the root).
    parent_of: Vec<usize>,
    out: &'h mut HarvestOut,
}

impl Harvester<'_> {
    fn record(&mut self, node: usize, values: &[i64]) {
        let p = self.req_pos[node];
        if p != usize::MAX {
            self.out[p] = Some(values.to_vec());
        }
    }

    fn mark_dead(&mut self, mut node: usize) {
        while node != usize::MAX {
            let p = self.req_pos[node];
            if p != usize::MAX {
                self.out[p] = Some(Vec::new());
            }
            node = self.parent_of[node];
        }
    }
}

/// Executes join-tree plans against a database, counting every execution.
///
/// One call to [`Executor::exists`] or [`Executor::execute`] corresponds to
/// one "SQL query executed" in the paper's measurements.
pub struct Executor<'a> {
    db: &'a Database,
    stats: ExecStats,
}

impl<'a> Executor<'a> {
    /// Creates an executor over `db`.
    pub fn new(db: &'a Database) -> Self {
        Executor { db, stats: ExecStats::default() }
    }

    /// Accumulated execution statistics.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Resets the statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = ExecStats::default();
    }

    /// Folds another executor's statistics into this one's — how a pool
    /// owner merges the counts of per-worker executors after a parallel run.
    pub fn absorb_stats(&mut self, other: &ExecStats) {
        self.stats.merge(other);
    }

    /// The database this executor runs against.
    pub fn database(&self) -> &'a Database {
        self.db
    }

    /// Answers a single-node plan without reading any rows, when the shape
    /// allows it: every constraint sits on one column `c`, and either
    ///
    /// * the node is selection-backed and the plan carries the selection's
    ///   distinct values in `c` ([`PlanNode::col_postings`]) — liveness is
    ///   `values(c) ∩ every constraint ≠ ∅`, a pure galloping intersection; or
    /// * the node is free (no predicate, no candidates) and `c` is indexed —
    ///   liveness is "some constrained value has an index posting".
    ///
    /// NULL join values are absent from value lists, constraint sets and
    /// index postings alike, matching the row-wise check (which rejects NULL
    /// too). `None` means the shape doesn't apply and the caller runs the
    /// normal reduction.
    fn single_node_fast(&self, plan: &JoinTreePlan) -> Option<bool> {
        if plan.node_count() != 1 {
            return None;
        }
        let node = &plan.nodes()[0];
        let (first, rest) = node.constraints.split_first()?;
        let col = first.0;
        if rest.iter().any(|(c, _)| *c != col) {
            return None;
        }
        let merged = || {
            let mut acc = ConstraintSet::Borrowed(&first.1);
            for (_, set) in rest {
                if acc.as_slice().is_empty() {
                    break;
                }
                acc = ConstraintSet::Owned(intersect_sorted(acc.as_slice(), set));
            }
            acc
        };
        if let Some(sel) = &node.selection {
            let vals =
                node.col_postings.iter().find(|(c, _)| *c == col).map(|(_, p)| p.values())?;
            if sel.is_empty() {
                return Some(false);
            }
            return Some(!intersect_sorted(vals, merged().as_slice()).is_empty());
        }
        if node.candidates.is_none() && node.predicate.is_true() {
            let table = self.db.table(node.table);
            if table.has_index(col) {
                let acc = merged();
                return Some(acc.as_slice().iter().any(|&v| {
                    table.lookup_indexed(col, v).is_some_and(|rows| !rows.is_empty())
                }));
            }
        }
        None
    }

    /// Does the query return at least one tuple? (The paper's aliveness test.)
    pub fn exists(&mut self, plan: &JoinTreePlan) -> Result<bool, EngineError> {
        plan.validate(self.db)?;
        let start = Instant::now();
        let alive = match self.single_node_fast(plan) {
            Some(a) => a,
            None => self.reduce(plan, None)?.is_some(),
        };
        self.stats.record(start.elapsed());
        Ok(alive)
    }

    /// [`Executor::exists`] that additionally harvests, for each plan node
    /// listed in `harvest`, the sorted set of distinct join values (on that
    /// node's column toward its parent in the tree rooted at node 0) whose
    /// rows survive the node's entire subtree reduction — the value-set a
    /// parent-side semi-join sees, and exactly what the cross-probe subtree
    /// cache stores. Output slots are `None` when the reduction never
    /// materialized the set (dead before reaching the node, or the node
    /// stayed unfiltered behind a column index); a `Some(empty)` slot is a
    /// proof that the subtree is unsatisfiable. Counts as one query in
    /// [`ExecStats`], identically to `exists`.
    pub fn exists_harvesting(
        &mut self,
        plan: &JoinTreePlan,
        harvest: &[usize],
    ) -> Result<(bool, HarvestOut), EngineError> {
        plan.validate(self.db)?;
        for &node in harvest {
            if node >= plan.node_count() || node == 0 {
                return Err(EngineError::InvalidPlan(format!(
                    "harvest node #{node} is out of range or the root"
                )));
            }
        }
        let start = Instant::now();
        let mut out: HarvestOut = vec![None; harvest.len()];
        // A single-node plan has nothing harvestable (the root never is),
        // so the no-row fast path composes with harvesting trivially.
        let alive = match self.single_node_fast(plan) {
            Some(a) => a,
            None => self.reduce(plan, Some((harvest, &mut out)))?.is_some(),
        };
        self.stats.record(start.elapsed());
        Ok((alive, out))
    }

    /// Evaluates the query, returning up to `limit` result tuples.
    ///
    /// Each tuple maps plan-node index to the matched row id. `limit == 0`
    /// means unlimited.
    pub fn execute(
        &mut self,
        plan: &JoinTreePlan,
        limit: usize,
    ) -> Result<Vec<MatchTuple>, EngineError> {
        plan.validate(self.db)?;
        let start = Instant::now();
        let result = match self.reduce(plan, None)? {
            None => Vec::new(),
            Some(live) => self.enumerate(plan, live, limit),
        };
        self.stats.record(start.elapsed());
        Ok(result)
    }

    /// Counts result tuples, up to `cap` (0 = exact count, unbounded).
    pub fn count(&mut self, plan: &JoinTreePlan, cap: usize) -> Result<usize, EngineError> {
        Ok(self.execute(plan, cap)?.len())
    }

    /// Bottom-up semi-join reduction rooted at node 0. Returns `None` as soon
    /// as any live set empties (the query is dead), otherwise the fully
    /// reduced live sets. When `harvest` is given, subtree value-sets for the
    /// requested nodes are collected along the way (see
    /// [`Executor::exists_harvesting`]).
    fn reduce(
        &mut self,
        plan: &JoinTreePlan,
        harvest: Option<(&[usize], &mut HarvestOut)>,
    ) -> Result<Option<Vec<LiveSet>>, EngineError> {
        let n = plan.node_count();
        let order = plan.post_order(0);
        let mut harvester = harvest.map(|(requested, out)| {
            let mut req_pos = vec![usize::MAX; n];
            for (i, &node) in requested.iter().enumerate() {
                req_pos[node] = i;
            }
            let mut parent_of = vec![usize::MAX; n];
            for &(node, _, parent) in &order {
                parent_of[node] = parent;
            }
            Harvester { req_pos, parent_of, out }
        });

        let mut live: Vec<LiveSet> = Vec::with_capacity(n);
        // Initial per-node filtering: selection (pre-verified, predicate
        // skipped) or candidates ∩ predicate, then join-value constraints.
        for (i, node) in plan.nodes().iter().enumerate() {
            let table = self.db.table(node.table);
            let cons = merged_constraints(node);
            let set = if let Some(sel) = &node.selection {
                if let Some(&last) = sel.last() {
                    if (last as usize) >= table.len() {
                        return Err(EngineError::InvalidPlan(format!(
                            "selection row {last} out of range for table `{}`",
                            table.schema().name
                        )));
                    }
                }
                let deferrable = match &cons[..] {
                    // A single constrained column whose distinct selection
                    // values ride on the plan: the filter collapses to a
                    // value intersection, and the row set stays symbolic.
                    [(col, set)] => node
                        .col_postings
                        .iter()
                        .find(|(c, _)| c == col)
                        .map(|(_, p)| (*col, intersect_sorted(p.values(), set.as_slice()))),
                    _ => None,
                };
                let postings_of = |col: usize| {
                    node.col_postings.iter().find(|(c, _)| *c == col).map(|(_, p)| p.as_ref())
                };
                if cons.is_empty() {
                    // Cache-backed node: no rows are read at all here.
                    LiveSet::Shared(Arc::clone(sel))
                } else if let Some((col, vals)) = deferrable {
                    LiveSet::Deferred { sel: Arc::clone(sel), col, vals }
                } else if cons.iter().all(|(c, _)| postings_of(*c).is_some()) {
                    // Several constrained columns, each with postings: every
                    // per-column filter is a postings semi-join and the live
                    // set is their intersection — still no rows read.
                    let mut rows: Option<Vec<RowId>> = None;
                    for (col, set) in &cons {
                        let p = postings_of(*col).expect("checked above");
                        let r = postings_semijoin(p, set.as_slice());
                        rows = Some(match rows {
                            None => r,
                            Some(prev) => intersect_rows(&prev, &r),
                        });
                        if rows.as_ref().is_some_and(Vec::is_empty) {
                            break;
                        }
                    }
                    LiveSet::Rows(rows.unwrap_or_default())
                } else {
                    let mut rows = Vec::with_capacity(sel.len());
                    for &rid in sel.iter() {
                        self.stats.rows_examined += 1;
                        if row_passes(table.row(rid), &cons) {
                            rows.push(rid);
                        }
                    }
                    LiveSet::Rows(rows)
                }
            } else {
                // Compile once per node so substring needles are lowercased
                // outside the row loop.
                let compiled = (!node.predicate.is_true()).then(|| node.predicate.compile());
                match (&node.candidates, &compiled) {
                    (None, None) if cons.is_empty() => LiveSet::All,
                    // Free node whose constrained columns are all indexed:
                    // each constraint set resolves to a union of index
                    // postings (disjoint per value, so a sort restores row
                    // order), intersected across columns — no scan.
                    (None, None) if cons.iter().all(|(c, _)| table.has_index(*c)) => {
                        let mut rows: Option<Vec<RowId>> = None;
                        for (col, set) in &cons {
                            let mut r: Vec<RowId> = Vec::new();
                            for &v in set.as_slice() {
                                if let Some(p) = table.lookup_indexed(*col, v) {
                                    r.extend_from_slice(p);
                                }
                            }
                            r.sort_unstable();
                            rows = Some(match rows {
                                None => r,
                                Some(prev) => intersect_rows(&prev, &r),
                            });
                            if rows.as_ref().is_some_and(Vec::is_empty) {
                                break;
                            }
                        }
                        LiveSet::Rows(rows.unwrap_or_default())
                    }
                    (None, _) => {
                        let mut rows = Vec::new();
                        for (rid, row) in table.iter() {
                            self.stats.rows_examined += 1;
                            if compiled.as_ref().is_none_or(|p| p.eval(table.schema(), row))
                                && row_passes(row, &cons)
                            {
                                rows.push(rid);
                            }
                        }
                        LiveSet::Rows(rows)
                    }
                    (Some(cands), _) => {
                        let mut rows = Vec::with_capacity(cands.len());
                        for &rid in cands {
                            if (rid as usize) >= table.len() {
                                return Err(EngineError::InvalidPlan(format!(
                                    "candidate row {rid} out of range for table `{}`",
                                    table.schema().name
                                )));
                            }
                            self.stats.rows_examined += 1;
                            if compiled
                                .as_ref()
                                .is_none_or(|p| p.eval(table.schema(), table.row(rid)))
                                && row_passes(table.row(rid), &cons)
                            {
                                rows.push(rid);
                            }
                        }
                        LiveSet::Rows(rows)
                    }
                }
            };
            if set.is_empty(table) {
                if let Some(h) = harvester.as_mut() {
                    h.mark_dead(i);
                }
                return Ok(None);
            }
            live.push(set);
        }

        // Children-before-parent semi-joins.
        for &(node, parent_edge, parent) in &order {
            if parent == usize::MAX {
                continue; // root has no parent to reduce
            }
            let edge = plan.edges()[parent_edge];
            let (child_col, parent_col) = if edge.a == node {
                (edge.a_col, edge.b_col)
            } else {
                (edge.b_col, edge.a_col)
            };
            let child_table = self.db.table(plan.nodes()[node].table);
            let collect_sorted = |rows: &[RowId]| {
                let mut vals = Vec::with_capacity(rows.len());
                for &rid in rows {
                    if let Some(v) = child_table.row(rid)[child_col].as_int() {
                        vals.push(v);
                    }
                }
                normalize(vals)
            };
            let node_plan = &plan.nodes()[node];
            let precomputed = |col: usize| {
                node_plan.col_postings.iter().find(|(c, _)| *c == col).map(|(_, p)| p.as_ref())
            };
            // A deferred child whose membership column differs from its
            // constrained column needs real rows after all.
            if matches!(&live[node], LiveSet::Deferred { col, .. } if *col != child_col) {
                if let LiveSet::Deferred { sel, col, vals } =
                    std::mem::replace(&mut live[node], LiveSet::All)
                {
                    live[node] = LiveSet::Rows(match precomputed(col) {
                        Some(p) => postings_semijoin(p, &vals),
                        None => {
                            self.stats.rows_examined += sel.len() as u64;
                            deferred_rows(child_table, &sel, col, &vals)
                        }
                    });
                }
            }
            let membership = match &live[node] {
                LiveSet::Rows(rows) => ValueMembership::Sorted(collect_sorted(rows)),
                // `Shared` means the live set is still exactly the node's
                // selection, so the plan's pre-extracted value list (when the
                // builder supplied one) IS this membership set — no row reads.
                LiveSet::Shared(rows) => match precomputed(child_col) {
                    Some(p) => ValueMembership::SortedRef(p.values()),
                    None => ValueMembership::Sorted(collect_sorted(rows)),
                },
                // Materialized above unless `col == child_col`, in which
                // case the deferred value set IS the membership set.
                LiveSet::Deferred { vals, .. } => ValueMembership::Sorted(vals.clone()),
                LiveSet::All => {
                    if child_table.has_index(child_col) {
                        ValueMembership::Indexed(child_table, child_col)
                    } else {
                        let mut vals = Vec::new();
                        for (_, row) in child_table.iter() {
                            self.stats.rows_examined += 1;
                            if let Some(v) = row[child_col].as_int() {
                                vals.push(v);
                            }
                        }
                        ValueMembership::Sorted(normalize(vals))
                    }
                }
            };
            // The materialized set is the node's complete subtree value-set
            // (its own children were already folded in), so it can be
            // harvested before the parent filter decides life or death.
            if let (Some(h), Some(vals)) = (harvester.as_mut(), membership.as_sorted()) {
                h.record(node, vals);
            }
            let parent_table = self.db.table(plan.nodes()[parent].table);
            let parent_plan = &plan.nodes()[parent];
            let parent_postings = |col: usize| {
                parent_plan.col_postings.iter().find(|(c, _)| *c == col).map(|(_, p)| p.as_ref())
            };
            let (filtered, rows_read): (Vec<RowId>, u64) = match &live[parent] {
                // An unfiltered parent semi-joined against a sorted value-set
                // is the union of the index postings of those values when the
                // join column is indexed — groups are disjoint, so a sort
                // restores row order and no parent row is ever read.
                LiveSet::All => match membership.as_sorted() {
                    Some(mvals) if parent_table.has_index(parent_col) => {
                        let mut rows: Vec<RowId> = Vec::new();
                        for &v in mvals {
                            if let Some(r) = parent_table.lookup_indexed(parent_col, v) {
                                rows.extend_from_slice(r);
                            }
                        }
                        rows.sort_unstable();
                        (rows, 0)
                    }
                    _ => (
                        parent_table
                            .iter()
                            .filter(|(_, row)| {
                                row[parent_col].as_int().is_some_and(|v| membership.contains(v))
                            })
                            .map(|(rid, _)| rid)
                            .collect(),
                        parent_table.live_rows() as u64,
                    ),
                },
                LiveSet::Rows(rows) => (filter_rows(parent_table, rows, parent_col, &membership), rows.len() as u64),
                // A shared live set is still exactly the node's selection, so
                // when the plan carries that selection's postings for the join
                // column the semi-join is answered entirely from them — no
                // parent row is read. (NULL rows are absent from postings and
                // rejected by the row-wise check alike.)
                LiveSet::Shared(rows) => {
                    match (parent_postings(parent_col), membership.as_sorted()) {
                        (Some(pp), Some(mvals)) => (postings_semijoin(pp, mvals), 0),
                        _ => (
                            filter_rows(parent_table, rows, parent_col, &membership),
                            rows.len() as u64,
                        ),
                    }
                }
                // Deferred selection: with postings for both the constrained
                // column and the join column, each filter becomes a postings
                // semi-join and the row set is their intersection — again no
                // row reads. Otherwise one fused pass over the selection.
                LiveSet::Deferred { sel, col, vals } => {
                    match (parent_postings(*col), parent_postings(parent_col), membership.as_sorted())
                    {
                        (Some(dp), Some(pp), Some(mvals)) => (
                            intersect_rows(
                                &postings_semijoin(dp, vals),
                                &postings_semijoin(pp, mvals),
                            ),
                            0,
                        ),
                        _ => (
                            sel.iter()
                                .copied()
                                .filter(|&rid| {
                                    let row = parent_table.row(rid);
                                    row[*col]
                                        .as_int()
                                        .is_some_and(|v| vals.binary_search(&v).is_ok())
                                        && row[parent_col]
                                            .as_int()
                                            .is_some_and(|v| membership.contains(v))
                                })
                                .collect(),
                            sel.len() as u64,
                        ),
                    }
                }
            };
            // Every parent row was read to test its join value, so all of
            // them count — not just the survivors (the old behaviour, which
            // under-counted scans on the indexed-child fast path too).
            self.stats.rows_examined += rows_read;
            if filtered.is_empty() {
                if let Some(h) = harvester.as_mut() {
                    h.mark_dead(parent);
                }
                return Ok(None);
            }
            live[parent] = LiveSet::Rows(filtered);
        }
        Ok(Some(live))
    }

    /// Top-down enumeration over reduced live sets, rooted at node 0.
    ///
    /// Nodes are assigned in pre-order (parent before child), so the only
    /// constraint on a node — the equi-join with its already-assigned parent —
    /// can be satisfied from a per-node `join value → live rows` map, and
    /// plain backtracking enumerates exactly the join results.
    fn enumerate(&mut self, plan: &JoinTreePlan, live: Vec<LiveSet>, limit: usize) -> Vec<MatchTuple> {
        let n = plan.node_count();
        let mut live: Vec<Option<LiveSet>> = live.into_iter().map(Some).collect();
        let root_set = live[0].take().expect("root live set present");
        let root_rows = self.materialize_rows(plan, 0, root_set);

        // Pre-order = reversed post-order; each entry groups the node's live
        // rows by its own join column. A still-shared selection whose plan
        // node carries postings for that column reuses them directly.
        let mut post = plan.post_order(0);
        post.reverse();
        let mut steps: Vec<EnumStep> = Vec::new();
        for &(node, parent_edge, parent) in &post {
            if parent == usize::MAX {
                continue;
            }
            let edge = plan.edges()[parent_edge];
            let (child_col, parent_col) = if edge.a == node {
                (edge.a_col, edge.b_col)
            } else {
                (edge.b_col, edge.a_col)
            };
            let set = live[node].take().expect("every node appears once in post-order");
            let grouped = match &set {
                LiveSet::Shared(_) => plan.nodes()[node]
                    .col_postings
                    .iter()
                    .find(|(c, _)| *c == child_col)
                    .map(|(_, p)| ValueRows::Postings(Arc::clone(p))),
                // A leaf that was never filtered: the table's column index
                // (when present) already groups every row by join value.
                LiveSet::All => {
                    let tid = plan.nodes()[node].table;
                    self.db
                        .table(tid)
                        .has_index(child_col)
                        .then_some(ValueRows::Indexed(tid, child_col))
                }
                _ => None,
            };
            let value_rows = match grouped {
                Some(vr) => vr,
                None => {
                    let rows = self.materialize_rows(plan, node, set);
                    let table = self.db.table(plan.nodes()[node].table);
                    let mut map: HashMap<i64, Vec<RowId>> = HashMap::new();
                    for &rid in &rows {
                        if let Some(v) = table.row(rid)[child_col].as_int() {
                            map.entry(v).or_default().push(rid);
                        }
                    }
                    ValueRows::Map(map)
                }
            };
            steps.push((node, parent, parent_col, value_rows));
        }

        let mut results = Vec::new();
        let mut assignment: Vec<RowId> = vec![0; n];
        for &root_row in &root_rows {
            assignment[0] = root_row;
            if !self.backtrack(plan, &steps, 0, &mut assignment, &mut results, limit) {
                break;
            }
        }
        results
    }

    /// Turns a reduced live set into a plain row list for enumeration.
    fn materialize_rows(&mut self, plan: &JoinTreePlan, node: usize, set: LiveSet) -> Vec<RowId> {
        match set {
            LiveSet::Rows(r) => r,
            LiveSet::Shared(r) => r.as_ref().clone(),
            LiveSet::All => {
                let t = self.db.table(plan.nodes()[node].table);
                t.iter().map(|(rid, _)| rid).collect()
            }
            LiveSet::Deferred { sel, col, vals } => {
                match plan.nodes()[node].col_postings.iter().find(|(c, _)| *c == col) {
                    Some((_, p)) => postings_semijoin(p, &vals),
                    None => {
                        self.stats.rows_examined += sel.len() as u64;
                        deferred_rows(self.db.table(plan.nodes()[node].table), &sel, col, &vals)
                    }
                }
            }
        }
    }

    /// Assigns `steps[pos..]` in order; returns `false` once `limit` results
    /// have been collected.
    fn backtrack(
        &self,
        plan: &JoinTreePlan,
        steps: &[EnumStep],
        pos: usize,
        assignment: &mut Vec<RowId>,
        results: &mut Vec<MatchTuple>,
        limit: usize,
    ) -> bool {
        if pos == steps.len() {
            results.push(assignment.clone());
            return limit == 0 || results.len() < limit;
        }
        let (node, parent, parent_col, ref value_rows) = steps[pos];
        let table = self.db.table(plan.nodes()[parent].table);
        let Some(v) = table.row(assignment[parent])[parent_col].as_int() else {
            return true; // null join value: no extension on this branch
        };
        for &rid in value_rows.rows_for(self.db, v) {
            assignment[node] = rid;
            if !self.backtrack(plan, steps, pos + 1, assignment, results, limit) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::plan::{PlanEdge, PlanNode};
    use crate::predicate::Predicate;
    use crate::value::{DataType, Value};

    /// color(id, name); item(id, name, color_id); tag(id, item_id, label)
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("color")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("tag")
            .column("id", DataType::Int)
            .column("item_id", DataType::Int)
            .column("label", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        b.foreign_key("tag", "item_id", "item", "id").unwrap();
        let mut db = b.finish().unwrap();
        for (id, name) in [(1, "red"), (2, "yellow"), (3, "saffron")] {
            db.insert_values("color", vec![Value::Int(id), Value::text(name)]).unwrap();
        }
        for (id, name, cid) in [
            (1, "scented oil", 3),
            (2, "scented candle", 2),
            (3, "plain candle", 1),
        ] {
            db.insert_values("item", vec![Value::Int(id), Value::text(name), Value::Int(cid)])
                .unwrap();
        }
        for (id, iid, label) in [(1, 1, "luxury"), (2, 2, "gift"), (3, 2, "luxury")] {
            db.insert_values("tag", vec![Value::Int(id), Value::Int(iid), Value::text(label)])
                .unwrap();
        }
        db.finalize();
        db
    }

    fn plan2(db: &Database, item_kw: &str, color_kw: &str) -> JoinTreePlan {
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains(item_kw)),
                PlanNode::new(color, Predicate::any_text_contains(color_kw)),
            ],
            vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
        )
        .unwrap()
    }

    #[test]
    fn single_table_exists() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("candle"))],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).unwrap());
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("incense"))],
            vec![],
        )
        .unwrap();
        assert!(!ex.exists(&p).unwrap());
        assert_eq!(ex.stats().queries, 2);
    }

    #[test]
    fn two_way_join_alive_and_dead() {
        let db = db();
        let mut ex = Executor::new(&db);
        // "scented candle whose color is yellow" exists (item 2).
        assert!(ex.exists(&plan2(&db, "scented", "yellow")).unwrap());
        // "scented candle whose color is saffron": item 1 is saffron but is
        // an oil, not a candle; candle items are yellow/red.
        assert!(ex.exists(&plan2(&db, "scented", "saffron")).unwrap()); // scented oil is saffron
        assert!(!ex.exists(&plan2(&db, "candle", "saffron")).unwrap());
    }

    #[test]
    fn three_way_chain_join() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        let tag = db.table_id("tag").unwrap();
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::True),
                PlanNode::new(color, Predicate::any_text_contains("yellow")),
                PlanNode::new(tag, Predicate::any_text_contains("luxury")),
            ],
            vec![
                PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 },
                PlanEdge { a: 2, a_col: 1, b: 0, b_col: 0 },
            ],
        )
        .unwrap();
        // item 2 is yellow and tagged luxury.
        let tuples = ex.execute(&plan, 0).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0][0], 1); // item row id 1 == item id 2
    }

    #[test]
    fn enumeration_counts_cross_products_along_tree() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let tag = db.table_id("tag").unwrap();
        // item 2 has two tags -> two result tuples for "scented candle" + any tag.
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains("scented candle")),
                PlanNode::free(tag),
            ],
            vec![PlanEdge { a: 1, a_col: 1, b: 0, b_col: 0 }],
        )
        .unwrap();
        assert_eq!(ex.count(&plan, 0).unwrap(), 2);
        // Limit respected.
        assert_eq!(ex.execute(&plan, 1).unwrap().len(), 1);
    }

    #[test]
    fn candidates_prefilter() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        // Candidate list excludes the matching row: dead despite predicate match.
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("oil")).with_candidates(vec![1, 2])],
            vec![],
        )
        .unwrap();
        assert!(!ex.exists(&p).unwrap());
        // Candidate list includes it: alive.
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("oil")).with_candidates(vec![0])],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).unwrap());
    }

    #[test]
    fn candidate_out_of_range_is_error() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let p = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::True).with_candidates(vec![99])],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).is_err());
    }

    #[test]
    fn free_single_node_alive_iff_table_nonempty() {
        let mut b = DatabaseBuilder::new();
        b.table("empty").column("id", DataType::Int);
        let db = b.finish().unwrap();
        let mut ex = Executor::new(&db);
        let p = JoinTreePlan::new(vec![PlanNode::free(0)], vec![]).unwrap();
        assert!(!ex.exists(&p).unwrap());
    }

    #[test]
    fn null_fk_never_joins() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("id", DataType::Int).primary_key("id");
        b.table("b").column("id", DataType::Int).column("a_id", DataType::Int);
        b.foreign_key("b", "a_id", "a", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("a", vec![Value::Int(1)]).unwrap();
        db.insert_values("b", vec![Value::Int(1), Value::Null]).unwrap();
        db.finalize();
        let mut ex = Executor::new(&db);
        let p = JoinTreePlan::new(
            vec![PlanNode::free(0), PlanNode::free(1)],
            vec![PlanEdge { a: 1, a_col: 1, b: 0, b_col: 0 }],
        )
        .unwrap();
        assert!(!ex.exists(&p).unwrap());
    }

    #[test]
    fn self_join_same_table_two_instances() {
        // Two instances of `tag` joined through `item`: tags sharing an item.
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let tag = db.table_id("tag").unwrap();
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::free(item),
                PlanNode::new(tag, Predicate::any_text_contains("gift")),
                PlanNode::new(tag, Predicate::any_text_contains("luxury")),
            ],
            vec![
                PlanEdge { a: 1, a_col: 1, b: 0, b_col: 0 },
                PlanEdge { a: 2, a_col: 1, b: 0, b_col: 0 },
            ],
        )
        .unwrap();
        let tuples = ex.execute(&plan, 0).unwrap();
        // Item 2 carries both a gift and a luxury tag.
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0][1], 1); // tag row 1 = gift
        assert_eq!(tuples[0][2], 2); // tag row 2 = luxury on item 2
    }

    #[test]
    fn selection_skips_predicate_and_matches_candidates_path() {
        let db = db();
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        // Uncached: predicate over candidates. Cached: pre-verified selection.
        let edges = vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }];
        let uncached = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains("candle"))
                    .with_candidates(vec![0, 1, 2]),
                PlanNode::new(color, Predicate::any_text_contains("yellow")),
            ],
            edges.clone(),
        )
        .unwrap();
        // Rows 1 and 2 are the candles; the predicate never runs for them.
        let cached = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains("candle"))
                    .with_selection(Arc::new(vec![1, 2])),
                PlanNode::new(color, Predicate::any_text_contains("yellow")),
            ],
            edges,
        )
        .unwrap();
        let mut ex = Executor::new(&db);
        assert_eq!(ex.exists(&uncached).unwrap(), ex.exists(&cached).unwrap());
        assert_eq!(
            ex.execute(&uncached, 0).unwrap(),
            ex.execute(&cached, 0).unwrap()
        );
    }

    #[test]
    fn selection_out_of_range_is_error() {
        let db = db();
        let mut ex = Executor::new(&db);
        let p = JoinTreePlan::new(
            vec![PlanNode::free(0).with_selection(Arc::new(vec![99]))],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).is_err());
    }

    #[test]
    fn constraints_stand_in_for_pruned_subtree() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        // Full plan: item ⋈ color[yellow]. Constrained plan: item alone, with
        // the yellow color ids (color id 2) as a constraint on item.color_id.
        let full = plan2(&db, "candle", "yellow");
        let constrained = JoinTreePlan::new(
            vec![PlanNode::new(item, Predicate::any_text_contains("candle"))
                .with_constraint(2, Arc::new(vec![2]))],
            vec![],
        )
        .unwrap();
        assert_eq!(ex.exists(&full).unwrap(), ex.exists(&constrained).unwrap());
        // Empty constraint set kills the plan outright.
        let dead = JoinTreePlan::new(
            vec![PlanNode::free(item).with_constraint(2, Arc::new(vec![]))],
            vec![],
        )
        .unwrap();
        assert!(!ex.exists(&dead).unwrap());
        // Two same-column constraints intersect: {1,2} ∩ {2,3} = {2}.
        let both = JoinTreePlan::new(
            vec![PlanNode::free(item)
                .with_constraint(2, Arc::new(vec![1, 2]))
                .with_constraint(2, Arc::new(vec![2, 3]))],
            vec![],
        )
        .unwrap();
        let tuples = ex.execute(&both, 0).unwrap();
        assert_eq!(tuples.len(), 1); // only item row 1 (color_id 2)
        assert_eq!(tuples[0][0], 1);
    }

    #[test]
    fn constraint_on_text_column_is_invalid() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let p = JoinTreePlan::new(
            vec![PlanNode::free(item).with_constraint(1, Arc::new(vec![1]))],
            vec![],
        )
        .unwrap();
        assert!(ex.exists(&p).is_err());
    }

    #[test]
    fn harvest_returns_subtree_value_sets() {
        let db = db();
        let mut ex = Executor::new(&db);
        // item[scented] (root) ⋈ color[any]: the color subtree's surviving
        // id set is all three color ids — but colors joined from item are
        // what the membership sees, so harvest node 1 = color ids {1,2,3}.
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(item, Predicate::any_text_contains("scented")),
                PlanNode::new(color, Predicate::any_text_contains("saffron")),
            ],
            vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
        )
        .unwrap();
        let (alive, sets) = ex.exists_harvesting(&plan, &[1]).unwrap();
        assert!(alive); // scented oil is saffron
        assert_eq!(sets, vec![Some(vec![3])]); // saffron = color id 3
    }

    #[test]
    fn harvest_marks_dead_subtrees_empty() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        let tag = db.table_id("tag").unwrap();
        // Chain rooted at tag: tag ⋈ item[no such kw] ⋈ color. The item
        // node's initial filter empties, which proves both the item subtree
        // and (transitively) nothing about the untouched color leaf — the
        // color set is never materialized, the item set is proven empty.
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::free(tag),
                PlanNode::new(item, Predicate::any_text_contains("no-such-item")),
                PlanNode::free(color),
            ],
            vec![
                PlanEdge { a: 1, a_col: 0, b: 0, b_col: 1 },
                PlanEdge { a: 1, a_col: 2, b: 2, b_col: 0 },
            ],
        )
        .unwrap();
        let (alive, sets) = ex.exists_harvesting(&plan, &[1, 2]).unwrap();
        assert!(!alive);
        assert_eq!(sets[0], Some(vec![])); // item subtree proven unsatisfiable
        assert_eq!(sets[1], None); // color leaf never reached
    }

    #[test]
    fn harvest_rejects_root_and_out_of_range() {
        let db = db();
        let mut ex = Executor::new(&db);
        let plan = plan2(&db, "scented", "yellow");
        assert!(ex.exists_harvesting(&plan, &[0]).is_err());
        assert!(ex.exists_harvesting(&plan, &[5]).is_err());
    }

    #[test]
    fn rows_examined_counts_scanned_parent_rows() {
        let db = db();
        let mut ex = Executor::new(&db);
        let item = db.table_id("item").unwrap();
        let color = db.table_id("color").unwrap();
        // color (free root) ⋈ item[oil]: the initial filter scans all 3
        // items; the parent filter then resolves against color's primary-key
        // index — the sorted child value-set turns into index postings, so
        // no color row is read at all.
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::free(color),
                PlanNode::new(item, Predicate::any_text_contains("oil")),
            ],
            vec![PlanEdge { a: 1, a_col: 2, b: 0, b_col: 0 }],
        )
        .unwrap();
        assert!(ex.exists(&plan).unwrap());
        assert_eq!(ex.stats().rows_examined, 3);
        // color (free root) ⋈ item (free child): the child stays behind its
        // column index (`ValueMembership::Indexed`, no sorted value-set), so
        // the parent filter falls back to scanning all 3 color rows.
        ex.reset_stats();
        let plan = JoinTreePlan::new(
            vec![PlanNode::free(color), PlanNode::free(item)],
            vec![PlanEdge { a: 1, a_col: 2, b: 0, b_col: 0 }],
        )
        .unwrap();
        assert!(ex.exists(&plan).unwrap());
        assert_eq!(ex.stats().rows_examined, 3);
    }

    #[test]
    fn stats_accumulate_time() {
        let db = db();
        let mut ex = Executor::new(&db);
        ex.exists(&plan2(&db, "scented", "yellow")).unwrap();
        ex.exists(&plan2(&db, "scented", "yellow")).unwrap();
        assert_eq!(ex.stats().queries, 2);
        assert!(ex.stats().rows_examined > 0);
        ex.reset_stats();
        assert_eq!(ex.stats().queries, 0);
    }
}
