//! Join-tree query plans.
//!
//! A plan is the executable form of one lattice node: a tree of relation
//! instances (the copies) with a predicate per instance and a key/foreign-key
//! equi-join per tree edge. Plans are validated to be connected trees at
//! construction, mirroring the paper's observation that candidate join-query
//! networks "by definition must be a tree" (DISCOVER).

use std::sync::Arc;

use crate::catalog::{Database, TableId};
use crate::error::EngineError;
use crate::predicate::Predicate;
use crate::schema::ColId;
use crate::sortedvals::ValuePostings;
use crate::table::RowId;
use crate::value::DataType;

/// One relation instance in the join tree.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanNode {
    /// The underlying table.
    pub table: TableId,
    /// Instance-local filter (the instantiated keyword predicate, or
    /// [`Predicate::True`] for a free tuple set).
    pub predicate: Predicate,
    /// Optional pre-computed candidate row ids (e.g. from an inverted index
    /// posting list), sorted ascending. When present, only these rows are
    /// considered — the predicate is still verified against each.
    pub candidates: Option<Vec<RowId>>,
    /// Optional pre-*verified* selection (e.g. from the session-scoped
    /// selection cache), sorted ascending: exactly the rows satisfying
    /// `predicate`, shared without copying. When present it supersedes both
    /// `candidates` and the predicate — the executor uses these rows as-is
    /// and skips `Predicate::eval` entirely.
    pub selection: Option<Arc<Vec<RowId>>>,
    /// Join-value constraints `(column, allowed values)`: a row survives the
    /// initial filter only if its integer value in `column` appears in the
    /// sorted set. Used by the subtree semi-join cache to stand in for a
    /// pruned child subtree; an empty set kills the node (and the plan).
    pub constraints: Vec<(ColId, Arc<Vec<i64>>)>,
    /// Pre-extracted value→rows postings of `selection`: for each listed
    /// column, `selection`'s rows grouped by their non-NULL integer value in
    /// it ([`ValuePostings`]). The executor trusts them (like `selection`
    /// itself) and uses them to answer both value-membership questions about
    /// the *untouched* selection and value→row lookups without re-reading
    /// any rows. Meaningless (and ignored) without `selection`.
    pub col_postings: Vec<(ColId, Arc<ValuePostings>)>,
    /// Display alias used by SQL rendering, e.g. `P1` or `I0`.
    pub alias: Option<String>,
}

impl PlanNode {
    /// Creates a node over `table` filtered by `predicate`.
    pub fn new(table: TableId, predicate: Predicate) -> Self {
        PlanNode {
            table,
            predicate,
            candidates: None,
            selection: None,
            constraints: Vec::new(),
            col_postings: Vec::new(),
            alias: None,
        }
    }

    /// Creates an unfiltered (free tuple set) node.
    pub fn free(table: TableId) -> Self {
        PlanNode::new(table, Predicate::True)
    }

    /// Attaches pre-computed candidate rows (must be sorted ascending).
    pub fn with_candidates(mut self, candidates: Vec<RowId>) -> Self {
        debug_assert!(candidates.windows(2).all(|w| w[0] < w[1]));
        self.candidates = Some(candidates);
        self
    }

    /// Attaches a pre-verified shared selection (must be sorted ascending and
    /// must equal the rows `predicate` would accept — the executor trusts it).
    pub fn with_selection(mut self, selection: Arc<Vec<RowId>>) -> Self {
        debug_assert!(selection.windows(2).all(|w| w[0] < w[1]));
        self.selection = Some(selection);
        self
    }

    /// Adds a join-value constraint on `col` (values must be sorted and
    /// deduplicated, as produced by [`crate::sortedvals::normalize`]).
    pub fn with_constraint(mut self, col: ColId, values: Arc<Vec<i64>>) -> Self {
        debug_assert!(values.windows(2).all(|w| w[0] < w[1]));
        self.constraints.push((col, values));
        self
    }

    /// Attaches the pre-extracted value→rows postings of the node's
    /// selection in `col` (must group exactly the selection's rows by their
    /// value in `col` — the executor trusts it).
    pub fn with_col_postings(mut self, col: ColId, postings: Arc<ValuePostings>) -> Self {
        debug_assert!(postings.values().windows(2).all(|w| w[0] < w[1]));
        self.col_postings.push((col, postings));
        self
    }

    /// Sets the display alias.
    pub fn with_alias(mut self, alias: impl Into<String>) -> Self {
        self.alias = Some(alias.into());
        self
    }
}

/// One equi-join edge between two plan nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEdge {
    /// Index of the first node in [`JoinTreePlan::nodes`].
    pub a: usize,
    /// Join column of node `a`.
    pub a_col: ColId,
    /// Index of the second node.
    pub b: usize,
    /// Join column of node `b`.
    pub b_col: ColId,
}

/// A validated join-tree plan.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinTreePlan {
    nodes: Vec<PlanNode>,
    edges: Vec<PlanEdge>,
    /// `adjacency[i]` lists `(edge index, neighbour node)` pairs for node `i`.
    adjacency: Vec<Vec<(usize, usize)>>,
}

impl JoinTreePlan {
    /// Builds a plan, checking that the nodes and edges form a connected tree
    /// (`|edges| == |nodes| - 1` and all nodes reachable) with in-range node
    /// and column references.
    pub fn new(nodes: Vec<PlanNode>, edges: Vec<PlanEdge>) -> Result<Self, EngineError> {
        if nodes.is_empty() {
            return Err(EngineError::InvalidPlan("plan must have at least one node".into()));
        }
        if edges.len() != nodes.len() - 1 {
            return Err(EngineError::InvalidPlan(format!(
                "a tree over {} nodes needs {} edges, got {}",
                nodes.len(),
                nodes.len() - 1,
                edges.len()
            )));
        }
        let mut adjacency = vec![Vec::new(); nodes.len()];
        for (ei, e) in edges.iter().enumerate() {
            if e.a >= nodes.len() || e.b >= nodes.len() {
                return Err(EngineError::InvalidPlan(format!(
                    "edge #{ei} references node out of range"
                )));
            }
            if e.a == e.b {
                return Err(EngineError::InvalidPlan(format!("edge #{ei} is a self-loop")));
            }
            adjacency[e.a].push((ei, e.b));
            adjacency[e.b].push((ei, e.a));
        }
        // Connectivity check (with the edge-count check this implies acyclicity).
        let mut seen = vec![false; nodes.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(n) = stack.pop() {
            for &(_, m) in &adjacency[n] {
                if !seen[m] {
                    seen[m] = true;
                    count += 1;
                    stack.push(m);
                }
            }
        }
        if count != nodes.len() {
            return Err(EngineError::InvalidPlan("plan graph is not connected".into()));
        }
        Ok(JoinTreePlan { nodes, edges, adjacency })
    }

    /// Validates the plan against a database: tables exist, join columns are
    /// in-range integer columns.
    pub fn validate(&self, db: &Database) -> Result<(), EngineError> {
        for n in &self.nodes {
            if n.table >= db.table_count() {
                return Err(EngineError::InvalidPlan(format!(
                    "plan references unknown table #{}",
                    n.table
                )));
            }
            let constrained = n.constraints.iter().map(|&(c, _)| ("constraint", c));
            let postings = n.col_postings.iter().map(|&(c, _)| ("col_postings", c));
            for (kind, col) in constrained.chain(postings) {
                let table = db.table(n.table);
                match table.schema().columns.get(col) {
                    None => {
                        return Err(EngineError::InvalidPlan(format!(
                            "{kind} column #{col} out of range for table `{}`",
                            table.schema().name
                        )))
                    }
                    Some(c) if c.ty != DataType::Int => {
                        return Err(EngineError::InvalidPlan(format!(
                            "{kind} column `{}`.`{}` is not INT",
                            table.schema().name, c.name
                        )))
                    }
                    _ => {}
                }
            }
        }
        for e in &self.edges {
            for (node, col) in [(e.a, e.a_col), (e.b, e.b_col)] {
                let table = db.table(self.nodes[node].table);
                match table.schema().columns.get(col) {
                    None => {
                        return Err(EngineError::InvalidPlan(format!(
                            "join column #{col} out of range for table `{}`",
                            table.schema().name
                        )))
                    }
                    Some(c) if c.ty != DataType::Int => {
                        return Err(EngineError::InvalidPlan(format!(
                            "join column `{}`.`{}` is not INT",
                            table.schema().name, c.name
                        )))
                    }
                    _ => {}
                }
            }
        }
        Ok(())
    }

    /// The plan's nodes.
    pub fn nodes(&self) -> &[PlanNode] {
        &self.nodes
    }

    /// The plan's edges.
    pub fn edges(&self) -> &[PlanEdge] {
        &self.edges
    }

    /// `(edge index, neighbour)` pairs incident to node `i`.
    pub fn neighbours(&self, i: usize) -> &[(usize, usize)] {
        &self.adjacency[i]
    }

    /// Number of relation instances.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of joins (`node_count - 1`).
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }

    /// A post-order traversal from `root`: every node appears after all of
    /// its children; returns `(node, parent_edge, parent)` triples with the
    /// root last (`parent_edge`/`parent` are `usize::MAX` for the root).
    pub(crate) fn post_order(&self, root: usize) -> Vec<(usize, usize, usize)> {
        let mut order = Vec::with_capacity(self.nodes.len());
        // Iterative DFS recording (node, parent_edge, parent).
        let mut stack = vec![(root, usize::MAX, usize::MAX, false)];
        let mut visited = vec![false; self.nodes.len()];
        while let Some((n, pe, p, expanded)) = stack.pop() {
            if expanded {
                order.push((n, pe, p));
                continue;
            }
            if visited[n] {
                continue;
            }
            visited[n] = true;
            stack.push((n, pe, p, true));
            for &(ei, m) in &self.adjacency[n] {
                if !visited[m] {
                    stack.push((m, ei, n, false));
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node() -> PlanNode {
        PlanNode::free(0)
    }

    #[test]
    fn single_node_plan() {
        let p = JoinTreePlan::new(vec![node()], vec![]).unwrap();
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.join_count(), 0);
    }

    #[test]
    fn rejects_empty() {
        assert!(JoinTreePlan::new(vec![], vec![]).is_err());
    }

    #[test]
    fn rejects_wrong_edge_count() {
        assert!(JoinTreePlan::new(vec![node(), node()], vec![]).is_err());
        let e = PlanEdge { a: 0, a_col: 0, b: 1, b_col: 0 };
        assert!(JoinTreePlan::new(vec![node(), node()], vec![e, e]).is_err());
    }

    #[test]
    fn rejects_self_loop_and_out_of_range() {
        let e = PlanEdge { a: 0, a_col: 0, b: 0, b_col: 0 };
        assert!(JoinTreePlan::new(vec![node(), node()], vec![e]).is_err());
        let e = PlanEdge { a: 0, a_col: 0, b: 7, b_col: 0 };
        assert!(JoinTreePlan::new(vec![node(), node()], vec![e]).is_err());
    }

    #[test]
    fn rejects_disconnected_with_cycle() {
        // 4 nodes, 3 edges, but edges form a triangle on {0,1,2}: node 3 unreachable.
        let nodes = vec![node(), node(), node(), node()];
        let edges = vec![
            PlanEdge { a: 0, a_col: 0, b: 1, b_col: 0 },
            PlanEdge { a: 1, a_col: 0, b: 2, b_col: 0 },
            PlanEdge { a: 2, a_col: 0, b: 0, b_col: 0 },
        ];
        assert!(JoinTreePlan::new(nodes, edges).is_err());
    }

    #[test]
    fn post_order_visits_children_first() {
        // Path 0 - 1 - 2, rooted at 1.
        let nodes = vec![node(), node(), node()];
        let edges = vec![
            PlanEdge { a: 0, a_col: 0, b: 1, b_col: 0 },
            PlanEdge { a: 1, a_col: 0, b: 2, b_col: 0 },
        ];
        let p = JoinTreePlan::new(nodes, edges).unwrap();
        let order = p.post_order(1);
        assert_eq!(order.len(), 3);
        assert_eq!(order.last().unwrap().0, 1);
        // The two leaves report node 1 as parent.
        for &(n, _, parent) in &order[..2] {
            assert!(n == 0 || n == 2);
            assert_eq!(parent, 1);
        }
    }

    #[test]
    fn neighbours_adjacency() {
        let nodes = vec![node(), node(), node()];
        let edges = vec![
            PlanEdge { a: 0, a_col: 0, b: 1, b_col: 0 },
            PlanEdge { a: 1, a_col: 0, b: 2, b_col: 0 },
        ];
        let p = JoinTreePlan::new(nodes, edges).unwrap();
        assert_eq!(p.neighbours(1).len(), 2);
        assert_eq!(p.neighbours(0).len(), 1);
    }
}
