//! Fluent construction of databases.
//!
//! ```
//! use relengine::{DatabaseBuilder, DataType};
//!
//! let mut b = DatabaseBuilder::new();
//! b.table("person")
//!     .column("id", DataType::Int)
//!     .column("name", DataType::Text)
//!     .primary_key("id");
//! b.table("writes")
//!     .column("person_id", DataType::Int)
//!     .column("pub_id", DataType::Int);
//! b.foreign_key("writes", "person_id", "person", "id").unwrap();
//! let db = b.finish().unwrap();
//! assert_eq!(db.table_count(), 2);
//! ```

use crate::catalog::{Database, ForeignKey};
use crate::error::EngineError;
use crate::schema::{ColumnDef, TableSchema};
use crate::value::DataType;

/// Pending foreign key declared by name; resolved at [`DatabaseBuilder::finish`].
#[derive(Debug, Clone)]
struct PendingFk {
    from_table: String,
    from_col: String,
    to_table: String,
    to_col: String,
}

/// Builder for a [`Database`].
#[derive(Debug, Default)]
pub struct DatabaseBuilder {
    tables: Vec<TableSchema>,
    fks: Vec<PendingFk>,
}

impl DatabaseBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DatabaseBuilder::default()
    }

    /// Starts (or resumes) building the table `name`.
    pub fn table(&mut self, name: &str) -> TableBuilder<'_> {
        let idx = match self.tables.iter().position(|t| t.name == name) {
            Some(i) => i,
            None => {
                self.tables.push(TableSchema::new(name));
                self.tables.len() - 1
            }
        };
        TableBuilder { builder: self, idx }
    }

    /// Declares a foreign key by table/column names. The tables must already
    /// have been started with [`DatabaseBuilder::table`]; columns are checked
    /// at [`DatabaseBuilder::finish`] time.
    pub fn foreign_key(
        &mut self,
        from_table: &str,
        from_col: &str,
        to_table: &str,
        to_col: &str,
    ) -> Result<(), EngineError> {
        for t in [from_table, to_table] {
            if !self.tables.iter().any(|s| s.name == t) {
                return Err(EngineError::UnknownTable(t.to_owned()));
            }
        }
        self.fks.push(PendingFk {
            from_table: from_table.to_owned(),
            from_col: from_col.to_owned(),
            to_table: to_table.to_owned(),
            to_col: to_col.to_owned(),
        });
        Ok(())
    }

    /// Resolves all declarations into a [`Database`] (still empty of rows).
    pub fn finish(self) -> Result<Database, EngineError> {
        let mut db = Database::new();
        for schema in self.tables {
            db.add_table(schema)?;
        }
        for fk in self.fks {
            let from_table =
                db.table_id(&fk.from_table).ok_or(EngineError::UnknownTable(fk.from_table.clone()))?;
            let to_table =
                db.table_id(&fk.to_table).ok_or(EngineError::UnknownTable(fk.to_table.clone()))?;
            let from_col = db
                .table(from_table)
                .schema()
                .col_index(&fk.from_col)
                .ok_or_else(|| EngineError::UnknownColumn {
                    table: fk.from_table.clone(),
                    column: fk.from_col.clone(),
                })?;
            let to_col = db
                .table(to_table)
                .schema()
                .col_index(&fk.to_col)
                .ok_or_else(|| EngineError::UnknownColumn {
                    table: fk.to_table.clone(),
                    column: fk.to_col.clone(),
                })?;
            db.add_foreign_key(ForeignKey { from_table, from_col, to_table, to_col })?;
        }
        Ok(db)
    }
}

/// Builds one table's schema within a [`DatabaseBuilder`].
pub struct TableBuilder<'a> {
    builder: &'a mut DatabaseBuilder,
    idx: usize,
}

impl TableBuilder<'_> {
    /// Appends a column.
    pub fn column(self, name: &str, ty: DataType) -> Self {
        self.builder.tables[self.idx]
            .columns
            .push(ColumnDef { name: name.to_owned(), ty });
        self
    }

    /// Declares the primary key by column name (must already be added).
    pub fn primary_key(self, name: &str) -> Self {
        let pk = self.builder.tables[self.idx].col_index(name);
        self.builder.tables[self.idx].primary_key = pk;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_schema_and_fks() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("id", DataType::Int).primary_key("id");
        b.table("b")
            .column("id", DataType::Int)
            .column("a_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("b", "a_id", "a", "id").unwrap();
        let db = b.finish().unwrap();
        assert_eq!(db.table_count(), 2);
        assert_eq!(db.foreign_keys().len(), 1);
        assert_eq!(db.table(0).schema().primary_key, Some(0));
    }

    #[test]
    fn fk_unknown_table_rejected_early() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("id", DataType::Int);
        assert!(b.foreign_key("a", "id", "ghost", "id").is_err());
    }

    #[test]
    fn fk_unknown_column_rejected_at_finish() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("id", DataType::Int);
        b.table("b").column("id", DataType::Int);
        b.foreign_key("b", "ghost_col", "a", "id").unwrap();
        assert!(matches!(b.finish(), Err(EngineError::UnknownColumn { .. })));
    }

    #[test]
    fn resuming_a_table_appends_columns() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("x", DataType::Int);
        b.table("a").column("y", DataType::Text);
        let db = b.finish().unwrap();
        assert_eq!(db.table(0).schema().arity(), 2);
    }

    #[test]
    fn primary_key_of_missing_column_is_none() {
        let mut b = DatabaseBuilder::new();
        b.table("a").column("x", DataType::Int).primary_key("nope");
        let db = b.finish().unwrap();
        assert_eq!(db.table(0).schema().primary_key, None);
    }
}
