//! Row storage and per-column hash indexes.

use std::collections::HashMap;

use crate::error::EngineError;
use crate::schema::{ColId, TableSchema};
use crate::value::{DataType, Value};

/// Row identifier: position of the row within its table.
pub type RowId = u32;

/// A stored row. Values are in schema column order.
pub type Row = Box<[Value]>;

/// One table: schema, rows, and lazily built equality indexes on integer
/// columns (used to execute the key/foreign-key joins).
#[derive(Debug, Clone)]
pub struct Table {
    pub(crate) schema: TableSchema,
    pub(crate) rows: Vec<Row>,
    /// `indexes[col]` maps an integer value to the sorted row ids holding it.
    /// Built by [`Table::build_index`]; nulls are not indexed.
    indexes: HashMap<ColId, HashMap<i64, Vec<RowId>>>,
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: Vec::new(), indexes: HashMap::new() }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Returns the row with the given id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; row ids come from this table so an
    /// out-of-range id is an internal logic error, not bad user input.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id as usize]
    }

    /// Iterates over `(RowId, &Row)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows.iter().enumerate().map(|(i, r)| (i as RowId, r))
    }

    /// Appends a row after validating arity and column types.
    ///
    /// Indexes are invalidated (dropped) by insertion; call
    /// [`Table::build_index`] (or `Database::finalize`) after loading.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId, EngineError> {
        if values.len() != self.schema.arity() {
            return Err(EngineError::RowMismatch {
                table: self.schema.name.clone(),
                detail: format!("expected {} values, got {}", self.schema.arity(), values.len()),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let want = self.schema.columns[i].ty;
            let ok = match v.data_type() {
                None => true, // null fits any column
                Some(t) => t == want,
            };
            if !ok {
                return Err(EngineError::RowMismatch {
                    table: self.schema.name.clone(),
                    detail: format!(
                        "column `{}` expects {}, got {:?}",
                        self.schema.columns[i].name, want, v
                    ),
                });
            }
        }
        if let Some(pk) = self.schema.primary_key {
            if values[pk].is_null() {
                return Err(EngineError::RowMismatch {
                    table: self.schema.name.clone(),
                    detail: "primary key may not be NULL".into(),
                });
            }
        }
        self.indexes.clear();
        let id = self.rows.len() as RowId;
        self.rows.push(values.into_boxed_slice());
        Ok(id)
    }

    /// Builds (or rebuilds) the equality index on an integer column.
    pub fn build_index(&mut self, col: ColId) -> Result<(), EngineError> {
        if col >= self.schema.arity() {
            return Err(EngineError::UnknownColumn {
                table: self.schema.name.clone(),
                column: format!("#{col}"),
            });
        }
        if self.schema.columns[col].ty != DataType::Int {
            return Err(EngineError::NonIntegerKey {
                table: self.schema.name.clone(),
                column: self.schema.columns[col].name.clone(),
            });
        }
        let mut idx: HashMap<i64, Vec<RowId>> = HashMap::new();
        for (rid, row) in self.rows.iter().enumerate() {
            if let Some(v) = row[col].as_int() {
                idx.entry(v).or_default().push(rid as RowId);
            }
        }
        self.indexes.insert(col, idx);
        Ok(())
    }

    /// Whether an index exists on `col`.
    pub fn has_index(&self, col: ColId) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Row ids whose `col` equals `value`, using the index if present and a
    /// scan otherwise. Result is in ascending row-id order either way.
    pub fn lookup(&self, col: ColId, value: i64) -> Vec<RowId> {
        if let Some(idx) = self.indexes.get(&col) {
            return idx.get(&value).cloned().unwrap_or_default();
        }
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r[col].as_int() == Some(value))
            .map(|(i, _)| i as RowId)
            .collect()
    }

    /// Indexed lookup returning a borrowed slice; `None` if no index on `col`.
    pub fn lookup_indexed(&self, col: ColId, value: i64) -> Option<&[RowId]> {
        self.indexes
            .get(&col)
            .map(|idx| idx.get(&value).map_or(&[][..], |v| v.as_slice()))
    }

    /// Number of distinct non-null integer values in `col`, using the index
    /// if one exists and a scan otherwise. Used by cardinality estimation.
    pub fn distinct_ints(&self, col: ColId) -> usize {
        if let Some(idx) = self.indexes.get(&col) {
            return idx.len();
        }
        let mut seen: Vec<i64> = self
            .rows
            .iter()
            .filter_map(|r| r.get(col).and_then(Value::as_int))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Verifies primary-key uniqueness over all rows.
    pub fn check_primary_key(&self) -> Result<(), EngineError> {
        let Some(pk) = self.schema.primary_key else { return Ok(()) };
        let mut seen = HashMap::with_capacity(self.rows.len());
        for row in &self.rows {
            if let Some(k) = row[pk].as_int() {
                if seen.insert(k, ()).is_some() {
                    return Err(EngineError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: k,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "id".into(), ty: DataType::Int },
                ColumnDef { name: "txt".into(), ty: DataType::Text },
                ColumnDef { name: "fk".into(), ty: DataType::Int },
            ],
            primary_key: Some(0),
        }
    }

    fn filled() -> Table {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Int(10)]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("b"), Value::Int(10)]).unwrap();
        t.insert(vec![Value::Int(3), Value::text("c"), Value::Null]).unwrap();
        t
    }

    #[test]
    fn insert_and_read() {
        let t = filled();
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.row(1)[1], Value::text("b"));
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = Table::new(schema());
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(EngineError::RowMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::text("x"), Value::text("a"), Value::Int(1)]),
            Err(EngineError::RowMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::Null, Value::text("a"), Value::Int(1)]),
            Err(EngineError::RowMismatch { .. })
        )); // null pk
    }

    #[test]
    fn lookup_scan_and_indexed_agree() {
        let mut t = filled();
        assert!(!t.has_index(2));
        let scan = t.lookup(2, 10);
        t.build_index(2).unwrap();
        assert!(t.has_index(2));
        let idx = t.lookup(2, 10);
        assert_eq!(scan, idx);
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(t.lookup_indexed(2, 10).unwrap(), &[0, 1]);
        assert_eq!(t.lookup_indexed(2, 999).unwrap(), &[] as &[RowId]);
        assert!(t.lookup_indexed(0, 1).is_none());
    }

    #[test]
    fn nulls_not_indexed() {
        let mut t = filled();
        t.build_index(2).unwrap();
        // Row 2 has a NULL fk: it must not appear under any key.
        for v in [-1, 0, 10] {
            assert!(!t.lookup(2, v).contains(&2));
        }
    }

    #[test]
    fn index_on_text_column_rejected() {
        let mut t = filled();
        assert!(matches!(t.build_index(1), Err(EngineError::NonIntegerKey { .. })));
        assert!(matches!(t.build_index(9), Err(EngineError::UnknownColumn { .. })));
    }

    #[test]
    fn insert_invalidates_index() {
        let mut t = filled();
        t.build_index(2).unwrap();
        t.insert(vec![Value::Int(4), Value::text("d"), Value::Int(10)]).unwrap();
        assert!(!t.has_index(2));
        // Scan fallback still finds everything.
        assert_eq!(t.lookup(2, 10), vec![0, 1, 3]);
    }

    #[test]
    fn pk_check() {
        let mut t = filled();
        assert!(t.check_primary_key().is_ok());
        t.insert(vec![Value::Int(1), Value::text("dup"), Value::Null]).unwrap();
        assert!(matches!(t.check_primary_key(), Err(EngineError::DuplicateKey { key: 1, .. })));
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    #[test]
    fn distinct_ints_scan_and_index_agree() {
        let schema = TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "a".into(), ty: DataType::Int },
                ColumnDef { name: "s".into(), ty: DataType::Text },
            ],
            primary_key: None,
        };
        let mut t = Table::new(schema);
        for v in [1i64, 2, 2, 3, 3, 3] {
            t.insert(vec![Value::Int(v), Value::text("x")]).unwrap();
        }
        t.insert(vec![Value::Null, Value::text("y")]).unwrap();
        assert_eq!(t.distinct_ints(0), 3, "nulls excluded");
        t.build_index(0).unwrap();
        assert_eq!(t.distinct_ints(0), 3);
        // Text column: no integers at all.
        assert_eq!(t.distinct_ints(1), 0);
        // Out-of-range column: empty, not a panic.
        assert_eq!(t.distinct_ints(9), 0);
    }
}
