//! Row storage, tombstones, and per-column hash indexes.
//!
//! Row ids are positional and **stable for the lifetime of the table**:
//! deletion tombstones a row instead of removing it, so ids handed out to
//! indexes, postings, and caches never shift. Equality indexes are
//! maintained incrementally by [`Table::insert`], [`Table::update`], and
//! [`Table::delete`] — a write never drops an index wholesale.

use std::collections::HashMap;

use crate::error::EngineError;
use crate::schema::{ColId, TableSchema};
use crate::value::{DataType, Value};

/// Row identifier: position of the row within its table.
pub type RowId = u32;

/// A stored row. Values are in schema column order.
pub type Row = Box<[Value]>;

/// One table: schema, rows, and lazily built equality indexes on integer
/// columns (used to execute the key/foreign-key joins).
#[derive(Debug, Clone)]
pub struct Table {
    pub(crate) schema: TableSchema,
    pub(crate) rows: Vec<Row>,
    /// Tombstone flags, parallel to `rows`. A deleted row keeps its slot
    /// (and its values, for diagnostics) so row ids stay stable.
    deleted: Vec<bool>,
    /// Number of tombstoned rows.
    dead: usize,
    /// `indexes[col]` maps an integer value to the sorted live row ids
    /// holding it. Built by [`Table::build_index`]; nulls are not indexed.
    indexes: HashMap<ColId, HashMap<i64, Vec<RowId>>>,
}

/// Inserts `rid` into a sorted posting list (no-op if already present).
fn index_add(idx: &mut HashMap<i64, Vec<RowId>>, value: i64, rid: RowId) {
    let list = idx.entry(value).or_default();
    if let Err(pos) = list.binary_search(&rid) {
        list.insert(pos, rid);
    }
}

/// Removes `rid` from a sorted posting list, dropping empty lists.
fn index_remove(idx: &mut HashMap<i64, Vec<RowId>>, value: i64, rid: RowId) {
    if let Some(list) = idx.get_mut(&value) {
        if let Ok(pos) = list.binary_search(&rid) {
            list.remove(pos);
        }
        if list.is_empty() {
            idx.remove(&value);
        }
    }
}

impl Table {
    /// Creates an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table {
            schema,
            rows: Vec::new(),
            deleted: Vec::new(),
            dead: 0,
            indexes: HashMap::new(),
        }
    }

    /// The table schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Number of row *slots* (live + tombstoned). Row ids range over
    /// `0..len()`; use [`Table::live_rows`] for the live cardinality.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Number of live (non-tombstoned) rows.
    pub fn live_rows(&self) -> usize {
        self.rows.len() - self.dead
    }

    /// Whether the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live_rows() == 0
    }

    /// Whether the row with the given id has been deleted.
    pub fn is_deleted(&self, id: RowId) -> bool {
        self.deleted.get(id as usize).copied().unwrap_or(false)
    }

    /// Returns the row with the given id. Tombstoned rows keep their values
    /// readable (callers that must skip them check [`Table::is_deleted`]).
    ///
    /// # Panics
    /// Panics if `id` is out of range; row ids come from this table so an
    /// out-of-range id is an internal logic error, not bad user input.
    pub fn row(&self, id: RowId) -> &Row {
        &self.rows[id as usize]
    }

    /// Iterates over `(RowId, &Row)` pairs of **live** rows.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.rows
            .iter()
            .enumerate()
            .filter(|&(i, _)| !self.deleted[i])
            .map(|(i, r)| (i as RowId, r))
    }

    /// Validates arity, column types, and the non-null primary key rule.
    pub(crate) fn validate_row(&self, values: &[Value]) -> Result<(), EngineError> {
        if values.len() != self.schema.arity() {
            return Err(EngineError::RowMismatch {
                table: self.schema.name.clone(),
                detail: format!("expected {} values, got {}", self.schema.arity(), values.len()),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let want = self.schema.columns[i].ty;
            let ok = match v.data_type() {
                None => true, // null fits any column
                Some(t) => t == want,
            };
            if !ok {
                return Err(EngineError::RowMismatch {
                    table: self.schema.name.clone(),
                    detail: format!(
                        "column `{}` expects {}, got {:?}",
                        self.schema.columns[i].name, want, v
                    ),
                });
            }
        }
        if let Some(pk) = self.schema.primary_key {
            if values[pk].is_null() {
                return Err(EngineError::RowMismatch {
                    table: self.schema.name.clone(),
                    detail: "primary key may not be NULL".into(),
                });
            }
        }
        Ok(())
    }

    /// Appends a row after validating arity and column types. Existing
    /// equality indexes are maintained in place (the new id is appended to
    /// each value's posting list), so a loaded-and-indexed table stays
    /// indexed across writes.
    pub fn insert(&mut self, values: Vec<Value>) -> Result<RowId, EngineError> {
        self.validate_row(&values)?;
        let id = self.rows.len() as RowId;
        let row = values.into_boxed_slice();
        for (&col, idx) in self.indexes.iter_mut() {
            if let Some(v) = row[col].as_int() {
                // The new id is the maximum, so pushing keeps lists sorted.
                idx.entry(v).or_default().push(id);
            }
        }
        self.rows.push(row);
        self.deleted.push(false);
        Ok(id)
    }

    /// Replaces the row with the given id, returning the previous values.
    /// Indexes are maintained incrementally (old value removed, new value
    /// inserted at its sorted position). Updating a tombstoned or
    /// out-of-range row is an error.
    pub fn update(&mut self, id: RowId, values: Vec<Value>) -> Result<Row, EngineError> {
        if id as usize >= self.rows.len() || self.deleted[id as usize] {
            return Err(EngineError::RowMismatch {
                table: self.schema.name.clone(),
                detail: format!("update of missing or deleted row {id}"),
            });
        }
        self.validate_row(&values)?;
        let new = values.into_boxed_slice();
        let old = std::mem::replace(&mut self.rows[id as usize], new);
        for (&col, idx) in self.indexes.iter_mut() {
            let (was, now) = (old[col].as_int(), self.rows[id as usize][col].as_int());
            if was != now {
                if let Some(v) = was {
                    index_remove(idx, v, id);
                }
                if let Some(v) = now {
                    index_add(idx, v, id);
                }
            }
        }
        Ok(old)
    }

    /// Tombstones the row with the given id, returning a copy of its values
    /// (the slot keeps them readable; see [`Table::row`]). Indexes are
    /// maintained incrementally. Deleting twice is an error.
    pub fn delete(&mut self, id: RowId) -> Result<Row, EngineError> {
        if id as usize >= self.rows.len() || self.deleted[id as usize] {
            return Err(EngineError::RowMismatch {
                table: self.schema.name.clone(),
                detail: format!("delete of missing or deleted row {id}"),
            });
        }
        self.deleted[id as usize] = true;
        self.dead += 1;
        let row = self.rows[id as usize].clone();
        for (&col, idx) in self.indexes.iter_mut() {
            if let Some(v) = row[col].as_int() {
                index_remove(idx, v, id);
            }
        }
        Ok(row)
    }

    /// Builds (or rebuilds) the equality index on an integer column.
    /// Tombstoned rows are excluded.
    pub fn build_index(&mut self, col: ColId) -> Result<(), EngineError> {
        if col >= self.schema.arity() {
            return Err(EngineError::UnknownColumn {
                table: self.schema.name.clone(),
                column: format!("#{col}"),
            });
        }
        if self.schema.columns[col].ty != DataType::Int {
            return Err(EngineError::NonIntegerKey {
                table: self.schema.name.clone(),
                column: self.schema.columns[col].name.clone(),
            });
        }
        let mut idx: HashMap<i64, Vec<RowId>> = HashMap::new();
        for (rid, row) in self.iter() {
            if let Some(v) = row[col].as_int() {
                idx.entry(v).or_default().push(rid);
            }
        }
        self.indexes.insert(col, idx);
        Ok(())
    }

    /// Whether an index exists on `col`.
    pub fn has_index(&self, col: ColId) -> bool {
        self.indexes.contains_key(&col)
    }

    /// Live row ids whose `col` equals `value`, using the index if present
    /// and a scan otherwise. Result is in ascending row-id order either way.
    pub fn lookup(&self, col: ColId, value: i64) -> Vec<RowId> {
        if let Some(idx) = self.indexes.get(&col) {
            return idx.get(&value).cloned().unwrap_or_default();
        }
        self.iter()
            .filter(|(_, r)| r[col].as_int() == Some(value))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indexed lookup returning a borrowed slice; `None` if no index on `col`.
    pub fn lookup_indexed(&self, col: ColId, value: i64) -> Option<&[RowId]> {
        self.indexes
            .get(&col)
            .map(|idx| idx.get(&value).map_or(&[][..], |v| v.as_slice()))
    }

    /// Number of distinct non-null integer values in `col` over live rows,
    /// using the index if one exists and a scan otherwise. Used by
    /// cardinality estimation.
    pub fn distinct_ints(&self, col: ColId) -> usize {
        if let Some(idx) = self.indexes.get(&col) {
            return idx.len();
        }
        let mut seen: Vec<i64> = self
            .iter()
            .filter_map(|(_, r)| r.get(col).and_then(Value::as_int))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        seen.len()
    }

    /// Verifies primary-key uniqueness over all live rows.
    pub fn check_primary_key(&self) -> Result<(), EngineError> {
        let Some(pk) = self.schema.primary_key else { return Ok(()) };
        let mut seen = HashMap::with_capacity(self.live_rows());
        for (_, row) in self.iter() {
            if let Some(k) = row[pk].as_int() {
                if seen.insert(k, ()).is_some() {
                    return Err(EngineError::DuplicateKey {
                        table: self.schema.name.clone(),
                        key: k,
                    });
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn schema() -> TableSchema {
        TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "id".into(), ty: DataType::Int },
                ColumnDef { name: "txt".into(), ty: DataType::Text },
                ColumnDef { name: "fk".into(), ty: DataType::Int },
            ],
            primary_key: Some(0),
        }
    }

    fn filled() -> Table {
        let mut t = Table::new(schema());
        t.insert(vec![Value::Int(1), Value::text("a"), Value::Int(10)]).unwrap();
        t.insert(vec![Value::Int(2), Value::text("b"), Value::Int(10)]).unwrap();
        t.insert(vec![Value::Int(3), Value::text("c"), Value::Null]).unwrap();
        t
    }

    #[test]
    fn insert_and_read() {
        let t = filled();
        assert_eq!(t.len(), 3);
        assert_eq!(t.live_rows(), 3);
        assert!(!t.is_empty());
        assert_eq!(t.row(1)[1], Value::text("b"));
        assert_eq!(t.iter().count(), 3);
    }

    #[test]
    fn insert_validates_arity_and_types() {
        let mut t = Table::new(schema());
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(EngineError::RowMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::text("x"), Value::text("a"), Value::Int(1)]),
            Err(EngineError::RowMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::Null, Value::text("a"), Value::Int(1)]),
            Err(EngineError::RowMismatch { .. })
        )); // null pk
    }

    #[test]
    fn lookup_scan_and_indexed_agree() {
        let mut t = filled();
        assert!(!t.has_index(2));
        let scan = t.lookup(2, 10);
        t.build_index(2).unwrap();
        assert!(t.has_index(2));
        let idx = t.lookup(2, 10);
        assert_eq!(scan, idx);
        assert_eq!(idx, vec![0, 1]);
        assert_eq!(t.lookup_indexed(2, 10).unwrap(), &[0, 1]);
        assert_eq!(t.lookup_indexed(2, 999).unwrap(), &[] as &[RowId]);
        assert!(t.lookup_indexed(0, 1).is_none());
    }

    #[test]
    fn nulls_not_indexed() {
        let mut t = filled();
        t.build_index(2).unwrap();
        // Row 2 has a NULL fk: it must not appear under any key.
        for v in [-1, 0, 10] {
            assert!(!t.lookup(2, v).contains(&2));
        }
    }

    #[test]
    fn index_on_text_column_rejected() {
        let mut t = filled();
        assert!(matches!(t.build_index(1), Err(EngineError::NonIntegerKey { .. })));
        assert!(matches!(t.build_index(9), Err(EngineError::UnknownColumn { .. })));
    }

    #[test]
    fn insert_maintains_index() {
        let mut t = filled();
        t.build_index(2).unwrap();
        t.insert(vec![Value::Int(4), Value::text("d"), Value::Int(10)]).unwrap();
        assert!(t.has_index(2), "insert maintains the index in place");
        assert_eq!(t.lookup(2, 10), vec![0, 1, 3]);
        assert_eq!(t.lookup_indexed(2, 10).unwrap(), &[0, 1, 3]);
    }

    #[test]
    fn update_maintains_index() {
        let mut t = filled();
        t.build_index(2).unwrap();
        let old = t.update(0, vec![Value::Int(1), Value::text("a2"), Value::Int(20)]).unwrap();
        assert_eq!(old[2], Value::Int(10));
        assert_eq!(t.lookup(2, 10), vec![1]);
        assert_eq!(t.lookup(2, 20), vec![0]);
        // Updating a NULL into a value and back.
        t.update(2, vec![Value::Int(3), Value::text("c"), Value::Int(20)]).unwrap();
        assert_eq!(t.lookup(2, 20), vec![0, 2]);
        t.update(2, vec![Value::Int(3), Value::text("c"), Value::Null]).unwrap();
        assert_eq!(t.lookup(2, 20), vec![0]);
        assert!(matches!(t.update(9, vec![]), Err(EngineError::RowMismatch { .. })));
    }

    #[test]
    fn delete_tombstones_and_maintains_index() {
        let mut t = filled();
        t.build_index(2).unwrap();
        let old = t.delete(0).unwrap();
        assert_eq!(old[0], Value::Int(1));
        assert!(t.is_deleted(0));
        assert_eq!(t.len(), 3, "slot count is stable");
        assert_eq!(t.live_rows(), 2);
        assert_eq!(t.lookup(2, 10), vec![1], "index excludes the tombstone");
        assert_eq!(t.iter().count(), 2, "iteration skips the tombstone");
        assert!(t.delete(0).is_err(), "double delete refused");
        // Row ids of survivors are unchanged.
        assert_eq!(t.row(1)[1], Value::text("b"));
    }

    #[test]
    fn delete_then_reinsert_pk_is_legal() {
        let mut t = filled();
        t.delete(0).unwrap();
        t.insert(vec![Value::Int(1), Value::text("a'"), Value::Int(10)]).unwrap();
        assert!(t.check_primary_key().is_ok(), "tombstoned pk does not conflict");
    }

    #[test]
    fn deleted_rows_skipped_by_scans() {
        let mut t = filled();
        t.delete(1).unwrap();
        assert_eq!(t.lookup(2, 10), vec![0], "scan path skips tombstones");
        assert_eq!(t.distinct_ints(0), 2);
        let mut t2 = Table::new(schema());
        t2.insert(vec![Value::Int(1), Value::text("x"), Value::Null]).unwrap();
        t2.delete(0).unwrap();
        assert!(t2.is_empty(), "all-tombstoned table is empty");
    }

    #[test]
    fn pk_check() {
        let mut t = filled();
        assert!(t.check_primary_key().is_ok());
        t.insert(vec![Value::Int(1), Value::text("dup"), Value::Null]).unwrap();
        assert!(matches!(t.check_primary_key(), Err(EngineError::DuplicateKey { key: 1, .. })));
    }
}

#[cfg(test)]
mod distinct_tests {
    use super::*;
    use crate::schema::ColumnDef;
    use crate::value::DataType;

    #[test]
    fn distinct_ints_scan_and_index_agree() {
        let schema = TableSchema {
            name: "t".into(),
            columns: vec![
                ColumnDef { name: "a".into(), ty: DataType::Int },
                ColumnDef { name: "s".into(), ty: DataType::Text },
            ],
            primary_key: None,
        };
        let mut t = Table::new(schema);
        for v in [1i64, 2, 2, 3, 3, 3] {
            t.insert(vec![Value::Int(v), Value::text("x")]).unwrap();
        }
        t.insert(vec![Value::Null, Value::text("y")]).unwrap();
        assert_eq!(t.distinct_ints(0), 3, "nulls excluded");
        t.build_index(0).unwrap();
        assert_eq!(t.distinct_ints(0), 3);
        // Text column: no integers at all.
        assert_eq!(t.distinct_ints(1), 0);
        // Out-of-range column: empty, not a panic.
        assert_eq!(t.distinct_ints(9), 0);
    }
}
