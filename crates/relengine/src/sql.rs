//! SQL text rendering for join-tree plans.
//!
//! The engine executes plans directly, but the paper's system *displays* the
//! SQL of lattice nodes to the developer (the sub-queries explaining a
//! non-answer). This module renders the equivalent `SELECT * FROM … WHERE …`
//! text, matching the template shape of the paper's Example 2:
//!
//! ```sql
//! SELECT * FROM R1, S2 WHERE R1.b = S2.c
//!   AND R1.a LIKE '%k1%' AND S2.d LIKE '%k2%'
//! ```

use crate::catalog::Database;
use crate::plan::JoinTreePlan;
use crate::predicate::Predicate;
use crate::schema::TableSchema;

/// Renders the SQL text of a plan against a database.
pub fn render_sql(plan: &JoinTreePlan, db: &Database) -> String {
    let aliases: Vec<String> = plan
        .nodes()
        .iter()
        .enumerate()
        .map(|(i, n)| n.alias.clone().unwrap_or_else(|| format!("t{i}")))
        .collect();

    let mut sql = String::from("SELECT * FROM ");
    for (i, n) in plan.nodes().iter().enumerate() {
        if i > 0 {
            sql.push_str(", ");
        }
        let name = &db.table(n.table).schema().name;
        sql.push_str(name);
        sql.push_str(" AS ");
        sql.push_str(&aliases[i]);
    }

    let mut conditions: Vec<String> = Vec::new();
    for e in plan.edges() {
        let sa = db.table(plan.nodes()[e.a].table).schema();
        let sb = db.table(plan.nodes()[e.b].table).schema();
        conditions.push(format!(
            "{}.{} = {}.{}",
            aliases[e.a],
            sa.columns[e.a_col].name,
            aliases[e.b],
            sb.columns[e.b_col].name
        ));
    }
    for (i, n) in plan.nodes().iter().enumerate() {
        if let Some(c) = render_predicate(&n.predicate, &aliases[i], db.table(n.table).schema()) {
            conditions.push(c);
        }
    }
    if !conditions.is_empty() {
        sql.push_str(" WHERE ");
        sql.push_str(&conditions.join(" AND "));
    }
    sql
}

/// Renders one node predicate; `None` for a trivially true predicate.
fn render_predicate(p: &Predicate, alias: &str, schema: &TableSchema) -> Option<String> {
    match p {
        Predicate::True => None,
        Predicate::AnyTextContains(kw) => {
            let parts: Vec<String> = schema
                .text_columns()
                .into_iter()
                .map(|c| format!("{alias}.{} LIKE '%{}%'", schema.columns[c].name, escape(kw)))
                .collect();
            match parts.len() {
                0 => Some("FALSE".to_owned()),
                1 => Some(parts.into_iter().next().expect("len checked")),
                _ => Some(format!("({})", parts.join(" OR "))),
            }
        }
        Predicate::ColumnContains { col, needle } => Some(format!(
            "{alias}.{} LIKE '%{}%'",
            schema.columns[*col].name,
            escape(needle)
        )),
        Predicate::IntEq { col, value } => {
            Some(format!("{alias}.{} = {value}", schema.columns[*col].name))
        }
        Predicate::And(ps) => {
            let parts: Vec<String> =
                ps.iter().filter_map(|p| render_predicate(p, alias, schema)).collect();
            match parts.len() {
                0 => None,
                1 => Some(parts.into_iter().next().expect("len checked")),
                _ => Some(format!("({})", parts.join(" AND "))),
            }
        }
        Predicate::Or(ps) => {
            let parts: Vec<String> =
                ps.iter().filter_map(|p| render_predicate(p, alias, schema)).collect();
            if parts.is_empty() {
                Some("FALSE".to_owned())
            } else if parts.len() == 1 {
                Some(parts.into_iter().next().expect("len checked"))
            } else {
                Some(format!("({})", parts.join(" OR ")))
            }
        }
    }
}

/// Escapes single quotes for SQL literal embedding.
fn escape(s: &str) -> String {
    s.replace('\'', "''")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::plan::{PlanEdge, PlanNode};
    use crate::value::DataType;

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("R")
            .column("a", DataType::Text)
            .column("b", DataType::Int);
        b.table("S")
            .column("c", DataType::Int)
            .column("d", DataType::Text);
        b.foreign_key("R", "b", "S", "c").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn renders_example2_template() {
        let db = db();
        let plan = JoinTreePlan::new(
            vec![
                PlanNode::new(0, Predicate::any_text_contains("k1")).with_alias("R1"),
                PlanNode::new(1, Predicate::any_text_contains("k2")).with_alias("S2"),
            ],
            vec![PlanEdge { a: 0, a_col: 1, b: 1, b_col: 0 }],
        )
        .unwrap();
        let sql = render_sql(&plan, &db);
        assert_eq!(
            sql,
            "SELECT * FROM R AS R1, S AS S2 WHERE R1.b = S2.c \
             AND R1.a LIKE '%k1%' AND S2.d LIKE '%k2%'"
        );
    }

    #[test]
    fn free_node_has_no_predicate() {
        let db = db();
        let plan = JoinTreePlan::new(vec![PlanNode::free(0)], vec![]).unwrap();
        assert_eq!(render_sql(&plan, &db), "SELECT * FROM R AS t0");
    }

    #[test]
    fn keyword_on_textless_table_renders_false() {
        let mut b = DatabaseBuilder::new();
        b.table("rel").column("x", DataType::Int);
        let db = b.finish().unwrap();
        let plan = JoinTreePlan::new(
            vec![PlanNode::new(0, Predicate::any_text_contains("k"))],
            vec![],
        )
        .unwrap();
        assert!(render_sql(&plan, &db).contains("FALSE"));
    }

    #[test]
    fn multi_text_column_or() {
        let mut b = DatabaseBuilder::new();
        b.table("c")
            .column("name", DataType::Text)
            .column("synonyms", DataType::Text);
        let db = b.finish().unwrap();
        let plan = JoinTreePlan::new(
            vec![PlanNode::new(0, Predicate::any_text_contains("saffron")).with_alias("C1")],
            vec![],
        )
        .unwrap();
        let sql = render_sql(&plan, &db);
        assert!(sql.contains("C1.name LIKE '%saffron%' OR C1.synonyms LIKE '%saffron%'"));
    }

    #[test]
    fn quote_escaping() {
        let db = db();
        let plan = JoinTreePlan::new(
            vec![PlanNode::new(0, Predicate::any_text_contains("o'brien"))],
            vec![],
        )
        .unwrap();
        assert!(render_sql(&plan, &db).contains("%o''brien%"));
    }

    #[test]
    fn and_or_composites() {
        let db = db();
        let p = Predicate::And(vec![
            Predicate::any_text_contains("x"),
            Predicate::IntEq { col: 1, value: 3 },
        ]);
        let plan = JoinTreePlan::new(vec![PlanNode::new(0, p)], vec![]).unwrap();
        let sql = render_sql(&plan, &db);
        assert!(sql.contains("(t0.a LIKE '%x%' AND t0.b = 3)"));
    }
}
