//! Table schemas: column definitions, primary keys, text attributes.

use crate::value::DataType;

/// Index of a column within its table schema.
pub type ColId = usize;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name, unique within the table.
    pub name: String,
    /// Column data type.
    pub ty: DataType,
}

/// Schema of one table: ordered columns plus an optional integer primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name, unique within the database.
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Index of the primary-key column, if declared. Always an `Int` column.
    pub primary_key: Option<ColId>,
}

impl TableSchema {
    /// Creates a schema with the given name and no columns.
    pub fn new(name: impl Into<String>) -> Self {
        TableSchema { name: name.into(), columns: Vec::new(), primary_key: None }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Looks up a column index by name.
    pub fn col_index(&self, name: &str) -> Option<ColId> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Returns the column definition at `col`.
    pub fn column(&self, col: ColId) -> &ColumnDef {
        &self.columns[col]
    }

    /// Indices of all text columns — the attributes keyword predicates search.
    pub fn text_columns(&self) -> Vec<ColId> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.ty == DataType::Text)
            .map(|(i, _)| i)
            .collect()
    }

    /// Whether the table has at least one text attribute. The paper's DBLife
    /// schema distinguishes entity tables (searchable) from relationship
    /// tables (pure key pairs, never keyword-bound).
    pub fn has_text(&self) -> bool {
        self.columns.iter().any(|c| c.ty == DataType::Text)
    }
}

/// A key/foreign-key association between two tables — one edge of the schema
/// graph the lattice is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SchemaFk {
    /// Referencing table.
    pub from_table: usize,
    /// Referencing column (in `from_table`).
    pub from_col: ColId,
    /// Referenced table.
    pub to_table: usize,
    /// Referenced column (in `to_table`), typically its primary key.
    pub to_col: ColId,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TableSchema {
        TableSchema {
            name: "item".into(),
            columns: vec![
                ColumnDef { name: "id".into(), ty: DataType::Int },
                ColumnDef { name: "name".into(), ty: DataType::Text },
                ColumnDef { name: "description".into(), ty: DataType::Text },
                ColumnDef { name: "color_id".into(), ty: DataType::Int },
            ],
            primary_key: Some(0),
        }
    }

    #[test]
    fn col_lookup() {
        let s = sample();
        assert_eq!(s.arity(), 4);
        assert_eq!(s.col_index("name"), Some(1));
        assert_eq!(s.col_index("nope"), None);
        assert_eq!(s.column(3).name, "color_id");
    }

    #[test]
    fn text_columns() {
        let s = sample();
        assert_eq!(s.text_columns(), vec![1, 2]);
        assert!(s.has_text());
        let mut rel = TableSchema::new("writes");
        rel.columns.push(ColumnDef { name: "pid".into(), ty: DataType::Int });
        assert!(!rel.has_text());
        assert!(rel.text_columns().is_empty());
    }
}
