//! The database catalog: tables plus the key/foreign-key schema graph,
//! and the epoch-stamped write path.
//!
//! Every database carries a process-unique **database id** and a monotonic
//! **epoch**. Bulk loading (the builder / `insert_values` path) happens at
//! epoch 0; afterwards the first-class write methods —
//! [`Database::append_rows`], [`Database::update_row`],
//! [`Database::delete_row`] — each bump the epoch and record an
//! [`EpochDelta`] describing exactly which `(table, column)` inputs were
//! dirtied. Downstream layers (textindex delta postings, the evaluation
//! cache's selective invalidation) consume the delta log through
//! [`Database::deltas_since`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::EngineError;
use crate::schema::{ColId, SchemaFk, TableSchema};
use crate::table::{Row, RowId, Table};
use crate::value::{DataType, Value};

/// Source of process-unique database ids (see [`Database::db_id`]).
static NEXT_DB_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_db_id() -> u64 {
    NEXT_DB_ID.fetch_add(1, Ordering::Relaxed)
}

/// Identifier of a table within a [`Database`] (dense, 0-based).
pub type TableId = usize;

/// Identifier of a foreign key within a [`Database`] (dense, 0-based).
pub type FkId = usize;

/// A named key/foreign-key association. These are the edges of the schema
/// graph from which the query lattice is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: TableId,
    /// Referencing column in `from_table` (an `Int` column).
    pub from_col: ColId,
    /// Referenced table.
    pub to_table: TableId,
    /// Referenced column in `to_table` (an `Int` column, usually its pk).
    pub to_col: ColId,
}

impl From<SchemaFk> for ForeignKey {
    fn from(fk: SchemaFk) -> Self {
        ForeignKey {
            from_table: fk.from_table,
            from_col: fk.from_col,
            to_table: fk.to_table,
            to_col: fk.to_col,
        }
    }
}

/// What a write did, for delta consumers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Rows appended ([`Database::append_rows`]).
    Append,
    /// A row's values replaced in place ([`Database::update_row`]).
    Update,
    /// A row tombstoned ([`Database::delete_row`]).
    Delete,
}

/// One epoch's dirty set: which table, which rows, which columns changed,
/// and — for updates and deletes — the prior row values, so index and
/// postings maintenance can subtract the old terms without a rescan.
#[derive(Debug, Clone)]
pub struct EpochDelta {
    /// The epoch this write created (the database's epoch after the write).
    pub epoch: u64,
    /// The written table.
    pub table: TableId,
    /// What happened.
    pub kind: DeltaKind,
    /// Columns whose values changed. Appends and deletes dirty every
    /// column; updates list only the columns whose value actually differs.
    pub cols: Vec<ColId>,
    /// The affected row ids.
    pub rows: Vec<RowId>,
    /// Prior values of updated/deleted rows (empty for appends).
    pub old: Vec<(RowId, Row)>,
}

/// An in-memory relational database: tables, name lookup, foreign keys,
/// and the epoch-stamped delta log (see the module docs).
#[derive(Debug)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    fks: Vec<ForeignKey>,
    /// Process-unique identity; a clone gets a fresh one (clones diverge).
    db_id: u64,
    /// Monotonic write counter; 0 = freshly loaded, never written.
    epoch: u64,
    /// Per-epoch dirty sets, ascending by epoch.
    deltas: Vec<EpochDelta>,
}

impl Clone for Database {
    /// Clones the data but assigns a **fresh database id**: two databases
    /// that can diverge must never share a cache identity `(db_id, epoch)`.
    fn clone(&self) -> Self {
        Database {
            tables: self.tables.clone(),
            by_name: self.by_name.clone(),
            fks: self.fks.clone(),
            db_id: fresh_db_id(),
            epoch: self.epoch,
            deltas: self.deltas.clone(),
        }
    }
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database {
            tables: Vec::new(),
            by_name: HashMap::new(),
            fks: Vec::new(),
            db_id: fresh_db_id(),
            epoch: 0,
            deltas: Vec::new(),
        }
    }

    /// Process-unique identity of this database instance. Together with
    /// [`Database::epoch`] this forms the cache identity downstream layers
    /// stamp entries with.
    pub fn db_id(&self) -> u64 {
        self.db_id
    }

    /// The current epoch: number of write calls applied since load.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The deltas recorded after `epoch`, ascending. A consumer that last
    /// synchronized at epoch E calls `deltas_since(E)` and applies what it
    /// gets; an empty slice means it is current.
    pub fn deltas_since(&self, epoch: u64) -> &[EpochDelta] {
        let start = self.deltas.partition_point(|d| d.epoch <= epoch);
        &self.deltas[start..]
    }

    /// Drops deltas at or below `epoch` from the log (they were compacted
    /// into every consumer). [`Database::deltas_since`] for older epochs
    /// then silently under-reports, so callers gate on
    /// [`Database::oldest_delta_epoch`].
    pub fn truncate_deltas(&mut self, epoch: u64) {
        self.deltas.retain(|d| d.epoch > epoch);
    }

    /// The smallest epoch still covered by the delta log: a consumer pinned
    /// at an epoch `>= oldest_delta_epoch() - 1` can catch up incrementally;
    /// anything older was compacted away. Equals the current epoch when the
    /// log is empty.
    pub fn oldest_delta_epoch(&self) -> u64 {
        self.deltas.first().map_or(self.epoch, |d| d.epoch)
    }

    /// Appends a batch of rows to a table as one epoch. All rows are
    /// validated before any is inserted, so a bad row leaves the database
    /// untouched. Returns the new row ids.
    pub fn append_rows(
        &mut self,
        table: TableId,
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<RowId>, EngineError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::UnknownTable(format!("#{table}")))?;
        if rows.is_empty() {
            return Ok(Vec::new());
        }
        for r in &rows {
            t.validate_row(r)?;
        }
        let mut ids = Vec::with_capacity(rows.len());
        for r in rows {
            ids.push(t.insert(r).expect("validated above"));
        }
        let cols = (0..t.schema().arity()).collect();
        self.epoch += 1;
        self.deltas.push(EpochDelta {
            epoch: self.epoch,
            table,
            kind: DeltaKind::Append,
            cols,
            rows: ids.clone(),
            old: Vec::new(),
        });
        Ok(ids)
    }

    /// Replaces one row's values as one epoch. The delta records only the
    /// columns whose value actually changed (a no-op update still bumps the
    /// epoch but dirties no columns).
    pub fn update_row(
        &mut self,
        table: TableId,
        id: RowId,
        values: Vec<Value>,
    ) -> Result<(), EngineError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::UnknownTable(format!("#{table}")))?;
        let old = t.update(id, values)?;
        let new = t.row(id);
        let cols: Vec<ColId> = old
            .iter()
            .zip(new.iter())
            .enumerate()
            .filter(|(_, (a, b))| a != b)
            .map(|(i, _)| i)
            .collect();
        self.epoch += 1;
        self.deltas.push(EpochDelta {
            epoch: self.epoch,
            table,
            kind: DeltaKind::Update,
            cols,
            rows: vec![id],
            old: vec![(id, old)],
        });
        Ok(())
    }

    /// Tombstones one row as one epoch (row ids stay stable; see
    /// [`Table::delete`]).
    pub fn delete_row(&mut self, table: TableId, id: RowId) -> Result<(), EngineError> {
        let t = self
            .tables
            .get_mut(table)
            .ok_or_else(|| EngineError::UnknownTable(format!("#{table}")))?;
        let old = t.delete(id)?;
        let cols = (0..t.schema().arity()).collect();
        self.epoch += 1;
        self.deltas.push(EpochDelta {
            epoch: self.epoch,
            table,
            kind: DeltaKind::Delete,
            cols,
            rows: vec![id],
            old: vec![(id, old)],
        });
        Ok(())
    }

    /// Registers a table; its name must be unique.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<TableId, EngineError> {
        if self.by_name.contains_key(&schema.name) {
            return Err(EngineError::DuplicateTable(schema.name));
        }
        let mut seen = HashMap::new();
        for c in &schema.columns {
            if seen.insert(c.name.clone(), ()).is_some() {
                return Err(EngineError::DuplicateColumn {
                    table: schema.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        if let Some(pk) = schema.primary_key {
            if pk >= schema.columns.len() {
                return Err(EngineError::UnknownColumn {
                    table: schema.name.clone(),
                    column: format!("#{pk}"),
                });
            }
            if schema.columns[pk].ty != DataType::Int {
                return Err(EngineError::NonIntegerKey {
                    table: schema.name.clone(),
                    column: schema.columns[pk].name.clone(),
                });
            }
        }
        let id = self.tables.len();
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Declares a key/foreign-key edge after validating both endpoints are
    /// existing integer columns.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<FkId, EngineError> {
        for (t, c) in [(fk.from_table, fk.from_col), (fk.to_table, fk.to_col)] {
            let table = self
                .tables
                .get(t)
                .ok_or_else(|| EngineError::UnknownTable(format!("#{t}")))?;
            let col = table.schema().columns.get(c).ok_or_else(|| {
                EngineError::UnknownColumn {
                    table: table.schema().name.clone(),
                    column: format!("#{c}"),
                }
            })?;
            if col.ty != DataType::Int {
                return Err(EngineError::NonIntegerKey {
                    table: table.schema().name.clone(),
                    column: col.name.clone(),
                });
            }
        }
        let id = self.fks.len();
        self.fks.push(fk);
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    ///
    /// # Panics
    /// Panics on an out-of-range id (ids originate from this database).
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id]
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id]
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// All tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate()
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// The foreign key with the given id.
    pub fn foreign_key(&self, id: FkId) -> &ForeignKey {
        &self.fks[id]
    }

    /// Inserts a row into a table identified by name.
    pub fn insert_values(&mut self, table: &str, values: Vec<Value>) -> Result<RowId, EngineError> {
        let id = self
            .table_id(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_owned()))?;
        self.tables[id].insert(values)
    }

    /// Inserts a row into a table identified by id.
    pub fn insert(&mut self, table: TableId, values: Vec<Value>) -> Result<RowId, EngineError> {
        self.tables[table].insert(values)
    }

    /// Builds join indexes on every column that participates in a foreign key
    /// (both endpoints) and on every primary key. Call after bulk loading.
    pub fn finalize(&mut self) {
        let mut targets: Vec<(TableId, ColId)> = Vec::new();
        for fk in &self.fks {
            targets.push((fk.from_table, fk.from_col));
            targets.push((fk.to_table, fk.to_col));
        }
        for (tid, t) in self.tables.iter().enumerate() {
            if let Some(pk) = t.schema().primary_key {
                targets.push((tid, pk));
            }
        }
        targets.sort_unstable();
        targets.dedup();
        for (tid, col) in targets {
            // Endpoints were validated as Int columns on declaration.
            self.tables[tid]
                .build_index(col)
                .expect("fk/pk endpoints are validated integer columns");
        }
    }

    /// Total number of live tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::live_rows).sum()
    }

    /// Validates referential integrity: every non-null FK value must resolve
    /// to at least one referenced row, and primary keys must be unique.
    /// Intended for tests and data generators, not the hot path.
    pub fn check_integrity(&self) -> Result<(), EngineError> {
        for t in &self.tables {
            t.check_primary_key()?;
        }
        for fk in &self.fks {
            let from = &self.tables[fk.from_table];
            let to = &self.tables[fk.to_table];
            for (_, row) in from.iter() {
                if let Some(v) = row[fk.from_col].as_int() {
                    if to.lookup(fk.to_col, v).is_empty() {
                        return Err(EngineError::RowMismatch {
                            table: from.schema().name.clone(),
                            detail: format!(
                                "dangling foreign key value {v} in column `{}` (references `{}`)",
                                from.schema().columns[fk.from_col].name,
                                to.schema().name
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn two_table_db() -> Database {
        let mut db = Database::new();
        let mut color = TableSchema::new("color");
        color.columns = vec![
            ColumnDef { name: "id".into(), ty: DataType::Int },
            ColumnDef { name: "name".into(), ty: DataType::Text },
        ];
        color.primary_key = Some(0);
        let mut item = TableSchema::new("item");
        item.columns = vec![
            ColumnDef { name: "id".into(), ty: DataType::Int },
            ColumnDef { name: "color_id".into(), ty: DataType::Int },
        ];
        item.primary_key = Some(0);
        let c = db.add_table(color).unwrap();
        let i = db.add_table(item).unwrap();
        db.add_foreign_key(ForeignKey { from_table: i, from_col: 1, to_table: c, to_col: 0 })
            .unwrap();
        db
    }

    #[test]
    fn name_lookup_and_duplicates() {
        let mut db = two_table_db();
        assert_eq!(db.table_id("color"), Some(0));
        assert_eq!(db.table_id("item"), Some(1));
        assert_eq!(db.table_id("nope"), None);
        assert!(matches!(
            db.add_table(TableSchema::new("color")),
            Err(EngineError::DuplicateTable(_))
        ));
        assert_eq!(db.table_count(), 2);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut db = Database::new();
        let mut s = TableSchema::new("t");
        s.columns = vec![
            ColumnDef { name: "a".into(), ty: DataType::Int },
            ColumnDef { name: "a".into(), ty: DataType::Int },
        ];
        assert!(matches!(db.add_table(s), Err(EngineError::DuplicateColumn { .. })));
    }

    #[test]
    fn text_pk_rejected() {
        let mut db = Database::new();
        let mut s = TableSchema::new("t");
        s.columns = vec![ColumnDef { name: "a".into(), ty: DataType::Text }];
        s.primary_key = Some(0);
        assert!(matches!(db.add_table(s), Err(EngineError::NonIntegerKey { .. })));
    }

    #[test]
    fn fk_validation() {
        let mut db = two_table_db();
        assert!(db
            .add_foreign_key(ForeignKey { from_table: 9, from_col: 0, to_table: 0, to_col: 0 })
            .is_err());
        assert!(db
            .add_foreign_key(ForeignKey { from_table: 1, from_col: 9, to_table: 0, to_col: 0 })
            .is_err());
        // Text column endpoint.
        assert!(db
            .add_foreign_key(ForeignKey { from_table: 1, from_col: 1, to_table: 0, to_col: 1 })
            .is_err());
        assert_eq!(db.foreign_keys().len(), 1);
        assert_eq!(db.foreign_key(0).to_table, 0);
    }

    #[test]
    fn finalize_builds_indexes() {
        let mut db = two_table_db();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values("item", vec![Value::Int(5), Value::Int(1)]).unwrap();
        db.finalize();
        assert!(db.table(0).has_index(0));
        assert!(db.table(1).has_index(1));
        assert_eq!(db.total_rows(), 2);
    }

    #[test]
    fn integrity_check() {
        let mut db = two_table_db();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values("item", vec![Value::Int(5), Value::Int(1)]).unwrap();
        assert!(db.check_integrity().is_ok());
        db.insert_values("item", vec![Value::Int(6), Value::Int(99)]).unwrap();
        assert!(db.check_integrity().is_err());
    }

    #[test]
    fn null_fk_passes_integrity() {
        let mut db = two_table_db();
        db.insert_values("item", vec![Value::Int(5), Value::Null]).unwrap();
        assert!(db.check_integrity().is_ok());
    }

    #[test]
    fn insert_unknown_table() {
        let mut db = two_table_db();
        assert!(matches!(
            db.insert_values("ghost", vec![]),
            Err(EngineError::UnknownTable(_))
        ));
    }

    #[test]
    fn writes_bump_epoch_and_record_deltas() {
        let mut db = two_table_db();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.finalize();
        assert_eq!(db.epoch(), 0, "bulk loading stays at epoch 0");
        assert!(db.deltas_since(0).is_empty());

        let ids = db
            .append_rows(0, vec![vec![Value::Int(2), Value::text("blue")]])
            .unwrap();
        assert_eq!(ids, vec![1]);
        assert_eq!(db.epoch(), 1);
        db.update_row(0, 1, vec![Value::Int(2), Value::text("navy")]).unwrap();
        db.delete_row(0, 0).unwrap();
        assert_eq!(db.epoch(), 3);

        let deltas = db.deltas_since(0);
        assert_eq!(deltas.len(), 3);
        assert_eq!(deltas[0].kind, DeltaKind::Append);
        assert_eq!(deltas[0].cols, vec![0, 1], "append dirties every column");
        assert_eq!(deltas[1].kind, DeltaKind::Update);
        assert_eq!(deltas[1].cols, vec![1], "only the changed column is dirty");
        assert_eq!(deltas[1].old[0].1[1], Value::text("blue"));
        assert_eq!(deltas[2].kind, DeltaKind::Delete);
        assert_eq!(deltas[2].old[0].1[1], Value::text("red"));
        assert_eq!(db.deltas_since(2).len(), 1, "catch-up from a later epoch");
        assert!(db.deltas_since(3).is_empty());

        // Appended row is indexed without a finalize() call.
        assert_eq!(db.table(0).lookup_indexed(0, 2).unwrap(), &[1]);
        // Deleted row left the index.
        assert_eq!(db.table(0).lookup_indexed(0, 1).unwrap(), &[] as &[RowId]);
    }

    #[test]
    fn append_validates_whole_batch_atomically() {
        let mut db = two_table_db();
        let err = db.append_rows(
            0,
            vec![
                vec![Value::Int(1), Value::text("ok")],
                vec![Value::Int(2)], // bad arity
            ],
        );
        assert!(err.is_err());
        assert_eq!(db.table(0).len(), 0, "no partial batch");
        assert_eq!(db.epoch(), 0, "failed write does not bump the epoch");
    }

    #[test]
    fn clone_gets_fresh_db_id_keeps_epoch() {
        let mut db = two_table_db();
        db.append_rows(0, vec![vec![Value::Int(1), Value::text("red")]]).unwrap();
        let snap = db.clone();
        assert_ne!(snap.db_id(), db.db_id(), "clones must not share cache identity");
        assert_eq!(snap.epoch(), db.epoch());
        assert_eq!(snap.deltas_since(0).len(), 1);
    }

    #[test]
    fn delta_log_truncation() {
        let mut db = two_table_db();
        for i in 0..4 {
            db.append_rows(0, vec![vec![Value::Int(i), Value::text("c")]]).unwrap();
        }
        assert_eq!(db.oldest_delta_epoch(), 1);
        db.truncate_deltas(2);
        assert_eq!(db.oldest_delta_epoch(), 3);
        assert_eq!(db.deltas_since(2).len(), 2);
        db.truncate_deltas(4);
        assert_eq!(db.oldest_delta_epoch(), db.epoch(), "empty log = current");
    }
}
