//! The database catalog: tables plus the key/foreign-key schema graph.

use std::collections::HashMap;

use crate::error::EngineError;
use crate::schema::{ColId, SchemaFk, TableSchema};
use crate::table::{RowId, Table};
use crate::value::{DataType, Value};

/// Identifier of a table within a [`Database`] (dense, 0-based).
pub type TableId = usize;

/// Identifier of a foreign key within a [`Database`] (dense, 0-based).
pub type FkId = usize;

/// A named key/foreign-key association. These are the edges of the schema
/// graph from which the query lattice is generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ForeignKey {
    /// Referencing table.
    pub from_table: TableId,
    /// Referencing column in `from_table` (an `Int` column).
    pub from_col: ColId,
    /// Referenced table.
    pub to_table: TableId,
    /// Referenced column in `to_table` (an `Int` column, usually its pk).
    pub to_col: ColId,
}

impl From<SchemaFk> for ForeignKey {
    fn from(fk: SchemaFk) -> Self {
        ForeignKey {
            from_table: fk.from_table,
            from_col: fk.from_col,
            to_table: fk.to_table,
            to_col: fk.to_col,
        }
    }
}

/// An in-memory relational database: tables, name lookup, foreign keys.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: Vec<Table>,
    by_name: HashMap<String, TableId>,
    fks: Vec<ForeignKey>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Registers a table; its name must be unique.
    pub fn add_table(&mut self, schema: TableSchema) -> Result<TableId, EngineError> {
        if self.by_name.contains_key(&schema.name) {
            return Err(EngineError::DuplicateTable(schema.name));
        }
        let mut seen = HashMap::new();
        for c in &schema.columns {
            if seen.insert(c.name.clone(), ()).is_some() {
                return Err(EngineError::DuplicateColumn {
                    table: schema.name.clone(),
                    column: c.name.clone(),
                });
            }
        }
        if let Some(pk) = schema.primary_key {
            if pk >= schema.columns.len() {
                return Err(EngineError::UnknownColumn {
                    table: schema.name.clone(),
                    column: format!("#{pk}"),
                });
            }
            if schema.columns[pk].ty != DataType::Int {
                return Err(EngineError::NonIntegerKey {
                    table: schema.name.clone(),
                    column: schema.columns[pk].name.clone(),
                });
            }
        }
        let id = self.tables.len();
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Table::new(schema));
        Ok(id)
    }

    /// Declares a key/foreign-key edge after validating both endpoints are
    /// existing integer columns.
    pub fn add_foreign_key(&mut self, fk: ForeignKey) -> Result<FkId, EngineError> {
        for (t, c) in [(fk.from_table, fk.from_col), (fk.to_table, fk.to_col)] {
            let table = self
                .tables
                .get(t)
                .ok_or_else(|| EngineError::UnknownTable(format!("#{t}")))?;
            let col = table.schema().columns.get(c).ok_or_else(|| {
                EngineError::UnknownColumn {
                    table: table.schema().name.clone(),
                    column: format!("#{c}"),
                }
            })?;
            if col.ty != DataType::Int {
                return Err(EngineError::NonIntegerKey {
                    table: table.schema().name.clone(),
                    column: col.name.clone(),
                });
            }
        }
        let id = self.fks.len();
        self.fks.push(fk);
        Ok(id)
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// The table with the given id.
    ///
    /// # Panics
    /// Panics on an out-of-range id (ids originate from this database).
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id]
    }

    /// Mutable access to a table.
    pub fn table_mut(&mut self, id: TableId) -> &mut Table {
        &mut self.tables[id]
    }

    /// Looks up a table id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// All tables with their ids.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().enumerate()
    }

    /// All declared foreign keys.
    pub fn foreign_keys(&self) -> &[ForeignKey] {
        &self.fks
    }

    /// The foreign key with the given id.
    pub fn foreign_key(&self, id: FkId) -> &ForeignKey {
        &self.fks[id]
    }

    /// Inserts a row into a table identified by name.
    pub fn insert_values(&mut self, table: &str, values: Vec<Value>) -> Result<RowId, EngineError> {
        let id = self
            .table_id(table)
            .ok_or_else(|| EngineError::UnknownTable(table.to_owned()))?;
        self.tables[id].insert(values)
    }

    /// Inserts a row into a table identified by id.
    pub fn insert(&mut self, table: TableId, values: Vec<Value>) -> Result<RowId, EngineError> {
        self.tables[table].insert(values)
    }

    /// Builds join indexes on every column that participates in a foreign key
    /// (both endpoints) and on every primary key. Call after bulk loading.
    pub fn finalize(&mut self) {
        let mut targets: Vec<(TableId, ColId)> = Vec::new();
        for fk in &self.fks {
            targets.push((fk.from_table, fk.from_col));
            targets.push((fk.to_table, fk.to_col));
        }
        for (tid, t) in self.tables.iter().enumerate() {
            if let Some(pk) = t.schema().primary_key {
                targets.push((tid, pk));
            }
        }
        targets.sort_unstable();
        targets.dedup();
        for (tid, col) in targets {
            // Endpoints were validated as Int columns on declaration.
            self.tables[tid]
                .build_index(col)
                .expect("fk/pk endpoints are validated integer columns");
        }
    }

    /// Total number of tuples across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Validates referential integrity: every non-null FK value must resolve
    /// to at least one referenced row, and primary keys must be unique.
    /// Intended for tests and data generators, not the hot path.
    pub fn check_integrity(&self) -> Result<(), EngineError> {
        for t in &self.tables {
            t.check_primary_key()?;
        }
        for fk in &self.fks {
            let from = &self.tables[fk.from_table];
            let to = &self.tables[fk.to_table];
            for (_, row) in from.iter() {
                if let Some(v) = row[fk.from_col].as_int() {
                    if to.lookup(fk.to_col, v).is_empty() {
                        return Err(EngineError::RowMismatch {
                            table: from.schema().name.clone(),
                            detail: format!(
                                "dangling foreign key value {v} in column `{}` (references `{}`)",
                                from.schema().columns[fk.from_col].name,
                                to.schema().name
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ColumnDef;

    fn two_table_db() -> Database {
        let mut db = Database::new();
        let mut color = TableSchema::new("color");
        color.columns = vec![
            ColumnDef { name: "id".into(), ty: DataType::Int },
            ColumnDef { name: "name".into(), ty: DataType::Text },
        ];
        color.primary_key = Some(0);
        let mut item = TableSchema::new("item");
        item.columns = vec![
            ColumnDef { name: "id".into(), ty: DataType::Int },
            ColumnDef { name: "color_id".into(), ty: DataType::Int },
        ];
        item.primary_key = Some(0);
        let c = db.add_table(color).unwrap();
        let i = db.add_table(item).unwrap();
        db.add_foreign_key(ForeignKey { from_table: i, from_col: 1, to_table: c, to_col: 0 })
            .unwrap();
        db
    }

    #[test]
    fn name_lookup_and_duplicates() {
        let mut db = two_table_db();
        assert_eq!(db.table_id("color"), Some(0));
        assert_eq!(db.table_id("item"), Some(1));
        assert_eq!(db.table_id("nope"), None);
        assert!(matches!(
            db.add_table(TableSchema::new("color")),
            Err(EngineError::DuplicateTable(_))
        ));
        assert_eq!(db.table_count(), 2);
    }

    #[test]
    fn duplicate_column_rejected() {
        let mut db = Database::new();
        let mut s = TableSchema::new("t");
        s.columns = vec![
            ColumnDef { name: "a".into(), ty: DataType::Int },
            ColumnDef { name: "a".into(), ty: DataType::Int },
        ];
        assert!(matches!(db.add_table(s), Err(EngineError::DuplicateColumn { .. })));
    }

    #[test]
    fn text_pk_rejected() {
        let mut db = Database::new();
        let mut s = TableSchema::new("t");
        s.columns = vec![ColumnDef { name: "a".into(), ty: DataType::Text }];
        s.primary_key = Some(0);
        assert!(matches!(db.add_table(s), Err(EngineError::NonIntegerKey { .. })));
    }

    #[test]
    fn fk_validation() {
        let mut db = two_table_db();
        assert!(db
            .add_foreign_key(ForeignKey { from_table: 9, from_col: 0, to_table: 0, to_col: 0 })
            .is_err());
        assert!(db
            .add_foreign_key(ForeignKey { from_table: 1, from_col: 9, to_table: 0, to_col: 0 })
            .is_err());
        // Text column endpoint.
        assert!(db
            .add_foreign_key(ForeignKey { from_table: 1, from_col: 1, to_table: 0, to_col: 1 })
            .is_err());
        assert_eq!(db.foreign_keys().len(), 1);
        assert_eq!(db.foreign_key(0).to_table, 0);
    }

    #[test]
    fn finalize_builds_indexes() {
        let mut db = two_table_db();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values("item", vec![Value::Int(5), Value::Int(1)]).unwrap();
        db.finalize();
        assert!(db.table(0).has_index(0));
        assert!(db.table(1).has_index(1));
        assert_eq!(db.total_rows(), 2);
    }

    #[test]
    fn integrity_check() {
        let mut db = two_table_db();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values("item", vec![Value::Int(5), Value::Int(1)]).unwrap();
        assert!(db.check_integrity().is_ok());
        db.insert_values("item", vec![Value::Int(6), Value::Int(99)]).unwrap();
        assert!(db.check_integrity().is_err());
    }

    #[test]
    fn null_fk_passes_integrity() {
        let mut db = two_table_db();
        db.insert_values("item", vec![Value::Int(5), Value::Null]).unwrap();
        assert!(db.check_integrity().is_ok());
    }

    #[test]
    fn insert_unknown_table() {
        let mut db = two_table_db();
        assert!(matches!(
            db.insert_values("ghost", vec![]),
            Err(EngineError::UnknownTable(_))
        ));
    }
}
