//! Deterministic fault injection: the chaos layer under the executor.
//!
//! Production keyword-search debuggers run their probe SQL against an engine
//! that fails — connections drop, replicas lag, a pathological join stalls.
//! This module makes those failure modes *reproducible*: a [`FaultInjector`]
//! draws from a seeded [`SplitMix64`] stream and
//! decides, per execution attempt, whether to inject a transient failure
//! ([`EngineError::Transient`]), a permanent failure
//! ([`EngineError::Failed`]) or artificial latency before the real
//! execution. [`ChaosExecutor`] wraps a plain [`Executor`] and applies the
//! injector to every `exists`/`execute` call.
//!
//! Determinism contract: the injector consumes exactly one decision per
//! attempt from a stream determined solely by [`FaultConfig::seed`], so the
//! same seed and the same sequence of attempts produce the same fault
//! schedule — the property the chaos integration suite and the `exp_chaos`
//! benchmark rely on. Injected faults always fire *before* the underlying
//! execution: a failed attempt never runs the query (so
//! [`ExecStats::queries`](crate::ExecStats) only counts real executions) and
//! results are never corrupted, only withheld.

use std::time::Duration;

use crate::catalog::Database;
use crate::error::EngineError;
use crate::exec::{Executor, MatchTuple};
use crate::plan::JoinTreePlan;
use crate::rng::SplitMix64;
use crate::stats::ExecStats;

/// Configuration of a deterministic fault schedule.
///
/// Rates are expressed per mille (0..=1000) so schedules are exact integer
/// draws rather than float comparisons. The default configuration injects
/// nothing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed of the decision stream; same seed, same schedule.
    pub seed: u64,
    /// Per-mille probability that an attempt fails transiently.
    pub transient_per_mille: u32,
    /// Per-mille probability that an attempt fails permanently.
    pub permanent_per_mille: u32,
    /// Per-mille probability that an attempt is delayed by `latency` before
    /// executing (the execution itself still succeeds).
    pub latency_per_mille: u32,
    /// The artificial delay injected when the latency draw fires.
    pub latency: Duration,
    /// Deterministic warm-up faults: the first `fail_first_transient`
    /// attempts fail transiently regardless of the rates. Lets tests pin
    /// down retry behavior exactly ("fail twice, then succeed").
    pub fail_first_transient: u32,
}

impl FaultConfig {
    /// A schedule that injects nothing (the happy path).
    pub fn quiet(seed: u64) -> FaultConfig {
        FaultConfig {
            seed,
            transient_per_mille: 0,
            permanent_per_mille: 0,
            latency_per_mille: 0,
            latency: Duration::ZERO,
            fail_first_transient: 0,
        }
    }

    /// A transient-only schedule at the given per-mille rate.
    pub fn transient(seed: u64, per_mille: u32) -> FaultConfig {
        FaultConfig { transient_per_mille: per_mille, ..FaultConfig::quiet(seed) }
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::quiet(0)
    }
}

/// The injector's verdict for one execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultDecision {
    /// Execute normally.
    None,
    /// Delay by the configured latency, then execute normally.
    Delay(Duration),
    /// Fail the attempt with [`EngineError::Transient`]; retrying re-draws.
    Transient,
    /// Fail the attempt with [`EngineError::Failed`]; retrying cannot help.
    Permanent,
}

/// Counts of decisions an injector has made, for assertions and reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Attempts that were allowed through untouched.
    pub passed: u64,
    /// Transient failures injected.
    pub transient: u64,
    /// Permanent failures injected.
    pub permanent: u64,
    /// Latency delays injected.
    pub delayed: u64,
}

impl FaultStats {
    /// Total faults injected (failures only; delays are slowdowns, not
    /// faults).
    pub fn faults(&self) -> u64 {
        self.transient + self.permanent
    }
}

/// A seeded source of per-attempt fault decisions.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    config: FaultConfig,
    rng: SplitMix64,
    attempts: u64,
    stats: FaultStats,
}

impl FaultInjector {
    /// Creates an injector for the given schedule.
    pub fn new(config: FaultConfig) -> FaultInjector {
        FaultInjector {
            config,
            rng: SplitMix64::seed_from_u64(config.seed),
            attempts: 0,
            stats: FaultStats::default(),
        }
    }

    /// The schedule this injector follows.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Decision counters so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// Draws the decision for the next execution attempt.
    ///
    /// Failure draws take priority over the latency draw; all three channels
    /// are drawn every attempt so the decision stream stays aligned no matter
    /// which outcomes fire.
    pub fn decide(&mut self) -> FaultDecision {
        self.attempts += 1;
        let transient = self.config.transient_per_mille > 0
            && self.rng.gen_ratio(self.config.transient_per_mille.min(1000), 1000);
        let permanent = self.config.permanent_per_mille > 0
            && self.rng.gen_ratio(self.config.permanent_per_mille.min(1000), 1000);
        let delayed = self.config.latency_per_mille > 0
            && self.rng.gen_ratio(self.config.latency_per_mille.min(1000), 1000);
        if self.attempts <= u64::from(self.config.fail_first_transient) {
            self.stats.transient += 1;
            return FaultDecision::Transient;
        }
        if permanent {
            self.stats.permanent += 1;
            FaultDecision::Permanent
        } else if transient {
            self.stats.transient += 1;
            FaultDecision::Transient
        } else if delayed {
            self.stats.delayed += 1;
            FaultDecision::Delay(self.config.latency)
        } else {
            self.stats.passed += 1;
            FaultDecision::None
        }
    }

    /// Applies the next decision: sleeps on delays, errors on failures.
    fn guard(&mut self) -> Result<(), EngineError> {
        match self.decide() {
            FaultDecision::None => Ok(()),
            FaultDecision::Delay(d) => {
                if !d.is_zero() {
                    std::thread::sleep(d);
                }
                Ok(())
            }
            FaultDecision::Transient => {
                Err(EngineError::Transient("injected transient fault".into()))
            }
            FaultDecision::Permanent => {
                Err(EngineError::Failed("injected permanent fault".into()))
            }
        }
    }
}

/// An [`Executor`] with a fault injector in front of every execution.
///
/// Mirrors the executor's probing API; each call first consults the
/// injector, so a faulted attempt returns an error *without* running the
/// query or touching [`ExecStats`]. Callers that retry transient errors get
/// a fresh draw per attempt.
pub struct ChaosExecutor<'a> {
    inner: Executor<'a>,
    injector: FaultInjector,
}

impl<'a> ChaosExecutor<'a> {
    /// Wraps a fresh executor over `db` with the given fault schedule.
    pub fn new(db: &'a Database, config: FaultConfig) -> ChaosExecutor<'a> {
        ChaosExecutor { inner: Executor::new(db), injector: FaultInjector::new(config) }
    }

    /// Wraps an existing executor (keeping its accumulated stats).
    pub fn wrap(inner: Executor<'a>, config: FaultConfig) -> ChaosExecutor<'a> {
        ChaosExecutor { inner, injector: FaultInjector::new(config) }
    }

    /// Unwraps back to the plain executor, discarding the fault schedule.
    pub fn into_inner(self) -> Executor<'a> {
        self.inner
    }

    /// Does the query return at least one tuple? May fail by injection.
    pub fn exists(&mut self, plan: &JoinTreePlan) -> Result<bool, EngineError> {
        self.injector.guard()?;
        self.inner.exists(plan)
    }

    /// [`Executor::exists_harvesting`] behind the injector: a faulted attempt
    /// fails *before* execution and therefore yields no harvest at all — the
    /// caller only ever caches value-sets from completed reductions.
    pub fn exists_harvesting(
        &mut self,
        plan: &JoinTreePlan,
        harvest: &[usize],
    ) -> Result<(bool, crate::exec::HarvestOut), EngineError> {
        self.injector.guard()?;
        self.inner.exists_harvesting(plan, harvest)
    }

    /// Evaluates the query, returning up to `limit` tuples. May fail by
    /// injection.
    pub fn execute(
        &mut self,
        plan: &JoinTreePlan,
        limit: usize,
    ) -> Result<Vec<MatchTuple>, EngineError> {
        self.injector.guard()?;
        self.inner.execute(plan, limit)
    }

    /// Statistics of the *real* executions (faulted attempts never count).
    pub fn stats(&self) -> &ExecStats {
        self.inner.stats()
    }

    /// Resets the execution statistics (not the fault schedule).
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Folds another executor's statistics into this one's (see
    /// [`Executor::absorb_stats`]).
    pub fn absorb_stats(&mut self, other: &ExecStats) {
        self.inner.absorb_stats(other);
    }

    /// The injector's decision counters.
    pub fn fault_stats(&self) -> &FaultStats {
        self.injector.stats()
    }

    /// The database this executor runs against.
    pub fn database(&self) -> &'a Database {
        self.inner.database()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::plan::PlanNode;
    use crate::predicate::Predicate;
    use crate::value::{DataType, Value};

    fn tiny_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("t").column("id", DataType::Int).column("name", DataType::Text);
        let mut db = b.finish().unwrap();
        db.insert_values("t", vec![Value::Int(1), Value::text("hit")]).unwrap();
        db.finalize();
        db
    }

    fn probe_plan(db: &Database) -> JoinTreePlan {
        let t = db.table_id("t").unwrap();
        JoinTreePlan::new(vec![PlanNode::new(t, Predicate::any_text_contains("hit"))], vec![])
            .unwrap()
    }

    #[test]
    fn quiet_schedule_is_transparent() {
        let db = tiny_db();
        let plan = probe_plan(&db);
        let mut chaos = ChaosExecutor::new(&db, FaultConfig::quiet(7));
        for _ in 0..10 {
            assert!(chaos.exists(&plan).unwrap());
        }
        assert_eq!(chaos.stats().queries, 10);
        assert_eq!(chaos.fault_stats().faults(), 0);
        assert_eq!(chaos.fault_stats().passed, 10);
    }

    #[test]
    fn same_seed_same_schedule() {
        let mk = || {
            let mut inj = FaultInjector::new(FaultConfig {
                transient_per_mille: 300,
                permanent_per_mille: 100,
                latency_per_mille: 200,
                latency: Duration::ZERO,
                ..FaultConfig::quiet(42)
            });
            (0..200).map(|_| inj.decide()).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn rates_roughly_respected() {
        let mut inj = FaultInjector::new(FaultConfig::transient(3, 500));
        for _ in 0..1000 {
            inj.decide();
        }
        let t = inj.stats().transient;
        assert!((350..=650).contains(&t), "~half the draws transient, got {t}");
        assert_eq!(inj.stats().permanent, 0);
    }

    #[test]
    fn fail_first_forces_warmup_faults() {
        let db = tiny_db();
        let plan = probe_plan(&db);
        let mut chaos = ChaosExecutor::new(
            &db,
            FaultConfig { fail_first_transient: 2, ..FaultConfig::quiet(1) },
        );
        assert!(chaos.exists(&plan).unwrap_err().is_transient());
        assert!(chaos.exists(&plan).unwrap_err().is_transient());
        assert!(chaos.exists(&plan).unwrap());
        // Faulted attempts never ran the query.
        assert_eq!(chaos.stats().queries, 1);
        assert_eq!(chaos.fault_stats().transient, 2);
    }

    #[test]
    fn permanent_faults_are_not_transient() {
        let db = tiny_db();
        let plan = probe_plan(&db);
        let mut chaos = ChaosExecutor::new(
            &db,
            FaultConfig { permanent_per_mille: 1000, ..FaultConfig::quiet(5) },
        );
        let err = chaos.exists(&plan).unwrap_err();
        assert!(err.is_fault());
        assert!(!err.is_transient());
        assert_eq!(chaos.stats().queries, 0);
    }

    #[test]
    fn execute_is_also_guarded() {
        let db = tiny_db();
        let plan = probe_plan(&db);
        let mut chaos = ChaosExecutor::new(
            &db,
            FaultConfig { fail_first_transient: 1, ..FaultConfig::quiet(9) },
        );
        assert!(chaos.execute(&plan, 5).is_err());
        assert_eq!(chaos.execute(&plan, 5).unwrap().len(), 1);
        assert_eq!(chaos.stats().queries, 1);
        assert_eq!(chaos.database().total_rows(), 1);
        chaos.reset_stats();
        assert_eq!(chaos.stats().queries, 0);
    }

    #[test]
    fn wrap_preserves_inner_stats() {
        let db = tiny_db();
        let plan = probe_plan(&db);
        let mut plain = Executor::new(&db);
        plain.exists(&plan).unwrap();
        let chaos = ChaosExecutor::wrap(plain, FaultConfig::quiet(0));
        assert_eq!(chaos.stats().queries, 1);
    }
}
