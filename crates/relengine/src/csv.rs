//! CSV import/export for tables.
//!
//! A downstream user's product catalog or entity dump usually arrives as CSV;
//! this module loads it into a declared schema (and writes tables back out),
//! with RFC-4180-style quoting. Values are typed by the target column:
//! `Int` columns parse as `i64`, empty fields become `NULL`, everything in a
//! `Text` column is taken verbatim.

use std::fmt::Write as _;

use crate::catalog::{Database, TableId};
use crate::error::EngineError;
use crate::value::{DataType, Value};

/// Parses one CSV record (no trailing newline) into fields, honouring
/// double-quote quoting and `""` escapes.
fn parse_record(line: &str) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    loop {
        match chars.next() {
            None => {
                if in_quotes {
                    return Err("unterminated quoted field".to_owned());
                }
                fields.push(field);
                return Ok(fields);
            }
            Some('"') if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    field.push('"');
                } else {
                    in_quotes = false;
                }
            }
            Some('"') if field.is_empty() && !in_quotes => in_quotes = true,
            Some(',') if !in_quotes => fields.push(std::mem::take(&mut field)),
            Some(c) => field.push(c),
        }
    }
}

/// Quotes a field if it contains a comma, quote, or newline.
fn quote(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Loads CSV text into an existing table. The first line must be a header
/// matching the table's column names (in order). Returns the number of rows
/// inserted. Call [`Database::finalize`] afterwards to rebuild join indexes.
pub fn load_csv(db: &mut Database, table: &str, csv: &str) -> Result<usize, EngineError> {
    let tid: TableId =
        db.table_id(table).ok_or_else(|| EngineError::UnknownTable(table.to_owned()))?;
    let schema = db.table(tid).schema().clone();
    let mut lines = csv.lines();
    let header = lines.next().ok_or_else(|| EngineError::RowMismatch {
        table: table.to_owned(),
        detail: "empty CSV input".into(),
    })?;
    let cols = parse_record(header).map_err(|e| EngineError::RowMismatch {
        table: table.to_owned(),
        detail: format!("bad header: {e}"),
    })?;
    let expected: Vec<&str> = schema.columns.iter().map(|c| c.name.as_str()).collect();
    if cols != expected {
        return Err(EngineError::RowMismatch {
            table: table.to_owned(),
            detail: format!("header {cols:?} does not match schema columns {expected:?}"),
        });
    }
    let mut inserted = 0;
    for (lineno, line) in lines.enumerate() {
        if line.is_empty() {
            continue;
        }
        let fields = parse_record(line).map_err(|e| EngineError::RowMismatch {
            table: table.to_owned(),
            detail: format!("line {}: {e}", lineno + 2),
        })?;
        if fields.len() != schema.arity() {
            return Err(EngineError::RowMismatch {
                table: table.to_owned(),
                detail: format!(
                    "line {}: expected {} fields, got {}",
                    lineno + 2,
                    schema.arity(),
                    fields.len()
                ),
            });
        }
        let mut values = Vec::with_capacity(fields.len());
        for (field, col) in fields.into_iter().zip(&schema.columns) {
            let value = if field.is_empty() {
                Value::Null
            } else {
                match col.ty {
                    DataType::Int => {
                        Value::Int(field.parse::<i64>().map_err(|_| EngineError::RowMismatch {
                            table: table.to_owned(),
                            detail: format!(
                                "line {}: `{field}` is not an integer for column `{}`",
                                lineno + 2,
                                col.name
                            ),
                        })?)
                    }
                    DataType::Text => Value::Text(field),
                }
            };
            values.push(value);
        }
        db.insert(tid, values)?;
        inserted += 1;
    }
    Ok(inserted)
}

/// Serializes a table to CSV text (header + rows; nulls as empty fields).
pub fn dump_csv(db: &Database, table: &str) -> Result<String, EngineError> {
    let tid =
        db.table_id(table).ok_or_else(|| EngineError::UnknownTable(table.to_owned()))?;
    let t = db.table(tid);
    let mut out = String::new();
    let header: Vec<String> =
        t.schema().columns.iter().map(|c| quote(&c.name)).collect();
    let _ = writeln!(out, "{}", header.join(","));
    for (_, row) in t.iter() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                Value::Int(i) => i.to_string(),
                Value::Text(s) => quote(s),
            })
            .collect();
        let _ = writeln!(out, "{}", fields.join(","));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.finish().expect("static")
    }

    #[test]
    fn round_trip() {
        let mut d = db();
        let csv = "id,name,color_id\n1,plain candle,2\n2,\"scented, fancy\",\n3,\"say \"\"hi\"\"\",7\n";
        let n = load_csv(&mut d, "item", csv).expect("loads");
        assert_eq!(n, 3);
        let t = d.table(0);
        assert_eq!(t.row(1)[1], Value::text("scented, fancy"));
        assert!(t.row(1)[2].is_null());
        assert_eq!(t.row(2)[1], Value::text("say \"hi\""));
        let dumped = dump_csv(&d, "item").expect("dumps");
        let mut d2 = db();
        load_csv(&mut d2, "item", &dumped).expect("reloads");
        for (rid, row) in d.table(0).iter() {
            assert_eq!(row, d2.table(0).row(rid));
        }
    }

    #[test]
    fn header_mismatch_rejected() {
        let mut d = db();
        assert!(matches!(
            load_csv(&mut d, "item", "id,nom,color_id\n1,x,2\n"),
            Err(EngineError::RowMismatch { .. })
        ));
    }

    #[test]
    fn arity_and_type_errors_carry_line_numbers() {
        let mut d = db();
        let err = load_csv(&mut d, "item", "id,name,color_id\n1,x\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = load_csv(&mut d, "item", "id,name,color_id\n1,x,2\nxx,y,3\n").unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        assert!(err.to_string().contains("not an integer"), "{err}");
    }

    #[test]
    fn unterminated_quote_rejected() {
        let mut d = db();
        let err = load_csv(&mut d, "item", "id,name,color_id\n1,\"oops,2\n").unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
    }

    #[test]
    fn unknown_table() {
        let mut d = db();
        assert!(matches!(
            load_csv(&mut d, "ghost", "a\n1\n"),
            Err(EngineError::UnknownTable(_))
        ));
        assert!(matches!(dump_csv(&d, "ghost"), Err(EngineError::UnknownTable(_))));
    }

    #[test]
    fn empty_lines_skipped_and_empty_input_rejected() {
        let mut d = db();
        assert!(load_csv(&mut d, "item", "").is_err());
        let n = load_csv(&mut d, "item", "id,name,color_id\n\n1,x,2\n\n").expect("loads");
        assert_eq!(n, 1);
    }

    #[test]
    fn parse_record_edge_cases() {
        assert_eq!(parse_record("a,b,c").unwrap(), vec!["a", "b", "c"]);
        assert_eq!(parse_record("").unwrap(), vec![""]);
        assert_eq!(parse_record(",").unwrap(), vec!["", ""]);
        assert_eq!(parse_record("\"a,b\",c").unwrap(), vec!["a,b", "c"]);
        assert_eq!(parse_record("\"\"").unwrap(), vec![""]);
        assert!(parse_record("\"open").is_err());
    }

    #[test]
    fn quote_function() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }
}
