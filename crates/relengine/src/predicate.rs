//! Row predicates — the instantiated `WHERE` clause fragments.
//!
//! A lattice node's SQL template has an uninstantiated `WHERE` clause offline;
//! at query time each keyword bound to a relation copy becomes an
//! [`Predicate::AnyTextContains`] over that copy's text attributes (the
//! paper's `Color.name LIKE '%saffron%' OR Color.synonyms LIKE '%saffron%'`).

use crate::schema::TableSchema;
use crate::table::Row;
use crate::value::{contains_ci, contains_ci_lower};

/// A boolean predicate over a single row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Predicate {
    /// Always true — the free tuple set `R_0` carries no keyword.
    True,
    /// Some text column of the row contains the needle (case-insensitive).
    AnyTextContains(String),
    /// A specific column contains the needle (case-insensitive).
    ColumnContains {
        /// Column index within the table schema.
        col: usize,
        /// Substring to search for.
        needle: String,
    },
    /// A specific integer column equals the value.
    IntEq {
        /// Column index within the table schema.
        col: usize,
        /// Value to compare against.
        value: i64,
    },
    /// Conjunction; empty conjunction is true.
    And(Vec<Predicate>),
    /// Disjunction; empty disjunction is false.
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for the keyword-containment predicate.
    pub fn any_text_contains(needle: impl Into<String>) -> Self {
        Predicate::AnyTextContains(needle.into())
    }

    /// Conjunction of all given keywords, each over any text column —
    /// the "AND semantics" form used when several keywords bind to the same
    /// relation copy is not allowed, but used by baselines that probe a
    /// single table with multiple keywords.
    pub fn all_keywords(keywords: &[&str]) -> Self {
        Predicate::And(keywords.iter().map(|k| Predicate::any_text_contains(*k)).collect())
    }

    /// Evaluates the predicate against a row of the given schema.
    pub fn eval(&self, schema: &TableSchema, row: &Row) -> bool {
        match self {
            Predicate::True => true,
            Predicate::AnyTextContains(needle) => row.iter().zip(&schema.columns).any(|(v, c)| {
                c.ty == crate::value::DataType::Text
                    && v.as_text().is_some_and(|s| contains_ci(s, needle))
            }),
            Predicate::ColumnContains { col, needle } => {
                row.get(*col).is_some_and(|v| v.contains_ci(needle))
            }
            Predicate::IntEq { col, value } => {
                row.get(*col).and_then(|v| v.as_int()) == Some(*value)
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(schema, row)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(schema, row)),
        }
    }

    /// Whether the predicate is trivially true (no filtering).
    pub fn is_true(&self) -> bool {
        match self {
            Predicate::True => true,
            Predicate::And(ps) => ps.iter().all(Predicate::is_true),
            _ => false,
        }
    }

    /// Precompiles the predicate for repeated evaluation: substring needles
    /// are ASCII-lowercased once here instead of once per row inside
    /// `contains_ci`. The executor compiles each plan node's predicate once
    /// per reduction and evaluates the compiled form in the row loop.
    pub fn compile(&self) -> CompiledPredicate {
        match self {
            Predicate::True => CompiledPredicate::True,
            Predicate::AnyTextContains(needle) => {
                CompiledPredicate::AnyTextContains(needle.to_ascii_lowercase().into_bytes())
            }
            Predicate::ColumnContains { col, needle } => CompiledPredicate::ColumnContains {
                col: *col,
                needle: needle.to_ascii_lowercase().into_bytes(),
            },
            Predicate::IntEq { col, value } => {
                CompiledPredicate::IntEq { col: *col, value: *value }
            }
            Predicate::And(ps) => CompiledPredicate::And(ps.iter().map(Predicate::compile).collect()),
            Predicate::Or(ps) => CompiledPredicate::Or(ps.iter().map(Predicate::compile).collect()),
        }
    }
}

/// The evaluation-ready form of a [`Predicate`]: same shape, but substring
/// needles are stored as pre-lowercased bytes so the per-row hot loop only
/// case-folds the haystack side. Semantically identical to evaluating the
/// source predicate (`contains_ci` is ASCII-case-insensitive on both sides).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledPredicate {
    /// Always true.
    True,
    /// Some text column contains the pre-lowercased needle bytes.
    AnyTextContains(Vec<u8>),
    /// A specific column contains the pre-lowercased needle bytes.
    ColumnContains {
        /// Column index within the table schema.
        col: usize,
        /// Pre-lowercased substring bytes.
        needle: Vec<u8>,
    },
    /// A specific integer column equals the value.
    IntEq {
        /// Column index within the table schema.
        col: usize,
        /// Value to compare against.
        value: i64,
    },
    /// Conjunction; empty conjunction is true.
    And(Vec<CompiledPredicate>),
    /// Disjunction; empty disjunction is false.
    Or(Vec<CompiledPredicate>),
}

impl CompiledPredicate {
    /// Evaluates the compiled predicate against a row of the given schema.
    /// Agrees with [`Predicate::eval`] on the source predicate for every row.
    pub fn eval(&self, schema: &TableSchema, row: &Row) -> bool {
        match self {
            CompiledPredicate::True => true,
            CompiledPredicate::AnyTextContains(needle) => {
                row.iter().zip(&schema.columns).any(|(v, c)| {
                    c.ty == crate::value::DataType::Text
                        && v.as_text().is_some_and(|s| contains_ci_lower(s, needle))
                })
            }
            CompiledPredicate::ColumnContains { col, needle } => row
                .get(*col)
                .and_then(|v| v.as_text())
                .is_some_and(|s| contains_ci_lower(s, needle)),
            CompiledPredicate::IntEq { col, value } => {
                row.get(*col).and_then(|v| v.as_int()) == Some(*value)
            }
            CompiledPredicate::And(ps) => ps.iter().all(|p| p.eval(schema, row)),
            CompiledPredicate::Or(ps) => ps.iter().any(|p| p.eval(schema, row)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, TableSchema};
    use crate::value::{DataType, Value};

    fn schema() -> TableSchema {
        TableSchema {
            name: "item".into(),
            columns: vec![
                ColumnDef { name: "id".into(), ty: DataType::Int },
                ColumnDef { name: "name".into(), ty: DataType::Text },
                ColumnDef { name: "description".into(), ty: DataType::Text },
            ],
            primary_key: Some(0),
        }
    }

    fn row(id: i64, name: &str, desc: &str) -> Row {
        vec![Value::Int(id), Value::text(name), Value::text(desc)].into_boxed_slice()
    }

    #[test]
    fn any_text_search_spans_all_text_columns() {
        let s = schema();
        let r = row(3, "crimson scented candle", "hand-made. saffron scented. 2pck.");
        assert!(Predicate::any_text_contains("saffron").eval(&s, &r));
        assert!(Predicate::any_text_contains("crimson").eval(&s, &r));
        assert!(!Predicate::any_text_contains("vanilla").eval(&s, &r));
    }

    #[test]
    fn any_text_ignores_int_columns() {
        let s = schema();
        let r = row(42, "a", "b");
        assert!(!Predicate::any_text_contains("42").eval(&s, &r));
    }

    #[test]
    fn column_contains_and_int_eq() {
        let s = schema();
        let r = row(1, "red candle", "rose scented");
        assert!(Predicate::ColumnContains { col: 1, needle: "red".into() }.eval(&s, &r));
        assert!(!Predicate::ColumnContains { col: 2, needle: "red".into() }.eval(&s, &r));
        assert!(Predicate::IntEq { col: 0, value: 1 }.eval(&s, &r));
        assert!(!Predicate::IntEq { col: 0, value: 2 }.eval(&s, &r));
        // Out-of-range column: false, not panic.
        assert!(!Predicate::ColumnContains { col: 9, needle: "x".into() }.eval(&s, &r));
        assert!(!Predicate::IntEq { col: 9, value: 1 }.eval(&s, &r));
    }

    #[test]
    fn and_or_semantics() {
        let s = schema();
        let r = row(1, "red candle", "rose scented");
        let t = Predicate::any_text_contains("red");
        let f = Predicate::any_text_contains("blue");
        assert!(Predicate::And(vec![t.clone(), t.clone()]).eval(&s, &r));
        assert!(!Predicate::And(vec![t.clone(), f.clone()]).eval(&s, &r));
        assert!(Predicate::Or(vec![f.clone(), t.clone()]).eval(&s, &r));
        assert!(!Predicate::Or(vec![f.clone(), f.clone()]).eval(&s, &r));
        assert!(Predicate::And(vec![]).eval(&s, &r));
        assert!(!Predicate::Or(vec![]).eval(&s, &r));
    }

    #[test]
    fn all_keywords_builder() {
        let s = schema();
        let r = row(1, "red candle", "rose scented");
        assert!(Predicate::all_keywords(&["red", "rose"]).eval(&s, &r));
        assert!(!Predicate::all_keywords(&["red", "vanilla"]).eval(&s, &r));
    }

    #[test]
    fn compiled_agrees_with_interpreted() {
        let s = schema();
        let rows = [
            row(1, "Red CANDLE", "rose scented"),
            row(2, "blue mug", ""),
            row(3, "", "SAFFRON scented candle"),
        ];
        let preds = [
            Predicate::True,
            Predicate::any_text_contains("CaNdLe"),
            Predicate::any_text_contains("vanilla"),
            Predicate::ColumnContains { col: 1, needle: "RED".into() },
            Predicate::ColumnContains { col: 0, needle: "1".into() },
            Predicate::IntEq { col: 0, value: 2 },
            Predicate::all_keywords(&["scented", "ROSE"]),
            Predicate::Or(vec![
                Predicate::any_text_contains("mug"),
                Predicate::any_text_contains("saffron"),
            ]),
        ];
        for p in &preds {
            let c = p.compile();
            for r in &rows {
                assert_eq!(c.eval(&s, r), p.eval(&s, r), "{p:?} on {r:?}");
            }
        }
    }

    #[test]
    fn is_true() {
        assert!(Predicate::True.is_true());
        assert!(Predicate::And(vec![Predicate::True, Predicate::True]).is_true());
        assert!(!Predicate::any_text_contains("x").is_true());
        assert!(!Predicate::Or(vec![]).is_true());
    }
}
