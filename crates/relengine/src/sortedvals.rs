//! Sorted integer value-sets: galloping membership and intersection.
//!
//! The executor's semi-join reduction and the cross-probe evaluation cache
//! both represent join-value sets as sorted, deduplicated `Vec<i64>` instead
//! of hash sets: construction is one sort over a scanned column, membership
//! is a binary search, and combining two sets is a galloping (exponential
//! search) intersection that costs `O(small · log(large/small))` — the same
//! representation either side of the cache boundary, so cached subtree
//! value-sets plug straight into a running reduction.

/// First index `i >= lo` with `s[i] >= v`, or `s.len()` if none, found by
/// galloping (doubling steps) from `lo` followed by a binary search inside
/// the final gallop window. Fast when successive probes advance locally.
pub(crate) fn gallop_gte(s: &[i64], mut lo: usize, v: i64) -> usize {
    let mut step = 1usize;
    let mut hi = lo;
    while hi < s.len() && s[hi] < v {
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|&x| x < v)
}

/// Whether sorted slice `s` contains `v` (binary search).
pub fn contains_sorted(s: &[i64], v: i64) -> bool {
    s.binary_search(&v).is_ok()
}

/// Intersection of two sorted, deduplicated slices, galloping through the
/// larger one. Returns a sorted, deduplicated vector.
pub fn intersect_sorted(a: &[i64], b: &[i64]) -> Vec<i64> {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(small.len());
    let mut pos = 0usize;
    for &v in small {
        pos = gallop_gte(large, pos, v);
        if pos >= large.len() {
            break;
        }
        if large[pos] == v {
            out.push(v);
            pos += 1;
        }
    }
    out
}

/// Sorts and deduplicates a value list in place, returning it — the
/// normal-form constructor for the sets the functions above consume.
pub fn normalize(mut values: Vec<i64>) -> Vec<i64> {
    values.sort_unstable();
    values.dedup();
    values
}

/// A row set grouped by its values in one column: CSR-style postings with
/// sorted distinct values, per-value offsets and ascending row ids per
/// value. The session cache stores one per (selection, join column) so a
/// probe can answer both "which values does this selection offer?"
/// ([`ValuePostings::values`]) and "which of its rows carry value v?"
/// ([`ValuePostings::rows_for`]) without re-reading a single row. Rows with
/// a NULL in the column are absent, matching every other value-set in this
/// module.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ValuePostings {
    values: Vec<i64>,
    /// `offsets[i]..offsets[i + 1]` indexes `rows` for `values[i]`.
    offsets: Vec<u32>,
    rows: Vec<crate::RowId>,
}

impl ValuePostings {
    /// Builds postings from `(value, row)` pairs (any order, rows unique).
    pub fn build(mut pairs: Vec<(i64, crate::RowId)>) -> ValuePostings {
        pairs.sort_unstable();
        let mut values = Vec::new();
        let mut offsets = Vec::new();
        let mut rows = Vec::with_capacity(pairs.len());
        for (v, rid) in pairs {
            if values.last() != Some(&v) {
                values.push(v);
                offsets.push(rows.len() as u32);
            }
            rows.push(rid);
        }
        offsets.push(rows.len() as u32);
        ValuePostings { values, offsets, rows }
    }

    /// The sorted distinct values present in the column.
    pub fn values(&self) -> &[i64] {
        &self.values
    }

    /// The ascending rows carrying the value at index `idx` of
    /// [`ValuePostings::values`].
    pub fn rows_at(&self, idx: usize) -> &[crate::RowId] {
        &self.rows[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// The ascending rows carrying value `v` (empty when absent).
    pub fn rows_for(&self, v: i64) -> &[crate::RowId] {
        match self.values.binary_search(&v) {
            Ok(idx) => self.rows_at(idx),
            Err(_) => &[],
        }
    }

    /// Approximate resident payload bytes (for cache accounting).
    pub fn payload_bytes(&self) -> u64 {
        (std::mem::size_of_val(self.values.as_slice())
            + std::mem::size_of_val(self.offsets.as_slice())
            + std::mem::size_of_val(self.rows.as_slice())) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gallop_finds_first_geq() {
        let s = [2, 4, 6, 8, 10, 12, 14];
        assert_eq!(gallop_gte(&s, 0, 1), 0);
        assert_eq!(gallop_gte(&s, 0, 2), 0);
        assert_eq!(gallop_gte(&s, 0, 5), 2);
        assert_eq!(gallop_gte(&s, 0, 14), 6);
        assert_eq!(gallop_gte(&s, 0, 15), 7);
        assert_eq!(gallop_gte(&s, 3, 9), 4);
        assert_eq!(gallop_gte(&s, 7, 1), 7);
        assert_eq!(gallop_gte(&[], 0, 0), 0);
    }

    #[test]
    fn membership() {
        let s = [1, 3, 5];
        assert!(contains_sorted(&s, 1));
        assert!(contains_sorted(&s, 5));
        assert!(!contains_sorted(&s, 2));
        assert!(!contains_sorted(&[], 0));
    }

    #[test]
    fn intersection_matches_naive() {
        let cases: &[(&[i64], &[i64], &[i64])] = &[
            (&[], &[1, 2], &[]),
            (&[1, 2, 3], &[2, 3, 4], &[2, 3]),
            (&[1, 5, 9], &[2, 6, 10], &[]),
            (&[1, 2, 3], &[1, 2, 3], &[1, 2, 3]),
            (&[7], &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12], &[7]),
            (&[-3, 0, 3], &[-5, -3, 3, 8], &[-3, 3]),
        ];
        for (a, b, want) in cases {
            assert_eq!(intersect_sorted(a, b), *want);
            assert_eq!(intersect_sorted(b, a), *want);
        }
    }

    #[test]
    fn normalize_sorts_and_dedups() {
        assert_eq!(normalize(vec![5, 1, 5, 3, 1]), vec![1, 3, 5]);
        assert_eq!(normalize(vec![]), Vec::<i64>::new());
    }
}
