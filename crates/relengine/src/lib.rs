//! # relengine — in-memory relational engine substrate
//!
//! The EDBT 2015 paper *On Debugging Non-Answers in Keyword Search Systems*
//! runs its generated SQL queries against PostgreSQL. This crate is the
//! self-contained stand-in: an in-memory relational engine that supports
//! exactly the query class a KWS-S (keyword search over structured data)
//! system emits —
//!
//! * `SELECT *` over a **tree of relations** (a join network of tuple sets),
//! * joined on **key/foreign-key equi-join** edges taken from the schema graph,
//! * filtered per-relation by **keyword containment predicates**
//!   (`col LIKE '%kw%'` over the relation's text attributes),
//! * with the only question that matters for aliveness being *"does the query
//!   return at least one tuple?"* (plus bounded enumeration for display).
//!
//! Execution uses a Yannakakis-style bottom-up semi-join reduction (join
//! networks are trees, hence acyclic), which answers emptiness in one pass and
//! supports early-exit enumeration afterwards. Every execution is counted and
//! timed in [`ExecStats`] so the paper's "number of SQL queries executed" and
//! "SQL time" measurements (Figures 11, 12, 14, 15 and Table 4) can be
//! reproduced.
//!
//! ## Quick tour
//!
//! ```
//! use relengine::{DatabaseBuilder, DataType, Value, JoinTreePlan, PlanNode, PlanEdge,
//!                 Predicate, Executor};
//!
//! let mut b = DatabaseBuilder::new();
//! b.table("color")
//!     .column("id", DataType::Int)
//!     .column("name", DataType::Text)
//!     .primary_key("id");
//! b.table("item")
//!     .column("id", DataType::Int)
//!     .column("name", DataType::Text)
//!     .column("color_id", DataType::Int);
//! b.foreign_key("item", "color_id", "color", "id").unwrap();
//! let mut db = b.finish().unwrap();
//! db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
//! db.insert_values("item", vec![Value::Int(10), Value::text("red candle"), Value::Int(1)]).unwrap();
//! db.finalize();
//!
//! let color = db.table_id("color").unwrap();
//! let item = db.table_id("item").unwrap();
//! let plan = JoinTreePlan::new(
//!     vec![PlanNode::new(item, Predicate::any_text_contains("candle")),
//!          PlanNode::new(color, Predicate::any_text_contains("red"))],
//!     vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
//! ).unwrap();
//! let mut exec = Executor::new(&db);
//! assert!(exec.exists(&plan).unwrap());
//! assert_eq!(exec.stats().queries, 1);
//! ```

mod builder;
mod catalog;
pub mod chaos;
mod csv;
mod error;
mod exec;
mod explain;
mod plan;
mod predicate;
pub mod rng;
mod schema;
pub mod sortedvals;
mod sql;
mod stats;
mod table;
mod value;

pub use builder::{DatabaseBuilder, TableBuilder};
pub use catalog::{Database, DeltaKind, EpochDelta, ForeignKey, FkId, TableId};
pub use chaos::{ChaosExecutor, FaultConfig, FaultDecision, FaultInjector, FaultStats};
pub use csv::{dump_csv, load_csv};
pub use error::EngineError;
pub use exec::{Executor, HarvestOut, MatchTuple};
pub use explain::{estimate_cardinality, explain};
pub use plan::{JoinTreePlan, PlanEdge, PlanNode};
pub use predicate::{CompiledPredicate, Predicate};
pub use schema::{ColId, ColumnDef, TableSchema};
pub use sql::render_sql;
pub use stats::ExecStats;
pub use table::{Row, RowId, Table};
pub use value::{DataType, Value};
