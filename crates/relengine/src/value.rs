//! Scalar values and data types.
//!
//! The KWS-S query class only needs integers (surrogate keys used by the
//! key/foreign-key joins) and free text (the attributes keyword predicates
//! search). `Null` exists so optional foreign keys ("NA" in the paper's
//! Figure 2 product table) behave like SQL: a null never joins and never
//! contains a keyword.

use std::fmt;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer; used for keys.
    Int,
    /// UTF-8 text; searched by keyword predicates.
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Text => write!(f, "TEXT"),
        }
    }
}

/// A scalar value stored in a row.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// An integer value.
    Int(i64),
    /// A text value.
    Text(String),
    /// SQL-style null: joins to nothing, contains no keyword.
    Null,
}

impl Value {
    /// Convenience constructor for a text value.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The value's data type, or `None` for null.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Int(_) => Some(DataType::Int),
            Value::Text(_) => Some(DataType::Text),
            Value::Null => None,
        }
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Text`.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Whether this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Case-insensitive substring containment, the engine's `LIKE '%kw%'`.
    ///
    /// `needle` is matched ASCII-case-insensitively without allocating; this
    /// is the hot path of every keyword predicate. Nulls and integers contain
    /// nothing; an empty needle is contained in any non-null text.
    pub fn contains_ci(&self, needle: &str) -> bool {
        match self {
            Value::Text(hay) => contains_ci(hay, needle),
            _ => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

/// ASCII-case-insensitive substring search without allocation.
pub(crate) fn contains_ci(hay: &str, needle: &str) -> bool {
    if needle.is_empty() {
        return true;
    }
    let hay = hay.as_bytes();
    let needle = needle.as_bytes();
    if needle.len() > hay.len() {
        return false;
    }
    let first = needle[0];
    'outer: for start in 0..=(hay.len() - needle.len()) {
        if !hay[start].eq_ignore_ascii_case(&first) {
            continue;
        }
        for (i, nb) in needle.iter().enumerate().skip(1) {
            if !hay[start + i].eq_ignore_ascii_case(nb) {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

/// [`contains_ci`] against a needle whose bytes are already ASCII-lowercased
/// (by [`crate::Predicate::compile`], once per plan instead of once per row).
/// Only the haystack side still pays the per-byte case fold.
pub(crate) fn contains_ci_lower(hay: &str, needle_lower: &[u8]) -> bool {
    if needle_lower.is_empty() {
        return true;
    }
    let hay = hay.as_bytes();
    if needle_lower.len() > hay.len() {
        return false;
    }
    let first = needle_lower[0];
    'outer: for start in 0..=(hay.len() - needle_lower.len()) {
        if hay[start].to_ascii_lowercase() != first {
            continue;
        }
        for (i, &nb) in needle_lower.iter().enumerate().skip(1) {
            if hay[start + i].to_ascii_lowercase() != nb {
                continue 'outer;
            }
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_ci_basic() {
        assert!(contains_ci("Saffron Scented Candle", "scented"));
        assert!(contains_ci("Saffron Scented Candle", "SAFFRON"));
        assert!(contains_ci("abc", ""));
        assert!(!contains_ci("", "a"));
        assert!(!contains_ci("ab", "abc"));
        assert!(contains_ci("xxabcyy", "abc"));
        assert!(!contains_ci("xxabcyy", "abd"));
    }

    #[test]
    fn contains_ci_at_boundaries() {
        assert!(contains_ci("candle", "can"));
        assert!(contains_ci("candle", "dle"));
        assert!(contains_ci("candle", "candle"));
        assert!(!contains_ci("candle", "candles"));
    }

    #[test]
    fn value_contains() {
        assert!(Value::text("Red Checkered Candle").contains_ci("red"));
        assert!(!Value::Int(42).contains_ci("4"));
        assert!(!Value::Null.contains_ci("x"));
        // Empty needle only matches text values.
        assert!(Value::text("x").contains_ci(""));
        assert!(!Value::Null.contains_ci(""));
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::text("a").as_int(), None);
        assert_eq!(Value::text("a").as_text(), Some("a"));
        assert_eq!(Value::Null.as_text(), None);
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn value_display() {
        assert_eq!(Value::Int(3).to_string(), "3");
        assert_eq!(Value::text("hi").to_string(), "hi");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Text.to_string(), "TEXT");
    }

    #[test]
    fn value_from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("s"), Value::text("s"));
        assert_eq!(Value::from("s".to_owned()), Value::text("s"));
    }
}
