//! `EXPLAIN`-style plan rendering with cardinality estimates.
//!
//! Renders a join-tree plan as an indented tree annotated with per-node
//! filter information, candidate counts, and System-R-style estimated
//! cardinalities (row count × predicate selectivity, divided by join-key
//! distinct counts). Used by debugging reports and handy when deciding which
//! sub-queries are worth materializing.

use std::fmt::Write as _;

use crate::catalog::Database;
use crate::plan::JoinTreePlan;
use crate::predicate::Predicate;

/// Estimated output cardinality of the whole plan.
///
/// Nodes contribute their (candidate-bounded) row counts; every join edge
/// divides by the larger distinct-value count of its two key columns. With
/// no statistics available (unindexed columns on empty tables) the estimate
/// degrades gracefully rather than erroring.
pub fn estimate_cardinality(plan: &JoinTreePlan, db: &Database) -> f64 {
    let mut est = 1.0f64;
    for node in plan.nodes() {
        let table = db.table(node.table);
        let base = match &node.candidates {
            Some(c) => c.len() as f64,
            None if node.predicate.is_true() => table.live_rows() as f64,
            // Without candidates, guess 10% predicate selectivity.
            None => table.live_rows() as f64 * 0.1,
        };
        est *= base;
    }
    for edge in plan.edges() {
        let va = db.table(plan.nodes()[edge.a].table).distinct_ints(edge.a_col).max(1);
        let vb = db.table(plan.nodes()[edge.b].table).distinct_ints(edge.b_col).max(1);
        est /= va.max(vb) as f64;
    }
    est
}

/// Renders the plan as an indented operator tree rooted at node 0.
pub fn explain(plan: &JoinTreePlan, db: &Database) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "JoinTree (est. rows ≈ {:.2})", estimate_cardinality(plan, db));
    let mut visited = vec![false; plan.node_count()];
    render_node(plan, db, 0, 0, &mut out, &mut visited);
    out
}

fn render_node(
    plan: &JoinTreePlan,
    db: &Database,
    node: usize,
    depth: usize,
    out: &mut String,
    visited: &mut [bool],
) {
    visited[node] = true;
    let n = &plan.nodes()[node];
    let table = db.table(n.table);
    let indent = "  ".repeat(depth + 1);
    let filter = describe_predicate(&n.predicate);
    let cands = n
        .candidates
        .as_ref()
        .map_or(String::new(), |c| format!(", {} candidates", c.len()));
    let _ = writeln!(
        out,
        "{indent}{} [{} rows{}]{}",
        n.alias.clone().unwrap_or_else(|| table.schema().name.clone()),
        table.live_rows(),
        cands,
        if filter.is_empty() { String::new() } else { format!(" filter: {filter}") },
    );
    for &(ei, next) in plan.neighbours(node) {
        if visited[next] {
            continue;
        }
        let e = plan.edges()[ei];
        let (local_col, remote_col) =
            if e.a == node { (e.a_col, e.b_col) } else { (e.b_col, e.a_col) };
        let _ = writeln!(
            out,
            "{indent}⋈ {}.{} = {}.{}",
            table.schema().name,
            table.schema().columns[local_col].name,
            db.table(plan.nodes()[next].table).schema().name,
            db.table(plan.nodes()[next].table).schema().columns[remote_col].name,
        );
        render_node(plan, db, next, depth + 1, out, visited);
    }
}

fn describe_predicate(p: &Predicate) -> String {
    match p {
        Predicate::True => String::new(),
        Predicate::AnyTextContains(kw) => format!("any text ~ '%{kw}%'"),
        Predicate::ColumnContains { col, needle } => format!("col#{col} ~ '%{needle}%'"),
        Predicate::IntEq { col, value } => format!("col#{col} = {value}"),
        Predicate::And(ps) => {
            let parts: Vec<String> =
                ps.iter().map(describe_predicate).filter(|s| !s.is_empty()).collect();
            parts.join(" AND ")
        }
        Predicate::Or(ps) => {
            let parts: Vec<String> =
                ps.iter().map(describe_predicate).filter(|s| !s.is_empty()).collect();
            format!("({})", parts.join(" OR "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DatabaseBuilder;
    use crate::plan::{PlanEdge, PlanNode};
    use crate::value::{DataType, Value};

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        for i in 1..=4i64 {
            db.insert_values("color", vec![Value::Int(i), Value::text(format!("c{i}"))])
                .expect("row");
        }
        for i in 1..=20i64 {
            db.insert_values(
                "item",
                vec![Value::Int(i), Value::text(format!("item {i}")), Value::Int(i % 4 + 1)],
            )
            .expect("row");
        }
        db.finalize();
        db
    }

    fn plan(_db: &Database) -> JoinTreePlan {
        JoinTreePlan::new(
            vec![
                PlanNode::new(1, Predicate::any_text_contains("item")).with_alias("item1"),
                PlanNode::free(0).with_alias("color0"),
            ],
            vec![PlanEdge { a: 0, a_col: 2, b: 1, b_col: 0 }],
        )
        .expect("valid")
    }

    #[test]
    fn explain_renders_tree_and_estimate() {
        let db = db();
        let text = explain(&plan(&db), &db);
        assert!(text.contains("JoinTree (est. rows"), "{text}");
        assert!(text.contains("item1 [20 rows]"), "{text}");
        assert!(text.contains("color0 [4 rows]"), "{text}");
        assert!(text.contains("any text ~ '%item%'"), "{text}");
        assert!(text.contains("⋈ item.color_id = color.id"), "{text}");
    }

    #[test]
    fn candidates_bound_estimate() {
        let db = db();
        let mut p = plan(&db);
        // Re-plan with an explicit 2-row candidate list.
        p = JoinTreePlan::new(
            vec![
                p.nodes()[0].clone().with_candidates(vec![0, 1]),
                p.nodes()[1].clone(),
            ],
            p.edges().to_vec(),
        )
        .expect("valid");
        // 2 candidates × 4 colors / 4 distinct = 2.
        let est = estimate_cardinality(&p, &db);
        assert!((est - 2.0).abs() < 1e-9, "{est}");
        assert!(explain(&p, &db).contains("2 candidates"));
    }

    #[test]
    fn unfiltered_estimate_uses_row_counts() {
        let db = db();
        let p = JoinTreePlan::new(vec![PlanNode::free(1)], vec![]).expect("valid");
        assert!((estimate_cardinality(&p, &db) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn predicate_without_candidates_discounted() {
        let db = db();
        let p = JoinTreePlan::new(
            vec![PlanNode::new(1, Predicate::any_text_contains("x"))],
            vec![],
        )
        .expect("valid");
        assert!((estimate_cardinality(&p, &db) - 2.0).abs() < 1e-9); // 20 * 0.1
    }
}
