//! Engine error type.

use std::fmt;

/// Errors raised by catalog construction and query execution.
///
/// The engine never panics on malformed input; everything user-supplied
/// (schemas, plans, rows) is validated and reported through this enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A table name was registered twice.
    DuplicateTable(String),
    /// A column name was registered twice within one table.
    DuplicateColumn { table: String, column: String },
    /// Referenced table does not exist.
    UnknownTable(String),
    /// Referenced column does not exist in the table.
    UnknownColumn { table: String, column: String },
    /// A row's arity or types do not match the table schema.
    RowMismatch { table: String, detail: String },
    /// A foreign key endpoint is not an integer column.
    NonIntegerKey { table: String, column: String },
    /// A join-tree plan is structurally invalid (not a connected tree, or
    /// references out-of-range nodes/columns).
    InvalidPlan(String),
    /// A primary key value appeared twice.
    DuplicateKey { table: String, key: i64 },
    /// A transient infrastructure failure (lost connection, timeout, an
    /// injected chaos fault): the query did not run, but retrying the same
    /// probe may succeed. The only variant for which
    /// [`EngineError::is_transient`] returns `true`.
    Transient(String),
    /// A permanent execution failure: the query did not run and retrying
    /// cannot help (e.g. an injected hard fault). Unlike the validation
    /// variants above, this represents an environmental failure rather than
    /// malformed input.
    Failed(String),
}

impl EngineError {
    /// Whether retrying the failed operation may succeed. Everything except
    /// [`EngineError::Transient`] is permanent: validation errors are
    /// deterministic and [`EngineError::Failed`] is a hard fault.
    pub fn is_transient(&self) -> bool {
        matches!(self, EngineError::Transient(_))
    }

    /// Whether this error represents an execution-time fault (transient or
    /// permanent) rather than a validation error — i.e. the query itself is
    /// well-formed but the environment failed. Fault-tolerance layers use
    /// this to separate "degrade gracefully" from "the caller has a bug".
    pub fn is_fault(&self) -> bool {
        matches!(self, EngineError::Transient(_) | EngineError::Failed(_))
    }
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DuplicateTable(t) => write!(f, "duplicate table `{t}`"),
            EngineError::DuplicateColumn { table, column } => {
                write!(f, "duplicate column `{column}` in table `{table}`")
            }
            EngineError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            EngineError::UnknownColumn { table, column } => {
                write!(f, "unknown column `{column}` in table `{table}`")
            }
            EngineError::RowMismatch { table, detail } => {
                write!(f, "row does not match schema of `{table}`: {detail}")
            }
            EngineError::NonIntegerKey { table, column } => {
                write!(f, "key column `{table}`.`{column}` must be INT")
            }
            EngineError::InvalidPlan(msg) => write!(f, "invalid join-tree plan: {msg}"),
            EngineError::DuplicateKey { table, key } => {
                write!(f, "duplicate primary key {key} in table `{table}`")
            }
            EngineError::Transient(msg) => write!(f, "transient failure: {msg}"),
            EngineError::Failed(msg) => write!(f, "execution failed: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            EngineError::DuplicateTable("t".into()).to_string(),
            "duplicate table `t`"
        );
        assert_eq!(
            EngineError::UnknownColumn { table: "t".into(), column: "c".into() }.to_string(),
            "unknown column `c` in table `t`"
        );
        assert!(EngineError::InvalidPlan("cycle".into()).to_string().contains("cycle"));
        let e: Box<dyn std::error::Error> = Box::new(EngineError::UnknownTable("x".into()));
        assert!(e.to_string().contains("x"));
    }

    #[test]
    fn taxonomy_splits_transient_from_permanent() {
        let t = EngineError::Transient("socket reset".into());
        assert!(t.is_transient());
        assert!(t.is_fault());
        assert!(t.to_string().contains("transient"));

        let p = EngineError::Failed("disk gone".into());
        assert!(!p.is_transient());
        assert!(p.is_fault());
        assert!(p.to_string().contains("failed"));

        // Validation errors are permanent non-faults: retrying a malformed
        // plan is pointless and the caller should see a hard error.
        let v = EngineError::InvalidPlan("cycle".into());
        assert!(!v.is_transient());
        assert!(!v.is_fault());
    }
}
