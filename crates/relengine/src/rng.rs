//! Deterministic pseudo-random numbers without external crates.
//!
//! The build environment has no network access to a crates registry, so the
//! generator cannot depend on `rand`. [`SplitMix64`] (Steele, Lea & Flood,
//! OOPSLA 2014 — the seeding generator of `java.util.SplittableRandom`) is a
//! tiny, well-distributed 64-bit generator that passes BigCrush and is fully
//! reproducible across platforms: the same seed always yields the same
//! database, which the workload tests rely on.
//!
//! The API mirrors the subset of `rand` the crate previously used
//! (`gen_range` over ranges, `gen_ratio`), so call sites read identically.
//! Not cryptographically secure; for synthetic data and randomized tests
//! only.

use std::ops::{Range, RangeInclusive};

/// SplitMix64 generator state.
///
/// ```
/// use relengine::rng::SplitMix64;
/// let mut rng = SplitMix64::seed_from_u64(7);
/// let a = rng.gen_range(0..10usize);
/// assert!(a < 10);
/// let b = rng.gen_range(1i64..=3);
/// assert!((1..=3).contains(&b));
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed. Same seed, same stream.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)` via Lemire's unbiased multiply-shift.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty sampling range");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        if (m as u64) < n {
            let threshold = n.wrapping_neg() % n;
            while (m as u64) < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
            }
        }
        (m >> 64) as u64
    }

    /// Uniform draw from a range, mirroring `rand::Rng::gen_range`.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// Returns `true` with probability `num / den`, mirroring
    /// `rand::Rng::gen_ratio`.
    pub fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "ratio must satisfy num <= den, den > 0");
        self.below(u64::from(den)) < u64::from(num)
    }
}

/// Range types [`SplitMix64::gen_range`] can sample from.
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draws one uniform element; panics on an empty range.
    fn sample(self, rng: &mut SplitMix64) -> Self::Output;
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        assert!(self.start < self.end, "empty sampling range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut SplitMix64) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty sampling range");
        lo + rng.below((hi - lo) as u64 + 1) as usize
    }
}

impl SampleRange for RangeInclusive<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty sampling range");
        let span = (hi as i128 - lo as i128 + 1) as u64;
        lo.wrapping_add(rng.below(span) as i64)
    }
}

impl SampleRange for RangeInclusive<i32> {
    type Output = i32;
    fn sample(self, rng: &mut SplitMix64) -> i32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty sampling range");
        let span = (i64::from(hi) - i64::from(lo) + 1) as u64;
        lo.wrapping_add(rng.below(span) as i32)
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample(self, rng: &mut SplitMix64) -> i64 {
        assert!(self.start < self.end, "empty sampling range");
        let span = (self.end as i128 - self.start as i128) as u64;
        self.start.wrapping_add(rng.below(span) as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn known_splitmix64_vector() {
        // Reference outputs for seed 1234567 from the public-domain
        // SplitMix64 C implementation (Vigna).
        let mut rng = SplitMix64::seed_from_u64(1234567);
        assert_eq!(rng.next_u64(), 6457827717110365317);
        assert_eq!(rng.next_u64(), 3203168211198807973);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SplitMix64::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(rng.gen_range(0..7usize) < 7);
            assert!((3..=5).contains(&rng.gen_range(3i64..=5)));
            assert!((0..=2).contains(&rng.gen_range(0i32..=2)));
            let one = rng.gen_range(4..5usize);
            assert_eq!(one, 4);
        }
    }

    #[test]
    fn gen_ratio_extremes() {
        let mut rng = SplitMix64::seed_from_u64(1);
        for _ in 0..100 {
            assert!(rng.gen_ratio(1, 1));
            assert!(!rng.gen_ratio(0, 1));
        }
    }

    #[test]
    fn below_covers_range() {
        let mut rng = SplitMix64::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }
}
