//! Offline lattice generation (Phase 0, the paper's Algorithm 1).
//!
//! The lattice contains every join-query network a KWS-S system can explore,
//! up to `maxJoins` joins, organized hierarchically: level `k` holds the
//! networks with `k` relation instances (`k-1` joins), and a node's children
//! are exactly its maximal sub-networks (one leaf removed). The structure is
//! computed once, offline, from the schema graph alone — it bypasses the
//! costly candidate-network generation of traditional KWS-S systems and, at
//! query time, lets the traversal strategies (Phase 3) *infer* the emptiness
//! of many SQL queries instead of executing them.
//!
//! Copies: for each relation `R` the lattice uses a free copy `R_0` (the
//! empty-keyword tuple set) plus keyword copies `R_1..R_{m+1}`. Keyword
//! copies appear at most once per network (each is bound 1-1 to a keyword at
//! runtime); free copies may repeat, which is what allows e.g.
//! `Person1 — Writes0 — Publication0 — Writes0 — Person2` co-author networks.
//! Keyword copies are only generated for relations that have text attributes;
//! copies of pure-relationship tables could never be bound to any keyword and
//! would be pruned in every query (a space optimization the paper's DBLife
//! schema makes natural: its 9 relationship tables carry no text).
//!
//! Two pruning rules apply during generation:
//! 1. **duplicate elimination** via canonical byte keys ([`crate::canonical`],
//!    the paper's "Offline Pruning 1"), and
//! 2. **degenerate-join elimination**: a vertex never uses the same foreign
//!    key from its referencing side twice (both neighbours would be forced to
//!    be the same tuple), mirroring DISCOVER's candidate-network rules.
//!
//! # Storage: compact arena (DESIGN.md §9)
//!
//! The lattice is stored as a struct-of-arrays arena rather than a
//! `Vec<Node>` of per-node heap objects: node ids are dense and level-ordered
//! (`0..n` iterates bottom-up), children/parents adjacency lives in two
//! shared CSR (compressed sparse row) arrays, and two query-time indexes are
//! precomputed once here so Phases 1–2 ([`crate::prune`]) never have to scan
//! the whole lattice:
//!
//! * a **tuple-set postings index** mapping each `(table, copy)` to the
//!   ascending list of node ids whose network contains that tuple set, and
//! * a **free-leaf flag** per node (`has_free_leaf`), which turns the MTN
//!   minimality test into a precomputed bit.
//!
//! All arrays are plain `Vec`s with no interior mutability, so one `Lattice`
//! is freely shareable (`&Lattice` is `Sync`) across concurrent query
//! sessions and the workers of [`crate::parallel`].

use std::collections::HashMap;
use std::time::{Duration, Instant};

use relengine::Database;

use crate::canonical::canonical_key;
use crate::jnts::{CopyIdx, Jnts, TupleSet};
use crate::schema_graph::SchemaGraph;

/// Identifier of a lattice node (dense, 0-based, ascending in level order).
pub type NodeId = u32;

/// Per-level generation statistics (reproduces Figure 9).
#[derive(Debug, Clone, Default)]
pub struct LevelStats {
    /// Networks produced by extension before duplicate elimination.
    pub generated: usize,
    /// Networks discarded as duplicates of an existing node.
    pub duplicates: usize,
    /// Nodes kept at this level.
    pub kept: usize,
    /// Wall-clock time spent building this level.
    pub elapsed: Duration,
}

/// Byte breakdown of the resident lattice arena (see
/// [`Lattice::memory_footprint`]).
#[derive(Debug, Clone, Default)]
pub struct LatticeFootprint {
    /// Total nodes in the arena.
    pub nodes: usize,
    /// Heap bytes held by the join networks (vertex and edge vectors).
    pub jnts_bytes: usize,
    /// Bytes of the CSR children/parents adjacency (offsets + ids).
    pub adjacency_bytes: usize,
    /// Bytes of the tuple-set postings index (offsets + ids).
    pub postings_bytes: usize,
    /// Bytes of the remaining per-node arrays (levels, identity ids,
    /// free-leaf flags) and per-level bookkeeping.
    pub index_bytes: usize,
}

impl LatticeFootprint {
    /// Total resident bytes across all arena arrays.
    pub fn total_bytes(&self) -> usize {
        self.jnts_bytes + self.adjacency_bytes + self.postings_bytes + self.index_bytes
    }
}

/// The full offline lattice, stored as a compact struct-of-arrays arena.
#[derive(Debug, Clone)]
pub struct Lattice {
    /// Join network of each node, indexed by `NodeId`.
    jnts: Vec<Jnts>,
    /// Level (= relation-instance count) of each node.
    node_levels: Vec<u32>,
    /// Identity array `[0, 1, .., n-1]`, kept so [`Lattice::level_nodes`] can
    /// hand out contiguous id slices (ids are level-ordered).
    ids: Vec<NodeId>,
    /// `level_start[k-1]..level_start[k]` is the id range of level `k`.
    level_start: Vec<usize>,
    /// CSR offsets into `child_ids`: children of `id` are
    /// `child_ids[child_off[id]..child_off[id+1]]`, ascending.
    child_off: Vec<usize>,
    /// CSR payload of children (maximal proper sub-networks, one level down).
    child_ids: Vec<NodeId>,
    /// CSR offsets into `parent_ids`.
    parent_off: Vec<usize>,
    /// CSR payload of parents (minimal proper super-networks, one level up).
    parent_ids: Vec<NodeId>,
    /// Postings stride: copies `0..=max_level` per table.
    copies_per_table: usize,
    /// Number of tables covered by the postings index.
    table_count: usize,
    /// CSR offsets into `posting_ids`, keyed by
    /// `table * copies_per_table + copy`.
    posting_off: Vec<usize>,
    /// CSR payload: ascending node ids containing each tuple set.
    posting_ids: Vec<NodeId>,
    /// Whether the node's network has more than one vertex and at least one
    /// free leaf — the precomputed complement of the MTN minimality test.
    free_leaf: Vec<bool>,
    max_joins: usize,
    stats: Vec<LevelStats>,
}

impl Lattice {
    /// Generates the lattice for `db` up to `max_joins` joins
    /// (`max_joins + 1` levels). This is the paper's Algorithm 1.
    pub fn build(db: &Database, graph: &SchemaGraph, max_joins: usize) -> Lattice {
        let max_level = max_joins + 1;
        let mut jnts: Vec<Jnts> = Vec::new();
        let mut tmp_children: Vec<Vec<NodeId>> = Vec::new();
        let mut level_counts: Vec<usize> = Vec::with_capacity(max_level);
        let mut stats: Vec<LevelStats> = Vec::with_capacity(max_level);

        // Base level: copies of every relation. Copy 0 always; keyword copies
        // 1..=max_joins+1 only for text-bearing relations.
        let t0 = Instant::now();
        let mut level_stats = LevelStats::default();
        for t in 0..db.table_count() {
            let max_copy = if graph.has_text(t) { max_level as CopyIdx } else { 0 };
            for copy in 0..=max_copy {
                jnts.push(Jnts::single(TupleSet::new(t, copy)));
                tmp_children.push(Vec::new());
                level_stats.generated += 1;
                level_stats.kept += 1;
            }
        }
        level_stats.elapsed = t0.elapsed();
        level_counts.push(jnts.len());
        stats.push(level_stats);

        // Higher levels by extension. Duplicate elimination interns the
        // canonical byte key of every generated network.
        let mut prev_range = 0..jnts.len();
        for _level in 2..=max_level {
            let t0 = Instant::now();
            let mut level_stats = LevelStats::default();
            let mut by_canon: HashMap<Vec<u8>, NodeId> = HashMap::new();
            let level_first = jnts.len();
            for g_id in prev_range.clone() {
                let g = jnts[g_id].clone();
                for at in 0..g.node_count() {
                    let table = g.nodes()[at].table;
                    for &incidence in graph.incident(table) {
                        // Degenerate-join rule: the referencing side of a key
                        // holds one value; it cannot join two neighbours.
                        if incidence.local_is_from && g.uses_fk_from(at, incidence.fk) {
                            continue;
                        }
                        let max_copy =
                            if graph.has_text(incidence.other) { max_level as CopyIdx } else { 0 };
                        for copy in 0..=max_copy {
                            if copy > 0 && g.contains(TupleSet::new(incidence.other, copy)) {
                                continue; // keyword copies are unique per network
                            }
                            let extended = g.extend(at, incidence, copy);
                            level_stats.generated += 1;
                            let key = canonical_key(&extended);
                            let target = match by_canon.get(key.as_slice()) {
                                Some(&existing) => {
                                    level_stats.duplicates += 1;
                                    existing
                                }
                                None => {
                                    let id = jnts.len() as NodeId;
                                    jnts.push(extended);
                                    tmp_children.push(Vec::new());
                                    by_canon.insert(key, id);
                                    level_stats.kept += 1;
                                    id
                                }
                            };
                            tmp_children[target as usize].push(g_id as NodeId);
                        }
                    }
                }
            }
            // A node can be linked to the same child through several
            // isomorphic extensions; keep links unique.
            for c in tmp_children.iter_mut().skip(level_first) {
                c.sort_unstable();
                c.dedup();
            }
            level_stats.elapsed = t0.elapsed();
            level_counts.push(jnts.len() - level_first);
            stats.push(level_stats);
            prev_range = level_first..jnts.len();
        }

        Lattice::assemble(jnts, tmp_children, level_counts, max_joins, stats)
    }

    /// Packs loose per-node data into the final arena: derives levels from
    /// the per-level counts, children/parents CSR from the child lists, and
    /// precomputes the postings index and free-leaf flags. Shared by
    /// [`Lattice::build`] and `Lattice::from_parts` (deserialization).
    fn assemble(
        jnts: Vec<Jnts>,
        tmp_children: Vec<Vec<NodeId>>,
        level_counts: Vec<usize>,
        max_joins: usize,
        stats: Vec<LevelStats>,
    ) -> Lattice {
        let n = jnts.len();
        debug_assert_eq!(n, tmp_children.len());
        debug_assert_eq!(n, level_counts.iter().sum::<usize>());

        let mut node_levels = Vec::with_capacity(n);
        let mut level_start = Vec::with_capacity(level_counts.len() + 1);
        level_start.push(0usize);
        for (k, &count) in level_counts.iter().enumerate() {
            node_levels.extend(std::iter::repeat_n(k as u32 + 1, count));
            level_start.push(level_start[k] + count);
        }
        let ids: Vec<NodeId> = (0..n as NodeId).collect();

        // Children CSR, then parents by inversion (children are deduped and
        // ascending, so each parent list comes out ascending and unique too).
        let mut child_off = Vec::with_capacity(n + 1);
        child_off.push(0usize);
        let mut child_ids = Vec::with_capacity(tmp_children.iter().map(Vec::len).sum());
        let mut parent_counts = vec![0usize; n];
        for c in &tmp_children {
            child_ids.extend_from_slice(c);
            child_off.push(child_ids.len());
            for &ci in c {
                parent_counts[ci as usize] += 1;
            }
        }
        drop(tmp_children);
        let mut parent_off = Vec::with_capacity(n + 1);
        parent_off.push(0usize);
        for &c in &parent_counts {
            parent_off.push(parent_off.last().unwrap() + c);
        }
        let mut parent_ids = vec![0 as NodeId; *parent_off.last().unwrap()];
        let mut parent_next = parent_off[..n].to_vec();
        for id in 0..n {
            for &ci in &child_ids[child_off[id]..child_off[id + 1]] {
                parent_ids[parent_next[ci as usize]] = id as NodeId;
                parent_next[ci as usize] += 1;
            }
        }

        // Tuple-set postings: ascending node ids per (table, copy). Repeated
        // free copies within one network must post the node once; since
        // nodes are visited in ascending id order, a duplicate within a node
        // is always the current last entry.
        let table_count = jnts
            .iter()
            .flat_map(|j| j.nodes().iter().map(|ts| ts.table + 1))
            .max()
            .unwrap_or(0);
        let copies_per_table = max_joins + 2; // copies 0..=max_level
        let mut postings: Vec<Vec<NodeId>> = vec![Vec::new(); table_count * copies_per_table];
        for (id, j) in jnts.iter().enumerate() {
            for ts in j.nodes() {
                let slot = &mut postings[ts.table * copies_per_table + ts.copy as usize];
                if slot.last() != Some(&(id as NodeId)) {
                    slot.push(id as NodeId);
                }
            }
        }
        let mut posting_off = Vec::with_capacity(postings.len() + 1);
        posting_off.push(0usize);
        let mut posting_ids = Vec::with_capacity(postings.iter().map(Vec::len).sum());
        for p in &postings {
            posting_ids.extend_from_slice(p);
            posting_off.push(posting_ids.len());
        }
        drop(postings);

        // MTN minimality precompute: a single-vertex network has no proper
        // sub-network, so only multi-vertex networks can fail on a free leaf.
        let free_leaf: Vec<bool> = jnts
            .iter()
            .map(|j| {
                j.node_count() > 1 && j.leaves().iter().any(|&l| j.nodes()[l].is_free())
            })
            .collect();

        Lattice {
            jnts,
            node_levels,
            ids,
            level_start,
            child_off,
            child_ids,
            parent_off,
            parent_ids,
            copies_per_table,
            table_count,
            posting_off,
            posting_ids,
            free_leaf,
            max_joins,
            stats,
        }
    }

    /// Reassembles a lattice from deserialized parts (see
    /// [`crate::lattice_io`]): the networks in level order, each node's child
    /// ids (ascending), and the per-level node counts. Callers must supply
    /// internally consistent data; `lattice_io` validates while reading.
    pub(crate) fn from_parts(
        jnts: Vec<Jnts>,
        children: Vec<Vec<NodeId>>,
        level_counts: Vec<usize>,
        max_joins: usize,
        stats: Vec<LevelStats>,
    ) -> Lattice {
        Lattice::assemble(jnts, children, level_counts, max_joins, stats)
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.jnts.len()
    }

    /// The join network of node `id`.
    pub fn jnts(&self, id: NodeId) -> &Jnts {
        &self.jnts[id as usize]
    }

    /// The level of node `id` (= relation instances in its network).
    pub fn level_of(&self, id: NodeId) -> u32 {
        self.node_levels[id as usize]
    }

    /// Children of `id`: its maximal proper sub-networks (one level down),
    /// ascending and unique.
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        &self.child_ids[self.child_off[id as usize]..self.child_off[id as usize + 1]]
    }

    /// Parents of `id`: its minimal proper super-networks (one level up),
    /// ascending and unique.
    pub fn parents(&self, id: NodeId) -> &[NodeId] {
        &self.parent_ids[self.parent_off[id as usize]..self.parent_off[id as usize + 1]]
    }

    /// Ascending ids of the nodes whose network contains the tuple set
    /// `(table, copy)`; empty for tuple sets outside the lattice.
    pub fn postings(&self, table: usize, copy: CopyIdx) -> &[NodeId] {
        let copy = copy as usize;
        if table >= self.table_count || copy >= self.copies_per_table {
            return &[];
        }
        let slot = table * self.copies_per_table + copy;
        &self.posting_ids[self.posting_off[slot]..self.posting_off[slot + 1]]
    }

    /// Number of tables covered by the postings index (tables with at least
    /// one copy in the lattice).
    pub fn table_count(&self) -> usize {
        self.table_count
    }

    /// Postings stride: valid copy indices are `0..copies_per_table()`
    /// (copy 0 is the free copy, `1..` the keyword copies).
    pub fn copies_per_table(&self) -> usize {
        self.copies_per_table
    }

    /// Whether the node's network has a free leaf (always `false` for
    /// single-vertex networks). A retained total node is an MTN iff this is
    /// `false` — see [`crate::mtn::is_mtn`].
    pub fn has_free_leaf(&self, id: NodeId) -> bool {
        self.free_leaf[id as usize]
    }

    /// Node ids at `level` (1-based); empty for out-of-range levels.
    pub fn level_nodes(&self, level: usize) -> &[NodeId] {
        if level == 0 || level >= self.level_start.len() {
            &[]
        } else {
            &self.ids[self.level_start[level - 1]..self.level_start[level]]
        }
    }

    /// Number of levels (`max_joins + 1`).
    pub fn level_count(&self) -> usize {
        self.level_start.len() - 1
    }

    /// The `maxJoins` the lattice was built for.
    pub fn max_joins(&self) -> usize {
        self.max_joins
    }

    /// Per-level generation statistics.
    pub fn stats(&self) -> &[LevelStats] {
        &self.stats
    }

    /// All node ids in level order (ids are dense and level-ordered, so this
    /// is simply `0..node_count`).
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.jnts.len() as NodeId
    }

    /// Byte breakdown of the resident arena, for capacity planning and the
    /// REPL's `:lattice` command.
    pub fn memory_footprint(&self) -> LatticeFootprint {
        let vecsz = |len: usize, elem: usize| len * elem;
        LatticeFootprint {
            nodes: self.node_count(),
            jnts_bytes: self.jnts.iter().map(Jnts::heap_bytes).sum::<usize>()
                + vecsz(self.jnts.len(), std::mem::size_of::<Jnts>()),
            adjacency_bytes: vecsz(self.child_off.len() + self.parent_off.len(), 8)
                + vecsz(self.child_ids.len() + self.parent_ids.len(), 4),
            postings_bytes: vecsz(self.posting_off.len(), 8)
                + vecsz(self.posting_ids.len(), 4),
            index_bytes: vecsz(self.node_levels.len(), 4)
                + vecsz(self.ids.len(), 4)
                + vecsz(self.level_start.len(), 8)
                + self.free_leaf.len()
                + vecsz(self.stats.len(), std::mem::size_of::<LevelStats>()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mtn::is_mtn;
    use relengine::{DataType, DatabaseBuilder};

    /// The paper's Example 2: R(a, b), S(c, d), one fk R.b -> S.c.
    fn example2_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("R").column("a", DataType::Text).column("b", DataType::Int);
        b.table("S").column("c", DataType::Int).column("d", DataType::Text);
        b.foreign_key("R", "b", "S", "c").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn example2_lattice_shape() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 1);
        // Base level: R0, R1, R2, S0, S1, S2 (m+1 = 2 keyword copies + free).
        assert_eq!(lat.level_nodes(1).len(), 6);
        // Level 2: Ri ⋈ Sj for i, j in {0,1,2} = 9 combinations.
        assert_eq!(lat.level_nodes(2).len(), 9);
        assert_eq!(lat.level_count(), 2);
        // The paper's Figure 4 shows the 4 keyword-copy-only combinations;
        // with the free copies the full count is 9.
        for &id in lat.level_nodes(2) {
            assert_eq!(lat.jnts(id).node_count(), 2);
            assert_eq!(lat.children(id).len(), 2); // R_i and S_j
            assert!(lat.parents(id).is_empty());
        }
    }

    #[test]
    fn duplicate_elimination_counts() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 1);
        let s = &lat.stats()[1];
        // Each R_i ⋈ S_j is generated twice (once extending R_i, once S_j).
        assert_eq!(s.generated, 18);
        assert_eq!(s.duplicates, 9);
        assert_eq!(s.kept, 9);
    }

    #[test]
    fn parent_child_links_are_mutual_and_unique() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        for id in lat.all_nodes() {
            for &c in lat.children(id) {
                assert!(lat.parents(c).contains(&id));
                assert_eq!(lat.level_of(c) + 1, lat.level_of(id));
            }
            let mut sorted = lat.children(id).to_vec();
            sorted.dedup();
            assert_eq!(sorted.len(), lat.children(id).len(), "duplicate child link");
        }
    }

    #[test]
    fn textless_tables_get_only_free_copies() {
        let mut b = DatabaseBuilder::new();
        b.table("person").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("writes").column("pid", DataType::Int).column("pubid", DataType::Int);
        b.foreign_key("writes", "pid", "person", "id").unwrap();
        let db = b.finish().unwrap();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        let base: Vec<_> =
            lat.level_nodes(1).iter().map(|&id| lat.jnts(id).nodes()[0]).collect();
        // person: copies 0..=3; writes: copy 0 only.
        assert_eq!(base.iter().filter(|ts| ts.table == 0).count(), 4);
        assert_eq!(base.iter().filter(|ts| ts.table == 1).count(), 1);
    }

    #[test]
    fn degenerate_double_reference_excluded() {
        // writes.pid references person. A network
        // person_a <- writes0 -> person_b via the SAME fk must not exist.
        let mut b = DatabaseBuilder::new();
        b.table("person").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("writes").column("pid", DataType::Int).column("pubid", DataType::Int);
        b.foreign_key("writes", "pid", "person", "id").unwrap();
        let db = b.finish().unwrap();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        for id in lat.all_nodes() {
            let j = lat.jnts(id);
            for v in 0..j.node_count() {
                let from_uses = j
                    .edges()
                    .iter()
                    .filter(|e| {
                        (e.a as usize == v && e.a_is_from) || (e.b as usize == v && !e.a_is_from)
                    })
                    .filter(|e| e.fk == 0)
                    .count();
                assert!(from_uses <= 1, "degenerate network in lattice");
            }
        }
    }

    #[test]
    fn growth_is_monotone_with_level() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 3);
        assert_eq!(lat.level_count(), 4);
        assert_eq!(lat.node_count(), lat.all_nodes().count());
        // Every node's networks validate as trees and match their level.
        for id in lat.all_nodes() {
            assert!(lat.jnts(id).validate());
            assert_eq!(lat.jnts(id).node_count() as u32, lat.level_of(id));
        }
    }

    #[test]
    fn level_accessor_bounds() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 1);
        assert!(lat.level_nodes(0).is_empty());
        assert!(lat.level_nodes(99).is_empty());
        assert_eq!(lat.max_joins(), 1);
    }

    #[test]
    fn postings_index_matches_membership() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        for t in 0..2 {
            for copy in 0..=3u8 {
                let posted = lat.postings(t, copy);
                // Ascending, unique, and exactly the containing nodes.
                assert!(posted.windows(2).all(|w| w[0] < w[1]));
                for id in lat.all_nodes() {
                    let contains = lat.jnts(id).contains(TupleSet::new(t, copy));
                    assert_eq!(
                        posted.binary_search(&id).is_ok(),
                        contains,
                        "postings({t},{copy}) disagrees on node {id}"
                    );
                }
            }
        }
        // Out-of-range tuple sets have empty postings.
        assert!(lat.postings(99, 1).is_empty());
        assert!(lat.postings(0, 99).is_empty());
    }

    #[test]
    fn free_leaf_flag_matches_structure() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        for id in lat.all_nodes() {
            let j = lat.jnts(id);
            let expect = j.node_count() > 1
                && j.leaves().iter().any(|&l| j.nodes()[l].is_free());
            assert_eq!(lat.has_free_leaf(id), expect, "node {id}");
        }
    }

    #[test]
    fn free_leaf_flag_agrees_with_is_mtn() {
        // For any retained total node, is_mtn == !has_free_leaf; exercise the
        // structural half on a real interpretation.
        use crate::binding::{map_keywords, KeywordQuery};
        use relengine::Value;
        use textindex::InvertedIndex;

        let mut db = example2_db();
        db.insert_values("R", vec![Value::text("alpha"), Value::Int(1)]).unwrap();
        db.insert_values("S", vec![Value::Int(1), Value::text("beta")]).unwrap();
        db.finalize();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("alpha beta").unwrap();
        let m = map_keywords(&q, &idx);
        for interp in &m.interpretations {
            for id in lat.all_nodes() {
                let j = lat.jnts(id);
                if crate::mtn::is_retained(j, interp) && crate::mtn::is_total(j, interp) {
                    assert_eq!(is_mtn(j, interp), !lat.has_free_leaf(id));
                }
            }
        }
    }

    #[test]
    fn memory_footprint_is_nonzero_and_additive() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        let fp = lat.memory_footprint();
        assert_eq!(fp.nodes, lat.node_count());
        assert!(fp.jnts_bytes > 0);
        assert!(fp.adjacency_bytes > 0);
        assert!(fp.postings_bytes > 0);
        assert_eq!(
            fp.total_bytes(),
            fp.jnts_bytes + fp.adjacency_bytes + fp.postings_bytes + fp.index_bytes
        );
    }
}
