//! Offline lattice generation (Phase 0, the paper's Algorithm 1).
//!
//! The lattice contains every join-query network a KWS-S system can explore,
//! up to `maxJoins` joins, organized hierarchically: level `k` holds the
//! networks with `k` relation instances (`k-1` joins), and a node's children
//! are exactly its maximal sub-networks (one leaf removed). The structure is
//! computed once, offline, from the schema graph alone — it bypasses the
//! costly candidate-network generation of traditional KWS-S systems and, at
//! query time, lets the traversal strategies (Phase 3) *infer* the emptiness
//! of many SQL queries instead of executing them.
//!
//! Copies: for each relation `R` the lattice uses a free copy `R_0` (the
//! empty-keyword tuple set) plus keyword copies `R_1..R_{m+1}`. Keyword
//! copies appear at most once per network (each is bound 1-1 to a keyword at
//! runtime); free copies may repeat, which is what allows e.g.
//! `Person1 — Writes0 — Publication0 — Writes0 — Person2` co-author networks.
//! Keyword copies are only generated for relations that have text attributes;
//! copies of pure-relationship tables could never be bound to any keyword and
//! would be pruned in every query (a space optimization the paper's DBLife
//! schema makes natural: its 9 relationship tables carry no text).
//!
//! Two pruning rules apply during generation:
//! 1. **duplicate elimination** via canonical labels ([`crate::canonical`],
//!    the paper's "Offline Pruning 1"), and
//! 2. **degenerate-join elimination**: a vertex never uses the same foreign
//!    key from its referencing side twice (both neighbours would be forced to
//!    be the same tuple), mirroring DISCOVER's candidate-network rules.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use relengine::Database;

use crate::canonical::canonical_label;
use crate::jnts::{CopyIdx, Jnts, TupleSet};
use crate::schema_graph::SchemaGraph;

/// Identifier of a lattice node (dense, 0-based).
pub type NodeId = u32;

/// One lattice node: a network plus its hierarchical links.
#[derive(Debug, Clone)]
pub struct LatticeNode {
    /// The join network of tuple sets.
    pub jnts: Jnts,
    /// Lattice level (= number of relation instances).
    pub level: u32,
    /// Minimal proper super-networks (one level up).
    pub parents: Vec<NodeId>,
    /// Maximal proper sub-networks (one level down).
    pub children: Vec<NodeId>,
}

/// Per-level generation statistics (reproduces Figure 9).
#[derive(Debug, Clone, Default)]
pub struct LevelStats {
    /// Networks produced by extension before duplicate elimination.
    pub generated: usize,
    /// Networks discarded as duplicates of an existing node.
    pub duplicates: usize,
    /// Nodes kept at this level.
    pub kept: usize,
    /// Wall-clock time spent building this level.
    pub elapsed: Duration,
}

/// The full offline lattice.
#[derive(Debug, Clone)]
pub struct Lattice {
    nodes: Vec<LatticeNode>,
    /// `levels[k-1]` lists the node ids at level `k`.
    levels: Vec<Vec<NodeId>>,
    max_joins: usize,
    stats: Vec<LevelStats>,
}

impl Lattice {
    /// Generates the lattice for `db` up to `max_joins` joins
    /// (`max_joins + 1` levels). This is the paper's Algorithm 1.
    pub fn build(db: &Database, graph: &SchemaGraph, max_joins: usize) -> Lattice {
        let max_level = max_joins + 1;
        let mut nodes: Vec<LatticeNode> = Vec::new();
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(max_level);
        let mut stats: Vec<LevelStats> = Vec::with_capacity(max_level);

        // Base level: copies of every relation. Copy 0 always; keyword copies
        // 1..=max_joins+1 only for text-bearing relations.
        let t0 = Instant::now();
        let mut base: Vec<NodeId> = Vec::new();
        let mut level_stats = LevelStats::default();
        for t in 0..db.table_count() {
            let max_copy = if graph.has_text(t) { max_level as CopyIdx } else { 0 };
            for copy in 0..=max_copy {
                let id = nodes.len() as NodeId;
                nodes.push(LatticeNode {
                    jnts: Jnts::single(TupleSet::new(t, copy)),
                    level: 1,
                    parents: Vec::new(),
                    children: Vec::new(),
                });
                base.push(id);
                level_stats.generated += 1;
                level_stats.kept += 1;
            }
        }
        level_stats.elapsed = t0.elapsed();
        levels.push(base);
        stats.push(level_stats);

        // Higher levels by extension.
        for level in 2..=max_level {
            let t0 = Instant::now();
            let mut level_stats = LevelStats::default();
            let mut by_canon: HashMap<String, NodeId> = HashMap::new();
            let mut this_level: Vec<NodeId> = Vec::new();
            let prev: Vec<NodeId> = levels[level - 2].clone();
            for g_id in prev {
                let g = nodes[g_id as usize].jnts.clone();
                for at in 0..g.node_count() {
                    let table = g.nodes()[at].table;
                    for &incidence in graph.incident(table) {
                        // Degenerate-join rule: the referencing side of a key
                        // holds one value; it cannot join two neighbours.
                        if incidence.local_is_from && g.uses_fk_from(at, incidence.fk) {
                            continue;
                        }
                        let max_copy =
                            if graph.has_text(incidence.other) { max_level as CopyIdx } else { 0 };
                        for copy in 0..=max_copy {
                            if copy > 0 && g.contains(TupleSet::new(incidence.other, copy)) {
                                continue; // keyword copies are unique per network
                            }
                            let extended = g.extend(at, incidence, copy);
                            level_stats.generated += 1;
                            let label = canonical_label(&extended);
                            let target = match by_canon.get(&label) {
                                Some(&existing) => {
                                    level_stats.duplicates += 1;
                                    existing
                                }
                                None => {
                                    let id = nodes.len() as NodeId;
                                    nodes.push(LatticeNode {
                                        jnts: extended,
                                        level: level as u32,
                                        parents: Vec::new(),
                                        children: Vec::new(),
                                    });
                                    by_canon.insert(label, id);
                                    this_level.push(id);
                                    level_stats.kept += 1;
                                    id
                                }
                            };
                            nodes[target as usize].children.push(g_id);
                            nodes[g_id as usize].parents.push(target);
                        }
                    }
                }
            }
            // A node can be linked to the same child through several
            // isomorphic extensions; keep links unique.
            for &id in &this_level {
                let n = &mut nodes[id as usize];
                n.children.sort_unstable();
                n.children.dedup();
            }
            for &id in &levels[level - 2] {
                let n = &mut nodes[id as usize];
                n.parents.sort_unstable();
                n.parents.dedup();
            }
            level_stats.elapsed = t0.elapsed();
            levels.push(this_level);
            stats.push(level_stats);
        }

        Lattice { nodes, levels, max_joins, stats }
    }

    /// Reassembles a lattice from deserialized parts (see
    /// [`crate::lattice_io`]). Callers must supply internally consistent
    /// data; `lattice_io` validates while reading.
    pub(crate) fn from_parts(
        nodes: Vec<LatticeNode>,
        levels: Vec<Vec<NodeId>>,
        max_joins: usize,
        stats: Vec<LevelStats>,
    ) -> Lattice {
        Lattice { nodes, levels, max_joins, stats }
    }

    /// Total number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &LatticeNode {
        &self.nodes[id as usize]
    }

    /// Node ids at `level` (1-based); empty for out-of-range levels.
    pub fn level_nodes(&self, level: usize) -> &[NodeId] {
        if level == 0 || level > self.levels.len() {
            &[]
        } else {
            &self.levels[level - 1]
        }
    }

    /// Number of levels (`max_joins + 1`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// The `maxJoins` the lattice was built for.
    pub fn max_joins(&self) -> usize {
        self.max_joins
    }

    /// Per-level generation statistics.
    pub fn stats(&self) -> &[LevelStats] {
        &self.stats
    }

    /// All node ids in level order.
    pub fn all_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.levels.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder};

    /// The paper's Example 2: R(a, b), S(c, d), one fk R.b -> S.c.
    fn example2_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("R").column("a", DataType::Text).column("b", DataType::Int);
        b.table("S").column("c", DataType::Int).column("d", DataType::Text);
        b.foreign_key("R", "b", "S", "c").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn example2_lattice_shape() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 1);
        // Base level: R0, R1, R2, S0, S1, S2 (m+1 = 2 keyword copies + free).
        assert_eq!(lat.level_nodes(1).len(), 6);
        // Level 2: Ri ⋈ Sj for i, j in {0,1,2} = 9 combinations.
        assert_eq!(lat.level_nodes(2).len(), 9);
        assert_eq!(lat.level_count(), 2);
        // The paper's Figure 4 shows the 4 keyword-copy-only combinations;
        // with the free copies the full count is 9.
        for &id in lat.level_nodes(2) {
            let n = lat.node(id);
            assert_eq!(n.jnts.node_count(), 2);
            assert_eq!(n.children.len(), 2); // R_i and S_j
            assert!(n.parents.is_empty());
        }
    }

    #[test]
    fn duplicate_elimination_counts() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 1);
        let s = &lat.stats()[1];
        // Each R_i ⋈ S_j is generated twice (once extending R_i, once S_j).
        assert_eq!(s.generated, 18);
        assert_eq!(s.duplicates, 9);
        assert_eq!(s.kept, 9);
    }

    #[test]
    fn parent_child_links_are_mutual_and_unique() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        for id in lat.all_nodes() {
            let n = lat.node(id);
            for &c in &n.children {
                assert!(lat.node(c).parents.contains(&id));
                assert_eq!(lat.node(c).level + 1, n.level);
            }
            let mut sorted = n.children.clone();
            sorted.dedup();
            assert_eq!(sorted.len(), n.children.len(), "duplicate child link");
        }
    }

    #[test]
    fn textless_tables_get_only_free_copies() {
        let mut b = DatabaseBuilder::new();
        b.table("person").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("writes").column("pid", DataType::Int).column("pubid", DataType::Int);
        b.foreign_key("writes", "pid", "person", "id").unwrap();
        let db = b.finish().unwrap();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        let base: Vec<_> = lat
            .level_nodes(1)
            .iter()
            .map(|&id| lat.node(id).jnts.nodes()[0])
            .collect();
        // person: copies 0..=3; writes: copy 0 only.
        assert_eq!(base.iter().filter(|ts| ts.table == 0).count(), 4);
        assert_eq!(base.iter().filter(|ts| ts.table == 1).count(), 1);
    }

    #[test]
    fn degenerate_double_reference_excluded() {
        // writes.pid references person. A network
        // person_a <- writes0 -> person_b via the SAME fk must not exist.
        let mut b = DatabaseBuilder::new();
        b.table("person").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("writes").column("pid", DataType::Int).column("pubid", DataType::Int);
        b.foreign_key("writes", "pid", "person", "id").unwrap();
        let db = b.finish().unwrap();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 2);
        for id in lat.all_nodes() {
            let j = &lat.node(id).jnts;
            for v in 0..j.node_count() {
                let from_uses = j
                    .edges()
                    .iter()
                    .filter(|e| {
                        (e.a as usize == v && e.a_is_from) || (e.b as usize == v && !e.a_is_from)
                    })
                    .filter(|e| e.fk == 0)
                    .count();
                assert!(from_uses <= 1, "degenerate network in lattice");
            }
        }
    }

    #[test]
    fn growth_is_monotone_with_level() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 3);
        assert_eq!(lat.level_count(), 4);
        assert_eq!(lat.node_count(), lat.all_nodes().count());
        // Every node's networks validate as trees and match their level.
        for id in lat.all_nodes() {
            let n = lat.node(id);
            assert!(n.jnts.validate());
            assert_eq!(n.jnts.node_count() as u32, n.level);
        }
    }

    #[test]
    fn level_accessor_bounds() {
        let db = example2_db();
        let g = SchemaGraph::new(&db);
        let lat = Lattice::build(&db, &g, 1);
        assert!(lat.level_nodes(0).is_empty());
        assert!(lat.level_nodes(99).is_empty());
        assert_eq!(lat.max_joins(), 1);
    }
}
