//! Interactive non-answer debugging sessions (paper §5, future work).
//!
//! The paper closes with: *"debugging is often an interactive process and it
//! is worth studying how to combine the search for MPANs with user
//! intervention."* This module implements that combination. A
//! [`DebugSession`] holds the Phase-2 state (pruned lattice + statuses) and
//! interleaves three kinds of step, all sharing the R1/R2 propagation:
//!
//! * [`DebugSession::step`] — execute the SQL of the most informative
//!   unknown node (chosen with the SBH score) through the oracle;
//! * [`DebugSession::assert_alive`] / [`DebugSession::assert_dead`] — inject
//!   an *external* verdict, e.g. a developer who already knows a relationship
//!   table is empty, or who wants to explore "what if I added this synonym"
//!   without touching the data. Contradictions with established knowledge
//!   are rejected, not absorbed;
//! * [`DebugSession::outcome`] — once everything needed is classified,
//!   extract the answers / non-answers / MPANs exactly as the batch
//!   traversals do.
//!
//! Because injected verdicts participate in inference, a single "this table
//! is empty in production" assertion can resolve large regions of the search
//! space without a single SQL execution — the interactive pruning the paper
//! anticipates.
//!
//! Sessions carry their own accounting — [`DebugSession::executed`],
//! [`DebugSession::injected`], [`DebugSession::inferred`] — and
//! [`DebugSession::outcome`] reports them through the same
//! [`crate::metrics::ProbeCounters`] block the batch traversals use, so a
//! stepped exploration and a batch run are directly comparable.
//!
//! Sessions inherit the oracle's robustness layer: a step against a budgeted
//! or chaos-wrapped oracle can come back [`StepOutcome::Abandoned`] (node
//! excluded from further suggestions) or [`StepOutcome::Exhausted`] (probing
//! over), and [`DebugSession::partial_outcome`] extracts whatever was
//! established so far as a partial [`TraversalOutcome`].

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::metrics::ProbeCounters;
use crate::oracle::{AlivenessOracle, Probe};
use crate::prune::PrunedLattice;
use crate::traversal::{outcome_from_global_status, Status, TraversalOutcome};

/// The result of one interactive [`DebugSession::step`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepOutcome {
    /// The suggested node's SQL was executed and the verdict recorded.
    Probed(usize, bool),
    /// The suggested node's probe failed permanently; the node stays unknown
    /// and is excluded from future suggestions.
    Abandoned(usize),
    /// The oracle's probe budget tripped; no further probing is possible
    /// (assertions still are — see [`DebugSession::partial_outcome`]).
    Exhausted,
    /// Nothing left to probe: the session is complete, or every remaining
    /// unknown node was abandoned.
    Done,
}

/// A stateful, steppable Phase-3 exploration.
pub struct DebugSession<'a> {
    lattice: &'a Lattice,
    pruned: PrunedLattice,
    status: Vec<Status>,
    /// Nodes whose probe failed permanently; never suggested again.
    abandoned: Vec<bool>,
    /// Static MTN-coverage weight per node (see the SBH module docs).
    weight: Vec<i64>,
    /// Aliveness prior used to rank suggestions.
    pa: f64,
    executed: u64,
    injected: u64,
    /// Nodes classified alive by R1 propagation (verdict cones, minus the
    /// asserted/executed node itself).
    r1_inferred: u64,
    /// Nodes classified dead by R2 propagation.
    r2_inferred: u64,
}

impl<'a> DebugSession<'a> {
    /// Opens a session over a pruned lattice.
    pub fn new(lattice: &'a Lattice, pruned: PrunedLattice, pa: f64) -> Self {
        let len = pruned.len();
        let mut weight = vec![0i64; len];
        for &m in pruned.mtns() {
            for &x in pruned.desc_plus(m) {
                weight[x] += 1;
            }
        }
        DebugSession {
            lattice,
            pruned,
            status: vec![Status::Unknown; len],
            abandoned: vec![false; len],
            weight,
            pa,
            executed: 0,
            injected: 0,
            r1_inferred: 0,
            r2_inferred: 0,
        }
    }

    /// The pruned lattice being explored.
    pub fn pruned(&self) -> &PrunedLattice {
        &self.pruned
    }

    /// Current status of dense node `i`.
    pub fn status(&self, i: usize) -> Status {
        self.status[i]
    }

    /// All statuses, indexed by dense node (for diagnosis once complete).
    pub fn statuses(&self) -> &[Status] {
        &self.status
    }

    /// Number of still-unknown nodes.
    pub fn unknown_count(&self) -> usize {
        self.status.iter().filter(|&&s| s == Status::Unknown).count()
    }

    /// SQL queries executed so far.
    pub fn executed(&self) -> u64 {
        self.executed
    }

    /// External verdicts injected so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Nodes classified by R1/R2 propagation rather than execution or
    /// injection — how much free work the inference rules did.
    pub fn inferred(&self) -> u64 {
        self.r1_inferred + self.r2_inferred
    }

    /// Whether every node is classified (outcome available).
    pub fn is_complete(&self) -> bool {
        self.unknown_count() == 0
    }

    /// Number of nodes abandoned after permanent probe failures.
    pub fn abandoned_count(&self) -> usize {
        self.abandoned.iter().filter(|&&x| x).count()
    }

    /// The most informative unknown node under the SBH score, or `None` when
    /// the session is complete (abandoned nodes are never suggested).
    pub fn suggestion(&self) -> Option<usize> {
        let mut best: Option<(f64, usize)> = None;
        for n in 0..self.pruned.len() {
            if self.status[n] != Status::Unknown || self.abandoned[n] {
                continue;
            }
            let a: i64 = self
                .pruned
                .desc_plus(n)
                .iter()
                .filter(|&&x| self.status[x] == Status::Unknown)
                .map(|&x| self.weight[x])
                .sum();
            let b: i64 = self
                .pruned
                .asc_plus(n)
                .iter()
                .filter(|&&x| self.status[x] == Status::Unknown)
                .map(|&x| self.weight[x])
                .sum();
            let gain = self.pa * a as f64 + (1.0 - self.pa) * b as f64;
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, n));
            }
        }
        best.map(|(_, n)| n)
    }

    /// Probes the suggestion's SQL through `oracle`. Degrades rather than
    /// erroring on injected faults or budget exhaustion — only genuine bugs
    /// (invalid plans, contradictions) surface as `Err`.
    pub fn step(&mut self, oracle: &mut AlivenessOracle<'_>) -> Result<StepOutcome, KwError> {
        let Some(n) = self.suggestion() else { return Ok(StepOutcome::Done) };
        match oracle.probe(self.pruned.lattice_id(n), self.pruned.jnts(self.lattice, n)) {
            Probe::Verdict(alive) => {
                self.executed += 1;
                self.record(n, alive)?;
                Ok(StepOutcome::Probed(n, alive))
            }
            Probe::NodeFailed(e) if e.is_fault() => {
                self.abandoned[n] = true;
                Ok(StepOutcome::Abandoned(n))
            }
            Probe::NodeFailed(e) => Err(e.into()),
            Probe::Exhausted(_) => Ok(StepOutcome::Exhausted),
        }
    }

    /// Runs [`DebugSession::step`] until nothing more can be probed: the
    /// session is complete, every remaining node was abandoned, or the
    /// oracle's budget tripped. Check [`DebugSession::is_complete`] (or take
    /// [`DebugSession::partial_outcome`]) afterwards.
    pub fn run_to_completion(
        &mut self,
        oracle: &mut AlivenessOracle<'_>,
    ) -> Result<(), KwError> {
        loop {
            match self.step(oracle)? {
                StepOutcome::Probed(..) | StepOutcome::Abandoned(_) => {}
                StepOutcome::Exhausted | StepOutcome::Done => return Ok(()),
            }
        }
    }

    /// Injects an external "this sub-query has results" verdict.
    pub fn assert_alive(&mut self, n: usize) -> Result<(), KwError> {
        self.inject(n, true)
    }

    /// Injects an external "this sub-query is empty" verdict.
    pub fn assert_dead(&mut self, n: usize) -> Result<(), KwError> {
        self.inject(n, false)
    }

    fn inject(&mut self, n: usize, alive: bool) -> Result<(), KwError> {
        if n >= self.pruned.len() {
            return Err(KwError::BadConfig(format!(
                "node {n} out of range for a {}-node session",
                self.pruned.len()
            )));
        }
        // Record first: a rejected contradiction must not count as injected
        // (or otherwise disturb the session's state).
        self.record(n, alive)?;
        self.injected += 1;
        Ok(())
    }

    /// Records a verdict and propagates R1/R2; rejects contradictions.
    fn record(&mut self, n: usize, alive: bool) -> Result<(), KwError> {
        let (new_status, cone): (Status, &[usize]) = if alive {
            (Status::Alive, self.pruned.desc_plus(n))
        } else {
            (Status::Dead, self.pruned.asc_plus(n))
        };
        let contradiction = match self.status[n] {
            Status::Unknown => None,
            s if s == new_status => return Ok(()), // redundant, fine
            _ => Some(n),
        }
        .or_else(|| {
            cone.iter()
                .copied()
                .find(|&x| self.status[x] != Status::Unknown && self.status[x] != new_status)
        });
        if let Some(x) = contradiction {
            return Err(KwError::ConflictingVerdict(format!(
                "node {n} asserted {} but node {x} is already {:?}",
                if alive { "alive" } else { "dead" },
                self.status[x]
            )));
        }
        let inferred =
            cone.iter().filter(|&&x| x != n && self.status[x] == Status::Unknown).count() as u64;
        if alive {
            self.r1_inferred += inferred;
        } else {
            self.r2_inferred += inferred;
        }
        for &x in cone {
            self.status[x] = new_status;
        }
        Ok(())
    }

    /// Extracts the final classification once complete; `None` while unknown
    /// nodes remain.
    pub fn outcome(&self) -> Option<TraversalOutcome> {
        if !self.is_complete() {
            return None;
        }
        Some(self.partial_outcome())
    }

    /// Extracts whatever classification the session has established so far,
    /// complete or not: unclassified MTNs land in
    /// [`TraversalOutcome::unknown_mtns`] and dead MTNs report their MPAN
    /// frontier as confirmed/possible bounds. On a complete session this is
    /// exactly [`DebugSession::outcome`].
    pub fn partial_outcome(&self) -> TraversalOutcome {
        let classified = outcome_from_global_status(&self.pruned, &self.status);
        TraversalOutcome {
            alive_mtns: classified.alive_mtns,
            dead_mtns: classified.dead_mtns,
            mpans: classified.mpans,
            possible_mpans: classified.possible_mpans,
            unknown_mtns: classified.unknown_mtns,
            exhausted: None,
            sql_queries: self.executed,
            sql_time: std::time::Duration::ZERO,
            probes: ProbeCounters {
                probes_executed: self.executed,
                r1_inferences: self.r1_inferred,
                r2_inferences: self.r2_inferred,
                probes_abandoned: self.abandoned_count() as u64,
                ..ProbeCounters::default()
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::prune::PrunedLattice;
    use crate::schema_graph::SchemaGraph;
    use crate::traversal::{self, StrategyKind};
    use relengine::{DataType, Database, DatabaseBuilder, Value};
    use textindex::InvertedIndex;

    /// ptype <- item -> color; "blue candle" dead, "red candle" alive.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        for (id, n) in [(1, "candle"), (2, "oil")] {
            db.insert_values("ptype", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n) in [(1, "red"), (2, "blue")] {
            db.insert_values("color", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n, p, c) in [(1, "wick", 1, 1), (2, "drop", 2, 2)] {
            db.insert_values(
                "item",
                vec![Value::Int(id), Value::text(n), Value::Int(p), Value::Int(c)],
            )
            .expect("row");
        }
        db.finalize();
        db
    }

    struct Fix {
        db: Database,
        index: InvertedIndex,
        lattice: Lattice,
        keywords: Vec<String>,
        interp: crate::binding::Interpretation,
    }

    fn fix(text: &str) -> Fix {
        let db = db();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let query = KeywordQuery::parse(text).expect("parses");
        let mapping = map_keywords(&query, &index);
        let interp = mapping.interpretations[0].clone();
        Fix { db, index, lattice, keywords: mapping.keywords, interp }
    }

    #[test]
    fn stepping_to_completion_matches_batch_sbh() {
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mut session = DebugSession::new(&f.lattice, pruned.clone(), 0.5);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        assert!(session.outcome().is_none());
        session.run_to_completion(&mut oracle).expect("session runs");
        let got = session.outcome().expect("complete");

        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        let batch = traversal::run(
            StrategyKind::ScoreBasedHeuristic, &f.lattice, &pruned, &mut oracle, 0.5,
        )
        .expect("batch runs");
        assert_eq!(got.alive_mtns, batch.alive_mtns);
        assert_eq!(got.dead_mtns, batch.dead_mtns);
        assert_eq!(got.mpans, batch.mpans);
        assert_eq!(got.sql_queries, batch.sql_queries, "same greedy order, same cost");
        assert_eq!(got.probes.probes_executed, batch.probes.probes_executed);
        assert_eq!(got.probes.r1_inferences, batch.probes.r1_inferences, "same R1 firings");
        assert_eq!(got.probes.r2_inferences, batch.probes.r2_inferences, "same R2 firings");
        assert_eq!(session.inferred(), got.probes.inferences());
    }

    #[test]
    fn injected_verdicts_save_executions() {
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        // Find the MTN and assert it dead by hand (the developer "knows").
        let mtn = pruned.mtns()[0];
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        session.assert_dead(mtn).expect("assertion accepted");
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        session.run_to_completion(&mut oracle).expect("session runs");
        let out = session.outcome().expect("complete");
        assert_eq!(out.dead_mtns.len(), 1);
        assert_eq!(session.injected(), 1);
        // The paper's batch SBH executes the MTN itself; we saved that query.
        assert!(session.executed() < 6, "injection pruned the search");
    }

    #[test]
    fn contradictions_rejected() {
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mtn = pruned.mtns()[0];
        // A child of the MTN.
        let child = pruned.children(mtn)[0];
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        session.assert_dead(child).expect("first verdict fine");
        // The MTN is now dead by R2; asserting it alive must fail.
        let err = session.assert_alive(mtn).expect_err("contradiction");
        assert!(matches!(err, KwError::ConflictingVerdict(_)), "{err}");
        // Redundant re-assertion is fine.
        session.assert_dead(mtn).expect("consistent verdict accepted");
    }

    #[test]
    fn out_of_range_assertion_rejected() {
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        assert!(session.assert_alive(9999).is_err());
    }

    #[test]
    fn counters_and_accessors() {
        let f = fix("red candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let total = pruned.len();
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        assert_eq!(session.unknown_count(), total);
        assert!(!session.is_complete());
        assert!(session.suggestion().is_some());
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        let StepOutcome::Probed(n, alive) = session.step(&mut oracle).expect("runs") else {
            panic!("first step must probe");
        };
        assert_eq!(session.status(n), if alive { Status::Alive } else { Status::Dead });
        assert!(session.unknown_count() < total);
        session.run_to_completion(&mut oracle).expect("runs");
        assert!(session.is_complete());
        assert_eq!(session.step(&mut oracle).expect("runs"), StepOutcome::Done);
        assert!(session.pruned().len() == total);
        assert_eq!(session.abandoned_count(), 0);
    }

    #[test]
    fn rejected_assertions_leave_state_untouched() {
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mtn = pruned.mtns()[0];
        let child = pruned.children(mtn)[0];
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        session.assert_dead(child).expect("first verdict fine");

        let statuses_before: Vec<Status> = session.statuses().to_vec();
        let injected_before = session.injected();
        let inferred_before = session.inferred();
        let suggestion_before = session.suggestion();

        let err = session.assert_alive(mtn).expect_err("contradiction");
        assert!(matches!(err, KwError::ConflictingVerdict(_)), "{err}");

        assert_eq!(session.statuses(), statuses_before.as_slice(), "statuses intact");
        assert_eq!(session.injected(), injected_before, "rejection not counted");
        assert_eq!(session.inferred(), inferred_before, "no phantom inference");
        assert_eq!(session.suggestion(), suggestion_before, "suggestion unchanged");

        // The session still works: it runs to the same completion as if the
        // contradiction had never been attempted.
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        session.run_to_completion(&mut oracle).expect("session runs");
        let out = session.outcome().expect("complete");
        assert_eq!(out.dead_mtns.len(), 1);
    }

    #[test]
    fn contradiction_with_executed_verdict_rejected_cleanly() {
        let f = fix("red candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        session.run_to_completion(&mut oracle).expect("session runs");
        assert!(session.is_complete());
        // Every node is classified; find one alive node and contradict it.
        let alive_node = (0..session.pruned().len())
            .find(|&n| session.status(n) == Status::Alive)
            .expect("red candle has alive nodes");
        let statuses_before: Vec<Status> = session.statuses().to_vec();
        let err = session.assert_dead(alive_node).expect_err("contradiction");
        assert!(matches!(err, KwError::ConflictingVerdict(_)), "{err}");
        assert_eq!(session.statuses(), statuses_before.as_slice());
        // A redundant consistent assertion is still accepted and free.
        session.assert_alive(alive_node).expect("consistent verdict");
        assert_eq!(session.outcome().expect("complete").dead_mtns.len(), 0);
    }

    #[test]
    fn session_degrades_under_permanent_faults() {
        use relengine::FaultConfig;
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let total = pruned.len();
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        // Every probe fails permanently: each step abandons one node until
        // nothing is pickable; the session never errors and never completes.
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false)
                .with_chaos(FaultConfig {
                    permanent_per_mille: 1000,
                    ..FaultConfig::quiet(11)
                });
        session.run_to_completion(&mut oracle).expect("degrades, not errors");
        assert!(!session.is_complete());
        assert_eq!(session.abandoned_count(), total);
        assert_eq!(session.executed(), 0);
        let partial = session.partial_outcome();
        assert_eq!(partial.unknown_mtns.len(), 1, "the MTN is unknown");
        assert!(partial.alive_mtns.is_empty() && partial.dead_mtns.is_empty());
        assert_eq!(partial.probes.probes_abandoned, total as u64);
        assert!(session.outcome().is_none());
        // Assertions still work after probing gave up.
        session.assert_dead(session.pruned().mtns()[0]).expect("assertion fine");
        assert_eq!(session.partial_outcome().dead_mtns.len(), 1);
    }

    #[test]
    fn session_stops_on_budget_exhaustion() {
        use crate::budget::ProbeBudget;
        let f = fix("blue candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false)
                .with_budget(ProbeBudget::probes(2));
        assert!(matches!(session.step(&mut oracle).expect("runs"), StepOutcome::Probed(..)));
        assert!(matches!(session.step(&mut oracle).expect("runs"), StepOutcome::Probed(..)));
        assert_eq!(session.step(&mut oracle).expect("runs"), StepOutcome::Exhausted);
        assert_eq!(session.executed(), 2);
        // run_to_completion returns immediately on a tripped budget.
        session.run_to_completion(&mut oracle).expect("returns");
        assert_eq!(session.executed(), 2);
    }
}
