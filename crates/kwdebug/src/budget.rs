//! Probe budgets and retry policies — the knobs of degraded mode.
//!
//! The paper's Phase 3 assumes every probe runs instantly and the traversal
//! runs to completion; a production debugger in the DISCOVER/DBXplorer
//! lineage must bound per-query work instead. [`ProbeBudget`] caps a
//! traversal's probe count, wall-clock time and tuple scans; [`RetryPolicy`]
//! governs how the oracle reacts to [`relengine::EngineError::Transient`]
//! failures (capped exponential backoff, no jitter, so retry schedules are
//! deterministic in tests). When a budget trips, the oracle reports
//! [`Exhausted`] and the traversal degrades to a *partial* report instead of
//! aborting — see [`crate::traversal`].

use std::time::Duration;

/// Limits on the work one interpretation's probing may perform.
///
/// All limits are optional; the default budget is unlimited, which leaves
/// every happy-path traversal byte-identical to the un-budgeted pipeline.
/// The budget is enforced by [`crate::oracle::AlivenessOracle`] *before*
/// each probe: a probe that would exceed a cap is never executed and the
/// oracle reports [`Exhausted`] from then on (budgets are sticky — once
/// tripped, every later probe is refused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeBudget {
    /// Maximum SQL probes to execute (`None` = unlimited). A budget of
    /// `Some(0)` refuses every probe and yields an all-`Unknown` report.
    pub max_probes: Option<u64>,
    /// Wall-clock deadline, measured from the first probe attempt
    /// (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Maximum engine tuples to scan across all probes (`None` = unlimited).
    pub max_tuples: Option<u64>,
}

impl ProbeBudget {
    /// The unlimited budget (the default; no behavior change).
    pub fn unlimited() -> ProbeBudget {
        ProbeBudget::default()
    }

    /// A budget of at most `n` probes.
    pub fn probes(n: u64) -> ProbeBudget {
        ProbeBudget { max_probes: Some(n), ..ProbeBudget::default() }
    }

    /// Caps wall-clock time from the first probe.
    pub fn with_deadline(mut self, deadline: Duration) -> ProbeBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Caps total engine tuples scanned.
    pub fn with_max_tuples(mut self, n: u64) -> ProbeBudget {
        self.max_tuples = Some(n);
        self
    }

    /// Whether no cap is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_probes.is_none() && self.deadline.is_none() && self.max_tuples.is_none()
    }
}

/// Which cap of a [`ProbeBudget`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// `max_probes` was reached.
    Probes,
    /// The wall-clock `deadline` passed.
    Deadline,
    /// `max_tuples` scans were exceeded.
    Tuples,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhausted::Probes => f.write_str("max probes reached"),
            Exhausted::Deadline => f.write_str("deadline passed"),
            Exhausted::Tuples => f.write_str("tuple-scan cap reached"),
        }
    }
}

/// How the oracle retries transient probe failures.
///
/// Backoff is capped exponential with no jitter: attempt `k` (0-based)
/// sleeps `min(base_backoff << k, max_backoff)` before retrying, so a fixed
/// fault schedule produces a fixed retry schedule — the determinism the
/// chaos tests rely on. Permanent failures are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Never retry: any transient failure abandons the probe.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// Retry up to `max_retries` times with zero backoff (for fast tests).
    pub fn immediate(max_retries: u32) -> RetryPolicy {
        RetryPolicy { max_retries, base_backoff: Duration::ZERO, max_backoff: Duration::ZERO }
    }

    /// The deterministic backoff before retry number `attempt` (0-based):
    /// `min(base_backoff * 2^attempt, max_backoff)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max_backoff);
        exp.min(self.max_backoff)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = ProbeBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b, ProbeBudget::unlimited());
    }

    #[test]
    fn budget_builders_compose() {
        let b = ProbeBudget::probes(10)
            .with_deadline(Duration::from_millis(5))
            .with_max_tuples(1000);
        assert_eq!(b.max_probes, Some(10));
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_tuples, Some(1000));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn exhausted_display() {
        assert_eq!(Exhausted::Probes.to_string(), "max probes reached");
        assert_eq!(Exhausted::Deadline.to_string(), "deadline passed");
        assert_eq!(Exhausted::Tuples.to_string(), "tuple-scan cap reached");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(9), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(9), "huge shifts stay capped");
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let p = RetryPolicy::immediate(4);
        assert_eq!(p.max_retries, 4);
        for k in 0..8 {
            assert_eq!(p.backoff(k), Duration::ZERO);
        }
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }
}
