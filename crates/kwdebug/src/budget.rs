//! Probe budgets and retry policies — the knobs of degraded mode.
//!
//! The paper's Phase 3 assumes every probe runs instantly and the traversal
//! runs to completion; a production debugger in the DISCOVER/DBXplorer
//! lineage must bound per-query work instead. [`ProbeBudget`] caps a
//! traversal's probe count, wall-clock time and tuple scans; [`RetryPolicy`]
//! governs how the oracle reacts to [`relengine::EngineError::Transient`]
//! failures (capped exponential backoff, no jitter, so retry schedules are
//! deterministic in tests). When a budget trips, the oracle reports
//! [`Exhausted`] and the traversal degrades to a *partial* report instead of
//! aborting — see [`crate::traversal`].
//!
//! ## Atomic enforcement: [`BudgetGate`]
//!
//! [`ProbeBudget`] itself is a plain-value description of the caps; the
//! *stateful* enforcement lives in [`BudgetGate`], which is entirely atomic
//! so the same gate can be shared by every worker of the parallel scheduler
//! ([`crate::parallel`]) without locks. Budget atomicity is the invariant:
//! a probe slot is **reserved** before the probe executes
//! ([`BudgetGate::try_reserve`]) and **released** if the probe fails without
//! executing ([`BudgetGate::release`]), so the number of reserved slots can
//! never exceed `max_probes` no matter how many threads race on the gate —
//! and with a single thread the reserved count equals the executed count,
//! which keeps sequential behavior byte-identical to the pre-gate oracle.
//! The trip state is sticky and first-writer-wins: the first cap to trip is
//! the one every later refusal reports. See DESIGN.md §8 ("Concurrency
//! model") for the full protocol.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Limits on the work one interpretation's probing may perform.
///
/// All limits are optional; the default budget is unlimited, which leaves
/// every happy-path traversal byte-identical to the un-budgeted pipeline.
/// The budget is enforced by [`crate::oracle::AlivenessOracle`] *before*
/// each probe: a probe that would exceed a cap is never executed and the
/// oracle reports [`Exhausted`] from then on (budgets are sticky — once
/// tripped, every later probe is refused).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeBudget {
    /// Maximum SQL probes to execute (`None` = unlimited). A budget of
    /// `Some(0)` refuses every probe and yields an all-`Unknown` report.
    pub max_probes: Option<u64>,
    /// Wall-clock deadline, measured from the first probe attempt
    /// (`None` = unlimited).
    pub deadline: Option<Duration>,
    /// Maximum engine tuples to scan across all probes (`None` = unlimited).
    pub max_tuples: Option<u64>,
}

impl ProbeBudget {
    /// The unlimited budget (the default; no behavior change).
    pub fn unlimited() -> ProbeBudget {
        ProbeBudget::default()
    }

    /// A budget of at most `n` probes.
    pub fn probes(n: u64) -> ProbeBudget {
        ProbeBudget { max_probes: Some(n), ..ProbeBudget::default() }
    }

    /// Caps wall-clock time from the first probe.
    pub fn with_deadline(mut self, deadline: Duration) -> ProbeBudget {
        self.deadline = Some(deadline);
        self
    }

    /// Caps total engine tuples scanned.
    pub fn with_max_tuples(mut self, n: u64) -> ProbeBudget {
        self.max_tuples = Some(n);
        self
    }

    /// Whether no cap is set at all.
    pub fn is_unlimited(&self) -> bool {
        self.max_probes.is_none() && self.deadline.is_none() && self.max_tuples.is_none()
    }
}

/// Which cap of a [`ProbeBudget`] tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exhausted {
    /// `max_probes` was reached.
    Probes,
    /// The wall-clock `deadline` passed.
    Deadline,
    /// `max_tuples` scans were exceeded.
    Tuples,
}

impl std::fmt::Display for Exhausted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Exhausted::Probes => f.write_str("max probes reached"),
            Exhausted::Deadline => f.write_str("deadline passed"),
            Exhausted::Tuples => f.write_str("tuple-scan cap reached"),
        }
    }
}

/// How the oracle retries transient probe failures.
///
/// Backoff is capped exponential with no jitter: attempt `k` (0-based)
/// sleeps `min(base_backoff << k, max_backoff)` before retrying, so a fixed
/// fault schedule produces a fixed retry schedule — the determinism the
/// chaos tests rely on. Permanent failures are never retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failed attempt (0 = fail immediately).
    pub max_retries: u32,
    /// Backoff before the first retry.
    pub base_backoff: Duration,
    /// Upper bound on any single backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// Never retry: any transient failure abandons the probe.
    pub fn none() -> RetryPolicy {
        RetryPolicy { max_retries: 0, ..RetryPolicy::default() }
    }

    /// Retry up to `max_retries` times with zero backoff (for fast tests).
    pub fn immediate(max_retries: u32) -> RetryPolicy {
        RetryPolicy { max_retries, base_backoff: Duration::ZERO, max_backoff: Duration::ZERO }
    }

    /// The deterministic backoff before retry number `attempt` (0-based):
    /// `min(base_backoff * 2^attempt, max_backoff)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .checked_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX))
            .unwrap_or(self.max_backoff);
        exp.min(self.max_backoff)
    }
}

/// The result of a refused [`BudgetGate::try_reserve`] (or an explicit
/// [`BudgetGate::trip`]): which cap tripped, and whether this call was the
/// one that tripped it. Exactly one caller per gate observes `newly == true`
/// for a given trip — that caller increments the `budget_exhausted` metric,
/// preserving the "tripped exactly once" accounting under concurrency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trip {
    /// Which cap tripped (the first one to trip; sticky).
    pub why: Exhausted,
    /// Whether this call transitioned the gate from open to tripped.
    pub newly: bool,
}

/// Sticky trip state encoding for the gate's atomic (0 = open).
const TRIP_NONE: u8 = 0;
const TRIP_PROBES: u8 = 1;
const TRIP_DEADLINE: u8 = 2;
const TRIP_TUPLES: u8 = 3;

fn trip_code(why: Exhausted) -> u8 {
    match why {
        Exhausted::Probes => TRIP_PROBES,
        Exhausted::Deadline => TRIP_DEADLINE,
        Exhausted::Tuples => TRIP_TUPLES,
    }
}

fn trip_why(code: u8) -> Option<Exhausted> {
    match code {
        TRIP_PROBES => Some(Exhausted::Probes),
        TRIP_DEADLINE => Some(Exhausted::Deadline),
        TRIP_TUPLES => Some(Exhausted::Tuples),
        _ => None,
    }
}

/// Atomic, shareable enforcement state for one [`ProbeBudget`] window.
///
/// The gate is the budget's single source of truth across threads: the
/// sequential oracle and every worker of [`crate::parallel`] reserve probe
/// slots through the same gate, so the combined probe count can never
/// overshoot `max_probes` even when reservations race. All state is atomic —
/// checking and reserving never block.
///
/// Protocol per probe:
///
/// 1. [`BudgetGate::try_reserve`] — refuses (and stickily trips) if a cap is
///    already exceeded, otherwise reserves one probe slot;
/// 2. the probe executes;
/// 3. on a *failed* execution (abandoned probe, mid-retry deadline trip) the
///    caller returns the slot with [`BudgetGate::release`], preserving the
///    invariant that failed attempts never count against the budget.
///
/// The deadline clock starts at the first `try_reserve` (the first probe
/// attempt), exactly like the pre-gate oracle's lazily-set start instant.
#[derive(Debug, Default)]
pub struct BudgetGate {
    budget: ProbeBudget,
    /// Probe slots handed out and not released; equals probes executed when
    /// no probe is in flight.
    reserved: AtomicU64,
    /// First cap to trip (sticky), `TRIP_NONE` while open.
    tripped: AtomicU8,
    /// Wall-clock origin of the deadline, set at the first reservation.
    started: OnceLock<Instant>,
}

impl BudgetGate {
    /// A gate enforcing `budget`, with a fresh window (no slots reserved, no
    /// trip, deadline clock unstarted).
    pub fn new(budget: ProbeBudget) -> BudgetGate {
        BudgetGate { budget, ..BudgetGate::default() }
    }

    /// The budget this gate enforces.
    pub fn budget(&self) -> ProbeBudget {
        self.budget
    }

    /// Why probing stopped, if a cap tripped.
    pub fn tripped(&self) -> Option<Exhausted> {
        trip_why(self.tripped.load(Ordering::Acquire))
    }

    /// Probe slots currently reserved (executed + in flight).
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Trips the gate (sticky, first writer wins) and reports whether this
    /// call did the tripping.
    pub fn trip(&self, why: Exhausted) -> Trip {
        match self.tripped.compare_exchange(
            TRIP_NONE,
            trip_code(why),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => Trip { why, newly: true },
            Err(prev) => Trip {
                why: trip_why(prev).unwrap_or(why),
                newly: false,
            },
        }
    }

    /// Reserves one probe slot, checking the caps in the oracle's historical
    /// order (probes, deadline, tuples — `tuples_scanned` is the caller's
    /// running total, typically `metrics.tuples_scanned`). A refusal trips
    /// the gate stickily; once tripped every reservation is refused with the
    /// original cause.
    pub fn try_reserve(&self, tuples_scanned: u64) -> Result<(), Trip> {
        if let Some(why) = self.tripped() {
            return Err(Trip { why, newly: false });
        }
        let start = *self.started.get_or_init(Instant::now);
        if let Some(m) = self.budget.max_probes {
            if self
                .reserved
                .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                    (c < m).then_some(c + 1)
                })
                .is_err()
            {
                return Err(self.trip(Exhausted::Probes));
            }
        } else {
            self.reserved.fetch_add(1, Ordering::AcqRel);
        }
        if self.budget.deadline.is_some_and(|d| start.elapsed() >= d) {
            self.release();
            return Err(self.trip(Exhausted::Deadline));
        }
        if self.budget.max_tuples.is_some_and(|m| tuples_scanned >= m) {
            self.release();
            return Err(self.trip(Exhausted::Tuples));
        }
        Ok(())
    }

    /// Returns a reserved slot after a probe failed without executing
    /// (abandoned, or tripped mid-retry), so failed attempts never count.
    pub fn release(&self) {
        self.reserved.fetch_sub(1, Ordering::AcqRel);
    }

    /// Whether the wall-clock deadline has passed (false when no deadline is
    /// set or the clock has not started). Used by the retry loop, which may
    /// outlive the deadline while backing off.
    pub fn deadline_passed(&self) -> bool {
        self.budget.deadline.is_some_and(|d| {
            self.started.get().is_some_and(|s| s.elapsed() >= d)
        })
    }

    /// Resets the window: slots, trip state and deadline clock (exclusive
    /// access — resets never race with reservations).
    pub fn reset(&mut self) {
        self.reserved.store(0, Ordering::Release);
        self.tripped.store(TRIP_NONE, Ordering::Release);
        self.started = OnceLock::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_is_unlimited() {
        let b = ProbeBudget::default();
        assert!(b.is_unlimited());
        assert_eq!(b, ProbeBudget::unlimited());
    }

    #[test]
    fn budget_builders_compose() {
        let b = ProbeBudget::probes(10)
            .with_deadline(Duration::from_millis(5))
            .with_max_tuples(1000);
        assert_eq!(b.max_probes, Some(10));
        assert_eq!(b.deadline, Some(Duration::from_millis(5)));
        assert_eq!(b.max_tuples, Some(1000));
        assert!(!b.is_unlimited());
    }

    #[test]
    fn exhausted_display() {
        assert_eq!(Exhausted::Probes.to_string(), "max probes reached");
        assert_eq!(Exhausted::Deadline.to_string(), "deadline passed");
        assert_eq!(Exhausted::Tuples.to_string(), "tuple-scan cap reached");
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(9), "capped");
        assert_eq!(p.backoff(63), Duration::from_millis(9), "huge shifts stay capped");
    }

    #[test]
    fn immediate_policy_never_sleeps() {
        let p = RetryPolicy::immediate(4);
        assert_eq!(p.max_retries, 4);
        for k in 0..8 {
            assert_eq!(p.backoff(k), Duration::ZERO);
        }
        assert_eq!(RetryPolicy::none().max_retries, 0);
    }

    #[test]
    fn gate_reserves_exactly_max_probes() {
        let gate = BudgetGate::new(ProbeBudget::probes(2));
        assert!(gate.try_reserve(0).is_ok());
        assert!(gate.try_reserve(0).is_ok());
        let trip = gate.try_reserve(0).unwrap_err();
        assert_eq!(trip.why, Exhausted::Probes);
        assert!(trip.newly, "first refusal trips");
        let again = gate.try_reserve(0).unwrap_err();
        assert!(!again.newly, "sticky: later refusals do not re-trip");
        assert_eq!(gate.tripped(), Some(Exhausted::Probes));
        assert_eq!(gate.reserved(), 2);
    }

    #[test]
    fn gate_release_refunds_failed_probes() {
        let gate = BudgetGate::new(ProbeBudget::probes(1));
        assert!(gate.try_reserve(0).is_ok());
        gate.release();
        assert!(gate.try_reserve(0).is_ok(), "released slot is reusable");
        assert!(gate.try_reserve(0).is_err());
    }

    #[test]
    fn gate_deadline_and_tuples_trip() {
        let gate = BudgetGate::new(ProbeBudget::default().with_deadline(Duration::ZERO));
        assert_eq!(gate.try_reserve(0).unwrap_err().why, Exhausted::Deadline);
        assert_eq!(gate.reserved(), 0, "deadline refusal returns the slot");
        assert!(gate.deadline_passed());

        let gate = BudgetGate::new(ProbeBudget::default().with_max_tuples(10));
        assert!(gate.try_reserve(9).is_ok());
        assert_eq!(gate.try_reserve(10).unwrap_err().why, Exhausted::Tuples);
    }

    #[test]
    fn gate_reset_reopens_the_window() {
        let mut gate = BudgetGate::new(ProbeBudget::probes(1));
        assert!(gate.try_reserve(0).is_ok());
        assert!(gate.try_reserve(0).is_err());
        gate.reset();
        assert_eq!(gate.tripped(), None);
        assert_eq!(gate.reserved(), 0);
        assert!(gate.try_reserve(0).is_ok());
    }

    #[test]
    fn gate_never_overshoots_under_contention() {
        // 8 threads race for 100 slots; the total granted must be exactly 100.
        let gate = BudgetGate::new(ProbeBudget::probes(100));
        let granted = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..50 {
                        if gate.try_reserve(0).is_ok() {
                            granted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(granted.load(std::sync::atomic::Ordering::Relaxed), 100);
        assert_eq!(gate.reserved(), 100);
        assert_eq!(gate.tripped(), Some(Exhausted::Probes));
    }

    #[test]
    fn gate_trip_is_first_writer_wins() {
        let gate = BudgetGate::new(ProbeBudget::unlimited());
        assert!(gate.trip(Exhausted::Deadline).newly);
        let second = gate.trip(Exhausted::Tuples);
        assert!(!second.newly);
        assert_eq!(second.why, Exhausted::Deadline, "original cause reported");
        assert_eq!(gate.tripped(), Some(Exhausted::Deadline));
    }
}
