//! Keyword-to-copy binding (Phase 1).
//!
//! At query time every keyword is mapped, through the inverted index, to the
//! relations containing it. A keyword mapped to relation `R` binds to one of
//! the keyword copies `R_1..R_{m+1}`; the empty keyword is bound to the free
//! copy `R_0` of every relation. Keywords occurring in several relations
//! ("Washington" lives in Person, Publication *and* Organization in DBLife)
//! produce several *interpretations*, handled one at a time (§2.3). Keywords
//! occurring nowhere are reported and stop the exploration ("and" semantics).

use std::collections::HashMap;

use relengine::TableId;
use textindex::{tokenize, InvertedIndex};

use crate::error::KwError;
use crate::jnts::{CopyIdx, TupleSet};

/// A parsed keyword query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeywordQuery {
    keywords: Vec<String>,
}

impl KeywordQuery {
    /// Tokenizes raw user input into a keyword query.
    pub fn parse(input: &str) -> Result<Self, KwError> {
        let keywords = tokenize(input);
        if keywords.is_empty() {
            return Err(KwError::EmptyQuery);
        }
        Ok(KeywordQuery { keywords })
    }

    /// The normalized keywords, in query order.
    pub fn keywords(&self) -> &[String] {
        &self.keywords
    }

    /// Number of keywords.
    pub fn len(&self) -> usize {
        self.keywords.len()
    }

    /// Always false: parsing rejects empty queries.
    pub fn is_empty(&self) -> bool {
        self.keywords.is_empty()
    }

    /// The sub-query restricted to the keywords selected by `mask` (bit `i`
    /// keeps keyword `i`). Used by the Return-Nothing baseline, which
    /// re-submits every keyword subset. Returns `None` for the empty mask.
    pub fn subset(&self, mask: u32) -> Option<KeywordQuery> {
        let keywords: Vec<String> = self
            .keywords
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, k)| k.clone())
            .collect();
        if keywords.is_empty() {
            None
        } else {
            Some(KeywordQuery { keywords })
        }
    }
}

/// One interpretation: an assignment of every keyword to a single relation
/// (and therefore to a concrete relation copy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Interpretation {
    /// `tables[i]` is the relation keyword `i` is bound to.
    tables: Vec<TableId>,
    /// `copies[i]` is the copy index keyword `i` is bound to: the j-th
    /// keyword mapped to a relation (in query order) binds to copy `j`.
    copies: Vec<CopyIdx>,
    /// Reverse map: relation copy → keyword index.
    by_copy: HashMap<(TableId, CopyIdx), usize>,
}

impl Interpretation {
    fn new(tables: Vec<TableId>) -> Self {
        let mut per_table: HashMap<TableId, CopyIdx> = HashMap::new();
        let mut copies = Vec::with_capacity(tables.len());
        let mut by_copy = HashMap::with_capacity(tables.len());
        for (kw, &t) in tables.iter().enumerate() {
            let c = per_table.entry(t).or_insert(0);
            *c += 1;
            copies.push(*c);
            by_copy.insert((t, *c), kw);
        }
        Interpretation { tables, copies, by_copy }
    }

    /// The relation each keyword is bound to.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// The copy index each keyword is bound to.
    pub fn copies(&self) -> &[CopyIdx] {
        &self.copies
    }

    /// Number of keywords.
    pub fn keyword_count(&self) -> usize {
        self.tables.len()
    }

    /// The keyword (by index) bound to the given relation copy, if any.
    pub fn keyword_for(&self, ts: TupleSet) -> Option<usize> {
        self.by_copy.get(&(ts.table, ts.copy)).copied()
    }

    /// Phase-1 retention test for a single vertex: free copies always pass;
    /// keyword copies pass only if a keyword is bound to them.
    pub fn vertex_allowed(&self, ts: TupleSet) -> bool {
        ts.is_free() || self.by_copy.contains_key(&(ts.table, ts.copy))
    }

    /// The relation copy keyword `i` is bound to.
    pub fn tuple_set_of(&self, i: usize) -> TupleSet {
        TupleSet::new(self.tables[i], self.copies[i])
    }
}

/// Result of mapping a keyword query against the inverted index.
#[derive(Debug, Clone)]
pub struct KeywordMapping {
    /// The query keywords in order.
    pub keywords: Vec<String>,
    /// Keywords that occur nowhere in the database. Non-empty means the
    /// query cannot match under "and" semantics and `interpretations` is
    /// empty — exactly the paper's early exit.
    pub unknown: Vec<String>,
    /// All interpretations (cartesian product of per-keyword relation
    /// choices), in deterministic order.
    pub interpretations: Vec<Interpretation>,
}

/// Maps every keyword to its candidate relations and enumerates the
/// interpretations.
pub fn map_keywords(query: &KeywordQuery, index: &InvertedIndex) -> KeywordMapping {
    let keywords: Vec<String> = query.keywords().to_vec();
    let mut unknown = Vec::new();
    let mut choices: Vec<Vec<TableId>> = Vec::with_capacity(keywords.len());
    for k in &keywords {
        let tables = index.tables_containing(k);
        if tables.is_empty() {
            unknown.push(k.clone());
        }
        choices.push(tables);
    }
    if !unknown.is_empty() {
        return KeywordMapping { keywords, unknown, interpretations: Vec::new() };
    }
    // Cartesian product, lexicographic in per-keyword table order.
    let mut interpretations = Vec::new();
    let mut current: Vec<TableId> = Vec::with_capacity(keywords.len());
    fn rec(
        choices: &[Vec<TableId>],
        current: &mut Vec<TableId>,
        out: &mut Vec<Interpretation>,
    ) {
        if current.len() == choices.len() {
            out.push(Interpretation::new(current.clone()));
            return;
        }
        for &t in &choices[current.len()] {
            current.push(t);
            rec(choices, current, out);
            current.pop();
        }
    }
    rec(&choices, &mut current, &mut interpretations);
    KeywordMapping { keywords, unknown, interpretations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    fn index() -> InvertedIndex {
        let mut b = DatabaseBuilder::new();
        b.table("person").column("id", DataType::Int).column("name", DataType::Text);
        b.table("org").column("id", DataType::Int).column("name", DataType::Text);
        let mut db = b.finish().unwrap();
        db.insert_values("person", vec![Value::Int(1), Value::text("George Washington")])
            .unwrap();
        db.insert_values("person", vec![Value::Int(2), Value::text("Ada Lovelace")]).unwrap();
        db.insert_values("org", vec![Value::Int(1), Value::text("University of Washington")])
            .unwrap();
        InvertedIndex::build(&db)
    }

    #[test]
    fn parse_normalizes() {
        let q = KeywordQuery::parse("  Widom, Trio!  ").unwrap();
        assert_eq!(q.keywords(), &["widom", "trio"]);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
        assert!(matches!(KeywordQuery::parse("  ... "), Err(KwError::EmptyQuery)));
    }

    #[test]
    fn subsets() {
        let q = KeywordQuery::parse("a b c").unwrap();
        assert_eq!(q.subset(0b101).unwrap().keywords(), &["a", "c"]);
        assert_eq!(q.subset(0b010).unwrap().keywords(), &["b"]);
        assert!(q.subset(0).is_none());
    }

    #[test]
    fn multi_table_keyword_yields_multiple_interpretations() {
        let idx = index();
        let q = KeywordQuery::parse("washington lovelace").unwrap();
        let m = map_keywords(&q, &idx);
        assert!(m.unknown.is_empty());
        // "washington" ∈ {person, org}; "lovelace" ∈ {person}: 2 interpretations.
        assert_eq!(m.interpretations.len(), 2);
        let tables: Vec<Vec<TableId>> =
            m.interpretations.iter().map(|i| i.tables().to_vec()).collect();
        assert!(tables.contains(&vec![0, 0]));
        assert!(tables.contains(&vec![1, 0]));
    }

    #[test]
    fn unknown_keyword_short_circuits() {
        let idx = index();
        let q = KeywordQuery::parse("washington zanzibar").unwrap();
        let m = map_keywords(&q, &idx);
        assert_eq!(m.unknown, vec!["zanzibar"]);
        assert!(m.interpretations.is_empty());
    }

    #[test]
    fn copies_assigned_in_keyword_order_per_table() {
        let idx = index();
        // Both keywords in person: first binds copy 1, second copy 2.
        let q = KeywordQuery::parse("washington ada").unwrap();
        let m = map_keywords(&q, &idx);
        let person_person: &Interpretation = m
            .interpretations
            .iter()
            .find(|i| i.tables() == [0, 0])
            .expect("person-person interpretation");
        assert_eq!(person_person.copies(), &[1, 2]);
        assert_eq!(person_person.keyword_for(TupleSet::new(0, 1)), Some(0));
        assert_eq!(person_person.keyword_for(TupleSet::new(0, 2)), Some(1));
        assert_eq!(person_person.keyword_for(TupleSet::new(0, 3)), None);
        assert_eq!(person_person.tuple_set_of(1), TupleSet::new(0, 2));
    }

    #[test]
    fn vertex_allowed_rules() {
        let idx = index();
        let q = KeywordQuery::parse("washington").unwrap();
        let m = map_keywords(&q, &idx);
        let i = &m.interpretations[0]; // person interpretation first (table 0)
        assert!(i.vertex_allowed(TupleSet::new(0, 0))); // free copy
        assert!(i.vertex_allowed(TupleSet::new(0, 1))); // bound copy
        assert!(!i.vertex_allowed(TupleSet::new(0, 2))); // unbound keyword copy
        assert!(i.vertex_allowed(TupleSet::new(1, 0))); // free copy of org
        assert!(!i.vertex_allowed(TupleSet::new(1, 1)));
    }

    #[test]
    fn interpretation_count_is_product() {
        let idx = index();
        let q = KeywordQuery::parse("washington washington").unwrap();
        let m = map_keywords(&q, &idx);
        // 2 choices × 2 choices = 4 interpretations.
        assert_eq!(m.interpretations.len(), 4);
        // The person-person one binds copies 1 and 2.
        let pp = m.interpretations.iter().find(|i| i.tables() == [0, 0]).unwrap();
        assert_eq!(pp.copies(), &[1, 2]);
        // Mixed ones bind copy 1 of each.
        let po = m.interpretations.iter().find(|i| i.tables() == [0, 1]).unwrap();
        assert_eq!(po.copies(), &[1, 1]);
    }
}
