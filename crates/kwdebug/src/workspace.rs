//! Reusable per-query scratch for Phase 1–2 (DESIGN.md §9).
//!
//! Building a [`crate::prune::PrunedLattice`] needs several transient
//! buffers: bitsets over the offline lattice (excluded/keep sets), the
//! dense re-index map, a DFS stack, and the bound-postings intersection
//! lists. Under sustained traffic — many queries over one shared lattice —
//! re-allocating those per interpretation dominates the Phase 1–2 budget, so
//! they live in a [`QueryWorkspace`] that callers reuse across queries:
//! [`crate::prune::PrunedLattice::build_with`] takes one explicitly, and
//! [`crate::debugger::NonAnswerDebugger`] keeps a [`WorkspacePool`] so
//! concurrent `debug` calls (and the REPL/session layers above) recycle
//! scratch without coordination.
//!
//! All buffers are length-reset, never shrunk, so a workspace converges to
//! the high-water size of the queries it served and stays allocation-free
//! from then on. The pool reports reuse through the `workspace_reuses`
//! counter (see [`crate::metrics`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::lattice::NodeId;

/// Reusable scratch buffers for one in-flight Phase 1–2 build.
#[derive(Debug, Default)]
pub struct QueryWorkspace {
    /// Bitset over lattice ids: nodes containing an unbound keyword copy.
    pub(crate) excluded: Vec<u64>,
    /// Bitset over lattice ids: MTNs and their descendants (Phase 2).
    pub(crate) keep: Vec<u64>,
    /// Bitset over dense ids: union scratch for the MTN-descendant stats.
    pub(crate) scratch: Vec<u64>,
    /// Lattice id → dense index; only entries of kept nodes are valid (reads
    /// are always guarded by the `keep` bitset, so no per-query reset).
    pub(crate) dense_of: Vec<u32>,
    /// DFS stack for the Phase-2 downward closure.
    pub(crate) stack: Vec<NodeId>,
    /// Bound-postings intersection list (current).
    pub(crate) candidates: Vec<NodeId>,
    /// Bound-postings intersection list (next round).
    pub(crate) candidates_next: Vec<NodeId>,
    /// Builds served by this workspace.
    builds: u64,
}

impl QueryWorkspace {
    /// A fresh, empty workspace. Buffers grow on first use and are then
    /// reused by every subsequent [`crate::prune::PrunedLattice::build_with`].
    pub fn new() -> QueryWorkspace {
        QueryWorkspace::default()
    }

    /// How many Phase 1–2 builds this workspace has served.
    pub fn builds(&self) -> u64 {
        self.builds
    }

    /// Records one served build (called by `PrunedLattice::build_with`).
    pub(crate) fn note_build(&mut self) {
        self.builds += 1;
    }
}

/// A lock-protected stack of idle [`QueryWorkspace`]s.
///
/// `acquire` pops a warm workspace when one is idle (a *reuse*) or creates a
/// fresh one under contention; `release` returns it for the next query. The
/// pool never shrinks below the high-water concurrency of its owner, which
/// for the debugger is the number of simultaneous `debug` calls.
#[derive(Debug, Default)]
pub struct WorkspacePool {
    idle: Mutex<Vec<QueryWorkspace>>,
    reuses: AtomicU64,
}

impl WorkspacePool {
    /// An empty pool.
    pub fn new() -> WorkspacePool {
        WorkspacePool::default()
    }

    /// Takes a workspace: a pooled one when available (counted as a reuse),
    /// otherwise a fresh one. Returns the workspace and whether it was
    /// reused.
    pub fn acquire(&self) -> (QueryWorkspace, bool) {
        let popped = self.idle.lock().expect("workspace pool poisoned").pop();
        match popped {
            Some(ws) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                (ws, true)
            }
            None => (QueryWorkspace::new(), false),
        }
    }

    /// Returns a workspace to the pool for the next query.
    pub fn release(&self, ws: QueryWorkspace) {
        self.idle.lock().expect("workspace pool poisoned").push(ws);
    }

    /// Total acquires served from the pool instead of a fresh allocation.
    pub fn reuses(&self) -> u64 {
        self.reuses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_released_workspaces() {
        let pool = WorkspacePool::new();
        let (ws, reused) = pool.acquire();
        assert!(!reused);
        assert_eq!(pool.reuses(), 0);
        pool.release(ws);
        let (ws2, reused2) = pool.acquire();
        assert!(reused2);
        assert_eq!(pool.reuses(), 1);
        // A second concurrent acquire while ws2 is out gets a fresh one.
        let (ws3, reused3) = pool.acquire();
        assert!(!reused3);
        pool.release(ws2);
        pool.release(ws3);
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn workspace_counts_builds() {
        let mut ws = QueryWorkspace::new();
        assert_eq!(ws.builds(), 0);
        ws.note_build();
        ws.note_build();
        assert_eq!(ws.builds(), 2);
    }
}
