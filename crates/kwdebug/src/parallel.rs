//! Work-stealing parallel probe scheduler with a shared concurrent memo.
//!
//! EMBANKS probes are embarrassingly parallel *within* an inference
//! frontier: two nodes on the same lattice level are never
//! ancestor/descendant of each other, so neither's verdict can classify the
//! other through rule R1 or R2 — their probes commute. This module exploits
//! exactly that slack and nothing more: traversal strategies emit *waves* of
//! independent nodes (the crate-internal `Frontier` trait in
//! [`crate::traversal`]), the scheduler
//! fans each wave over a fixed pool of worker threads, and all verdicts flow
//! back to the dispatcher, which applies R1/R2 inference centrally. Between
//! waves the world is sequential again, which is what makes the output —
//! the [`crate::report::DebugReport`], every probe counter, even the probe
//! *order-sensitive* counters like `memo_hits` — bit-identical to the
//! sequential traversal on every seed.
//!
//! See DESIGN.md §8 ("Concurrency model") for the full invariant catalog;
//! the short form:
//!
//! * **Wave independence** — a wave only ever contains nodes no verdict in
//!   the same wave could classify. Strategies, not the scheduler, are
//!   responsible for this (it is a property of their emission order).
//! * **Deterministic accounting** — the dispatcher walks each wave in
//!   sequential visit order, consulting the memo and reserving budget slots
//!   *before* handing work to threads; workers only execute
//!   already-reserved probes. Counter totals therefore match the sequential
//!   run even when the budget runs dry mid-wave.
//! * **Central inference** — workers never touch traversal state; the
//!   dispatcher applies verdicts (and R1/R2 closure) after the wave drains.
//!   A verdict that arrives for a node the memo meanwhile answered is
//!   counted in `inference_suppressed_probes` rather than double-applied.
//!
//! The pool uses plain [`std::thread`] scoped threads — no dependencies —
//! with one deque per worker: owners pop from the front, idle workers steal
//! from the back of a victim's deque (counted in the `steals` metric).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::{Condvar, Mutex};

use relengine::ExecStats;

use crate::error::KwError;
use crate::lattice::{Lattice, NodeId};
use crate::metrics::Metrics;
use crate::oracle::{AlivenessOracle, Probe};
use crate::prune::PrunedLattice;
use crate::traversal::Frontier;

/// Number of lock stripes in a [`ShardedMemo`]. Power of two so the shard
/// of a node is a mask away; 16 stripes keeps contention negligible for any
/// worker count this crate will ever run.
const MEMO_SHARDS: usize = 16;

/// A lock-striped concurrent verdict memo, shared by every probing thread.
///
/// Verdicts are ground truth — a node's query either returns tuples or it
/// does not — so double-inserting the same node is idempotent and the map
/// needs no cross-shard coordination. Lock striping (a `Mutex<HashMap>` per
/// shard, nodes assigned by `node & (shards - 1)`) keeps writers on
/// different lattice regions from serializing behind one lock.
pub struct ShardedMemo {
    shards: Vec<Mutex<HashMap<NodeId, bool>>>,
}

impl ShardedMemo {
    /// An empty memo with the default stripe count.
    pub fn new() -> ShardedMemo {
        ShardedMemo {
            shards: (0..MEMO_SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, node: NodeId) -> &Mutex<HashMap<NodeId, bool>> {
        &self.shards[node as usize & (MEMO_SHARDS - 1)]
    }

    /// The memoized verdict of `node`, if any.
    pub fn get(&self, node: NodeId) -> Option<bool> {
        self.shard(node).lock().unwrap().get(&node).copied()
    }

    /// Records a verdict (idempotent; verdicts never change).
    pub fn insert(&self, node: NodeId, alive: bool) {
        self.shard(node).lock().unwrap().insert(node, alive);
    }

    /// Total number of memoized verdicts, for tests and reports.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().len()).sum()
    }

    /// Whether no verdict has been memoized yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Default for ShardedMemo {
    fn default() -> Self {
        ShardedMemo::new()
    }
}

/// One probe handed to the pool: which wave slot it fills and which dense
/// node to execute. The budget slot is already reserved by the dispatcher.
/// Shared with [`crate::batch`], whose driver dispatches the same way.
pub(crate) struct Job {
    /// Index into the wave's completion table (dispatch order).
    pub(crate) slot: usize,
    pub(crate) dense: usize,
}

/// A worker's answer for one job.
pub(crate) struct Completion {
    pub(crate) slot: usize,
    pub(crate) dense: usize,
    pub(crate) probe: Probe,
}

/// Shared pool state: per-worker job deques plus a pending/shutdown latch.
pub(crate) struct PoolState {
    queues: Vec<Mutex<VecDeque<Job>>>,
    latch: Mutex<Latch>,
    wake: Condvar,
}

struct Latch {
    /// Jobs enqueued but not yet picked up by any worker.
    pending: usize,
    shutdown: bool,
}

impl PoolState {
    pub(crate) fn new(workers: usize) -> PoolState {
        PoolState {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            latch: Mutex::new(Latch { pending: 0, shutdown: false }),
            wake: Condvar::new(),
        }
    }

    /// Pushes a job onto worker `w`'s deque and wakes a sleeper.
    pub(crate) fn push(&self, w: usize, job: Job) {
        // Increment `pending` BEFORE the job becomes visible in a deque: a
        // worker that claims it decrements immediately, and claiming can
        // only happen after the push, so the counter can never underflow.
        // (A scanner that sees `pending > 0` before the job lands simply
        // rescans the deques.)
        self.latch.lock().unwrap().pending += 1;
        self.queues[w].lock().unwrap().push_back(job);
        self.wake.notify_all();
    }

    /// Takes the next job for worker `w`: own deque front first, then steal
    /// from the back of another worker's deque, else sleep until work or
    /// shutdown. Returns `(job, stolen)`; `None` means shutdown.
    pub(crate) fn take(&self, w: usize, metrics: &Metrics) -> Option<Job> {
        loop {
            if let Some(job) = self.queues[w].lock().unwrap().pop_front() {
                self.decr_pending();
                return Some(job);
            }
            for victim in (0..self.queues.len()).filter(|&v| v != w) {
                if let Some(job) = self.queues[victim].lock().unwrap().pop_back() {
                    self.decr_pending();
                    metrics.steals.incr();
                    return Some(job);
                }
            }
            let mut latch = self.latch.lock().unwrap();
            loop {
                if latch.shutdown {
                    return None;
                }
                if latch.pending > 0 {
                    break; // something appeared; race back to the deques
                }
                latch = self.wake.wait(latch).unwrap();
            }
        }
    }

    fn decr_pending(&self) {
        let mut latch = self.latch.lock().unwrap();
        latch.pending -= 1;
    }

    pub(crate) fn shutdown(&self) {
        self.latch.lock().unwrap().shutdown = true;
        self.wake.notify_all();
    }
}

/// Runs a strategy's probe waves over `workers` threads, driving `frontier`
/// exactly as the sequential driver would. Returns when the frontier is
/// done or the budget trips; the caller converts the frontier into the
/// classification.
///
/// The dispatcher (the calling thread) owns all traversal state. Per wave
/// it walks the emitted nodes in sequential visit order and, per node:
///
/// 1. already classified → `reuse_hits` (same as sequential);
/// 2. memoized verdict → `memo_hits` + immediate apply (same as sequential);
/// 3. otherwise reserve a budget slot and enqueue the probe. A refusal ends
///    the wave *and* the traversal at exactly the node where the sequential
///    run would have stopped.
///
/// Verdicts are applied in dispatch order after the wave drains, so R1/R2
/// inference (order-independent within a wave — each status cell flips away
/// from `Unknown` at most once, and wave members classify only non-members)
/// lands on identical state and identical counter totals.
pub(crate) fn run_waves(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    frontier: &mut dyn Frontier,
    workers: usize,
) -> Result<(), KwError> {
    let workers = workers.max(1);
    let core = oracle.core();
    core.metrics.workers.add(workers as u64);

    let pool = PoolState::new(workers);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();

    let mut failure: Option<KwError> = None;
    let worker_stats: Vec<ExecStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let done = done_tx.clone();
                scope.spawn(move || {
                    let mut engine = core.make_engine(w as u64);
                    while let Some(job) = pool.take(w, &core.metrics) {
                        let node = pruned.lattice_id(job.dense);
                        let jnts = pruned.jnts(lattice, job.dense);
                        let probe = core.execute_reserved(&mut engine, node, jnts);
                        if done
                            .send(Completion { slot: job.slot, dense: job.dense, probe })
                            .is_err()
                        {
                            break;
                        }
                    }
                    engine.stats().clone()
                })
            })
            .collect();
        drop(done_tx);

        let mut wave = Vec::new();
        let mut next_worker = 0usize;
        'traversal: loop {
            wave.clear();
            frontier.next_wave(&mut wave);
            if wave.is_empty() {
                break;
            }
            // Dispatch in sequential visit order; collect completions by slot.
            let mut dispatched = 0usize;
            let mut outcomes: Vec<Option<(usize, Probe)>> = Vec::with_capacity(wave.len());
            let mut stop_after_wave = false;
            for &dense in wave.iter() {
                if !frontier.is_unknown(dense) {
                    core.metrics.reuse_hits.incr();
                    continue;
                }
                if let Some(alive) = core.verdict_if_known(pruned.lattice_id(dense)) {
                    core.metrics.memo_hits.incr();
                    frontier.apply(dense, alive, &core.metrics);
                    continue;
                }
                // A cached whole-network verdict or an empty cached cut
                // value-set answers the node right at dispatch, like a memo
                // hit: no budget slot, no engine.
                if let Some(alive) =
                    core.shortcut(pruned.lattice_id(dense), pruned.jnts(lattice, dense))
                {
                    frontier.apply(dense, alive, &core.metrics);
                    continue;
                }
                if core.try_reserve().is_err() {
                    stop_after_wave = true;
                    break;
                }
                let slot = outcomes.len();
                outcomes.push(None);
                pool.push(next_worker, Job { slot, dense });
                next_worker = (next_worker + 1) % workers;
                dispatched += 1;
            }
            for _ in 0..dispatched {
                let c = done_rx.recv().expect("worker pool hung up mid-wave");
                outcomes[c.slot] = Some((c.dense, c.probe));
            }
            // Apply in dispatch (= sequential visit) order.
            for outcome in outcomes.into_iter() {
                let (dense, probe) = outcome.expect("every dispatched slot completes");
                match probe {
                    Probe::Verdict(alive) => {
                        if frontier.is_unknown(dense) {
                            frontier.apply(dense, alive, &core.metrics);
                        } else {
                            // A verdict classified this node while its own
                            // probe was in flight (possible only if a wave
                            // breaks the independence invariant). The probe
                            // executed — and was counted — anyway; record
                            // the work inference would have saved.
                            core.metrics.inference_suppressed_probes.incr();
                        }
                    }
                    Probe::NodeFailed(e) if e.is_fault() => frontier.abandon(dense),
                    Probe::NodeFailed(e) => {
                        // An invalid plan is a bug, not degradation — it
                        // propagates hard, exactly like the sequential
                        // driver's probe() helper.
                        failure = Some(e.into());
                        break 'traversal;
                    }
                    Probe::Exhausted(_) => stop_after_wave = true,
                }
            }
            if stop_after_wave {
                frontier.exhaust();
                break;
            }
        }
        pool.shutdown();
        handles.into_iter().map(|h| h.join().expect("probe worker panicked")).collect()
    });

    for stats in &worker_stats {
        oracle.absorb_stats(stats);
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memo_round_trips_verdicts() {
        let memo = ShardedMemo::new();
        assert!(memo.is_empty());
        assert_eq!(memo.get(7), None);
        memo.insert(7, true);
        memo.insert(23, false); // 23 & 15 == 7: same shard as node 7
        memo.insert(7, true); // idempotent re-insert
        assert_eq!(memo.get(7), Some(true));
        assert_eq!(memo.get(23), Some(false));
        assert_eq!(memo.len(), 2);
    }

    #[test]
    fn memo_is_consistent_under_concurrent_writers() {
        let memo = ShardedMemo::new();
        std::thread::scope(|scope| {
            for t in 0..4u32 {
                let memo = &memo;
                scope.spawn(move || {
                    for n in 0..64u32 {
                        memo.insert(n, n % 2 == 0);
                        let _ = memo.get((n + t) % 64);
                    }
                });
            }
        });
        assert_eq!(memo.len(), 64);
        for n in 0..64u32 {
            assert_eq!(memo.get(n), Some(n % 2 == 0));
        }
    }
}
