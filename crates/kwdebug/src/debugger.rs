//! The end-to-end system: offline setup + the four-phase debug pipeline.

use std::sync::Arc;
use std::time::Instant;

use relengine::Database;
use textindex::InvertedIndex;

use relengine::FaultConfig;

use crate::binding::{map_keywords, Interpretation, KeywordQuery};
use crate::budget::{ProbeBudget, RetryPolicy};
use crate::error::KwError;
use crate::estimate::OnlinePa;
use crate::evalcache::{EvalCache, SharedEvalCache};
use crate::jnts::Jnts;
use crate::lattice::Lattice;
use crate::metrics::PhaseTiming;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;
use crate::report::{DebugReport, InterpretationOutcome, NonAnswerInfo, QueryInfo};
use crate::schema_graph::SchemaGraph;
use crate::traversal::{self, StrategyKind};
use crate::workspace::WorkspacePool;

/// Configuration of a [`NonAnswerDebugger`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebugConfig {
    /// Maximum number of joins the lattice covers (`maxJoins`; the lattice
    /// has `max_joins + 1` levels). The paper evaluates 2, 4 and 6.
    pub max_joins: usize,
    /// Phase-3 traversal strategy.
    pub strategy: StrategyKind,
    /// Aliveness prior for the score-based heuristic.
    pub pa: f64,
    /// Sample result tuples fetched per alive query for the report
    /// (0 disables sampling; samples are *not* counted in the traversal's
    /// SQL-query metric).
    pub sample_limit: usize,
    /// Cache aliveness results per lattice node for the lifetime of one
    /// interpretation's traversal (extension; the paper re-executes). The
    /// cache never crosses interpretations — the same lattice node can
    /// instantiate to different SQL under a different keyword assignment.
    pub memoize: bool,
    /// Estimate `p_a` per interpretation from index/catalog statistics
    /// ([`crate::estimate::PaEstimator`]) instead of using the fixed prior —
    /// the paper's future-work knob. Only affects the score-based heuristic's
    /// query count, never its output.
    pub estimate_pa: bool,
    /// Probe budget applied *per interpretation* (each interpretation gets a
    /// fresh oracle, hence a fresh budget window). The default is unlimited —
    /// the happy-path pipeline. When a cap trips mid-traversal the report is
    /// partial: see [`crate::report::InterpretationOutcome::unknown`].
    pub budget: ProbeBudget,
    /// How transient probe failures are retried (capped exponential
    /// backoff); only observable when the engine actually fails.
    pub retry: RetryPolicy,
    /// Deterministic fault injection for robustness testing (`None` = off).
    /// Each interpretation's oracle wraps its executor in a
    /// [`relengine::ChaosExecutor`] with this schedule.
    pub chaos: Option<FaultConfig>,
    /// Probe threads per traversal (see [`crate::parallel`]). `0` or `1` is
    /// the sequential driver; any higher count fans each inference-frontier
    /// wave over that many worker threads. The report is bit-identical
    /// either way — workers only change wall-clock — so this is a pure
    /// throughput knob for disk/remote-bound probe workloads.
    pub workers: usize,
    /// Share the session-scoped [`crate::evalcache::EvalCache`] across every
    /// probe of every debug call (extension; off by default like `memoize`).
    /// Keyword selections are evaluated once per session and subtree
    /// semi-join value-sets are reused across probes, queries and parallel
    /// workers. Reports are bit-identical with the cache on or off (the
    /// differential suite pins this down); only probe work shrinks. Caveat:
    /// with a *limited* [`DebugConfig::budget`] the cache can change which
    /// probe trips the cap, so partial reports may differ.
    pub eval_cache: bool,
    /// Drive SBH's prior from the online per-level alive-rate estimator
    /// ([`crate::estimate::OnlinePa`]) instead of the fixed `pa` — observed
    /// verdicts sharpen the prior for later queries, and when sessions share
    /// a substrate ([`SharedParts`]) the estimator is shared too, so one
    /// tenant's probes inform every other's traversal order. Takes precedence
    /// over [`DebugConfig::estimate_pa`]. With zero observations the
    /// estimate is exactly the paper's 0.5, so a cold estimator changes
    /// nothing. Only affects the score-based heuristic's query count, never
    /// its output (DESIGN.md §12).
    pub online_pa: bool,
}

impl Default for DebugConfig {
    fn default() -> Self {
        DebugConfig {
            max_joins: 4,
            strategy: StrategyKind::ScoreBasedHeuristic,
            pa: traversal::DEFAULT_PA,
            sample_limit: 3,
            memoize: false,
            estimate_pa: false,
            budget: ProbeBudget::unlimited(),
            retry: RetryPolicy::default(),
            chaos: None,
            workers: 1,
            eval_cache: false,
            online_pa: false,
        }
    }
}

impl DebugConfig {
    fn validate(&self) -> Result<(), KwError> {
        if self.max_joins > 12 {
            return Err(KwError::BadConfig(format!(
                "max_joins = {} would generate an intractably large lattice",
                self.max_joins
            )));
        }
        if !(0.0..=1.0).contains(&self.pa) {
            return Err(KwError::BadConfig(format!("pa = {} must be within [0, 1]", self.pa)));
        }
        Ok(())
    }
}

/// The immutable offline substrate of a debugger, shareable across sessions.
///
/// Everything a debug call *reads but never writes* — the finalized
/// [`Database`], the [`InvertedIndex`] over it, the [`SchemaGraph`] and the
/// offline [`Lattice`] arena — bundled behind [`Arc`]s so that any number of
/// concurrent sessions (one [`NonAnswerDebugger`] each) can run over a single
/// resident copy. Cloning is a handful of reference-count bumps; the multi-
/// megabyte arenas are never duplicated. This is the state split the serving
/// layer builds on (`kwserve`; DESIGN.md §11): per-session mutable state
/// (workspace pool, budget window) stays inside each debugger, while the
/// substrate is shared process-wide.
///
/// Two pieces of *cross-session learning* ride along (DESIGN.md §12):
///
/// * an optional [`SharedEvalCache`] — attach one with
///   [`SharedParts::share_eval_cache`] and every session built from this
///   handle via [`NonAnswerDebugger::from_shared`] reuses one keyword-
///   selection/subtree store instead of a private one;
/// * the [`OnlinePa`] estimator, always present — sessions with
///   [`DebugConfig::online_pa`] feed it and read it, so observed verdicts
///   sharpen SBH priors across the whole process.
#[derive(Clone)]
pub struct SharedParts {
    db: Arc<Database>,
    index: Arc<InvertedIndex>,
    graph: Arc<SchemaGraph>,
    lattice: Arc<Lattice>,
    /// The process-wide evaluation cache sessions attach to, when sharing is
    /// enabled (`None` = each session gets a private cache).
    shared_cache: Option<SharedEvalCache>,
    /// Cross-session online `p_a` estimator (inert until a session enables
    /// [`DebugConfig::online_pa`]).
    pa_stats: Arc<OnlinePa>,
}

impl SharedParts {
    /// The shared database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The shared inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The shared schema graph.
    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.graph
    }

    /// The shared offline lattice arena.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// `maxJoins` the shared lattice was built for — session configs must
    /// match it (see [`NonAnswerDebugger::from_shared`]).
    pub fn max_joins(&self) -> usize {
        self.lattice.max_joins()
    }

    /// Process-unique id of the database this substrate wraps. Together with
    /// [`SharedParts::epoch`] it forms the identity shared caches are stamped
    /// with; see [`SharedParts::adopt_eval_cache`].
    pub fn db_id(&self) -> u64 {
        self.db.db_id()
    }

    /// The epoch of the wrapped database snapshot. A `SharedParts` handle is
    /// immutable — writes happen on a [`crate::mutable::MutableDatabase`],
    /// which hands out fresh parts per epoch — so this is the pin every
    /// session built from this handle reads at.
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// The process-wide evaluation cache sessions of this handle attach to,
    /// if sharing is enabled.
    pub fn shared_cache(&self) -> Option<&SharedEvalCache> {
        self.shared_cache.as_ref()
    }

    /// The cross-session online `p_a` estimator (always present; inert until
    /// a session enables [`DebugConfig::online_pa`]).
    pub fn pa_stats(&self) -> &Arc<OnlinePa> {
        &self.pa_stats
    }

    /// Creates a process-wide [`SharedEvalCache`] stamped with this
    /// substrate's `(db_id, epoch)` identity, bounded by `budget_bytes`
    /// payload bytes (`None` = unbounded), and attaches it: every session
    /// subsequently built from this handle (or its clones) shares the one
    /// store. Returns the cache for metrics/monitoring. Replaces any
    /// previously attached store.
    pub fn share_eval_cache(&mut self, budget_bytes: Option<u64>) -> SharedEvalCache {
        let cache = SharedEvalCache::new(self.db.db_id(), self.db.epoch(), budget_bytes);
        self.shared_cache = Some(cache.clone());
        cache
    }

    /// Attaches an existing [`SharedEvalCache`] — e.g. one created by another
    /// `SharedParts` clone of the same substrate. Rejected with
    /// [`KwError::BadConfig`] when the cache was stamped for a different
    /// database (`db_id` mismatch — entries from another build must never
    /// serve this one) or when the cache's epoch is *ahead* of this
    /// snapshot (its entries absorbed writes this snapshot has not seen).
    /// A cache *behind* this snapshot is caught up through
    /// [`SharedEvalCache::invalidate`] on attach — the CACHING.md epoch
    /// contract.
    pub fn adopt_eval_cache(&mut self, cache: SharedEvalCache) -> Result<(), KwError> {
        if cache.db_id() != self.db.db_id() {
            return Err(KwError::BadConfig(format!(
                "shared cache was stamped for database #{}, substrate is database #{}",
                cache.db_id(),
                self.db.db_id()
            )));
        }
        if cache.epoch() > self.db.epoch() {
            return Err(KwError::BadConfig(format!(
                "shared cache is at epoch {}, ahead of this snapshot's epoch {}",
                cache.epoch(),
                self.db.epoch()
            )));
        }
        cache.invalidate(&self.db);
        self.shared_cache = Some(cache);
        Ok(())
    }

    /// A clone of this handle without the shared cache: sessions built from
    /// it get private, session-scoped caches (the serving layer's per-tenant
    /// `private_cache` opt-out). The online `p_a` estimator remains shared.
    pub fn without_shared_cache(&self) -> SharedParts {
        SharedParts { shared_cache: None, ..self.clone() }
    }

    /// Assembles a handle from pre-built substrate pieces — the snapshot path
    /// of [`crate::mutable::MutableDatabase`];
    /// [`NonAnswerDebugger::shared_parts`] is the public route.
    pub(crate) fn assemble(
        db: Arc<Database>,
        index: Arc<InvertedIndex>,
        graph: Arc<SchemaGraph>,
        lattice: Arc<Lattice>,
        shared_cache: Option<SharedEvalCache>,
        pa_stats: Arc<OnlinePa>,
    ) -> SharedParts {
        SharedParts { db, index, graph, lattice, shared_cache, pa_stats }
    }
}

impl std::fmt::Debug for SharedParts {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedParts")
            .field("tables", &self.db.table_count())
            .field("lattice_nodes", &self.lattice.node_count())
            .field("max_joins", &self.lattice.max_joins())
            .field("db_id", &self.db.db_id())
            .field("epoch", &self.db.epoch())
            .field("shared_cache", &self.shared_cache.is_some())
            .finish()
    }
}

/// The KWS-S system with non-answer debugging.
///
/// Construction performs the offline work (Phase 0): building the inverted
/// index over the data and generating the query lattice from the schema
/// graph. [`NonAnswerDebugger::debug`] then answers keyword queries with the
/// full `A(K) ∪ N(K) ∪ M(K)` output.
///
/// The immutable substrate (database, index, schema graph, lattice) lives
/// behind [`Arc`]s: [`NonAnswerDebugger::shared_parts`] hands out a cheap
/// [`SharedParts`] handle and [`NonAnswerDebugger::from_shared`] builds more
/// debuggers over the *same* resident arenas — the unit of multi-tenant
/// serving, where each session owns its own workspace pool, evaluation cache
/// and budget window but all sessions read one copy of the data.
pub struct NonAnswerDebugger {
    db: Arc<Database>,
    index: Arc<InvertedIndex>,
    graph: Arc<SchemaGraph>,
    lattice: Arc<Lattice>,
    config: DebugConfig,
    /// Recycles Phase 1–2 scratch across queries (see [`crate::workspace`]);
    /// `debug` takes `&self`, so concurrent sessions each borrow their own
    /// workspace from the pool.
    workspaces: WorkspacePool,
    /// The evaluation cache probes consult when [`DebugConfig::eval_cache`]
    /// is on: session-private by default (stamped with this snapshot's
    /// `(db_id, epoch)` identity — the snapshot never changes under a
    /// debugger, so lifetime *is* invalidation), or a handle onto the
    /// process-wide [`SharedEvalCache`] when this session was built from
    /// [`SharedParts`] with one attached (there, writes on the owning
    /// [`crate::mutable::MutableDatabase`] invalidate selectively).
    cache: Arc<EvalCache>,
    /// Online `p_a` estimator fed by executed probes when
    /// [`DebugConfig::online_pa`] is on — shared with sibling sessions when
    /// built [`NonAnswerDebugger::from_shared`].
    pa_stats: Arc<OnlinePa>,
    /// The shared store this session attached to, if any (re-exported by
    /// [`NonAnswerDebugger::shared_parts`] so sibling sessions keep sharing).
    shared_cache: Option<SharedEvalCache>,
    /// This session's registration on the cross-session wave exchange, if
    /// one was attached ([`NonAnswerDebugger::set_wave_exchange`]). Held for
    /// the debugger's lifetime so concurrent peers see the session as a
    /// merge candidate between debug calls, not only during them.
    /// `None` (the default) keeps every debug call on the unbatched drivers.
    ticket: Option<crate::batch::BatchTicket>,
}

impl NonAnswerDebugger {
    /// Builds the system over `db`. `db` should be [`Database::finalize`]d;
    /// if not, join indexes are built here.
    pub fn new(mut db: Database, config: DebugConfig) -> Result<Self, KwError> {
        config.validate()?;
        db.finalize();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, config.max_joins);
        let cache = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        Ok(NonAnswerDebugger {
            db: Arc::new(db),
            index: Arc::new(index),
            graph: Arc::new(graph),
            lattice: Arc::new(lattice),
            config,
            workspaces: WorkspacePool::new(),
            cache: Arc::new(cache),
            pa_stats: Arc::new(OnlinePa::new()),
            shared_cache: None,
            ticket: None,
        })
    }

    /// A cheap handle onto this debugger's immutable substrate (database,
    /// index, schema graph, lattice), for building sibling sessions with
    /// [`NonAnswerDebugger::from_shared`]. Clones bump reference counts only.
    pub fn shared_parts(&self) -> SharedParts {
        SharedParts {
            db: Arc::clone(&self.db),
            index: Arc::clone(&self.index),
            graph: Arc::clone(&self.graph),
            lattice: Arc::clone(&self.lattice),
            shared_cache: self.shared_cache.clone(),
            pa_stats: Arc::clone(&self.pa_stats),
        }
    }

    /// Builds a new *session* over an existing substrate: the returned
    /// debugger reads the same database, index and lattice arena as every
    /// other holder of `parts`, but owns fresh per-session state — a cold
    /// [`WorkspacePool`] and its own `config` (budget, strategy, workers,
    /// ...). This is O(1): no data is copied and no Phase-0 work runs, which
    /// is what makes per-connection sessions viable in the serving layer.
    /// `config.max_joins` must match the lattice.
    ///
    /// When `parts` carries a [`SharedEvalCache`]
    /// ([`SharedParts::share_eval_cache`]) the session attaches to that
    /// process-wide store instead of a private [`EvalCache`]; the online
    /// `p_a` estimator is always the substrate's shared one.
    pub fn from_shared(parts: SharedParts, config: DebugConfig) -> Result<Self, KwError> {
        config.validate()?;
        if parts.lattice.max_joins() != config.max_joins {
            return Err(KwError::BadConfig(format!(
                "shared lattice was built for maxJoins = {}, config wants {}",
                parts.lattice.max_joins(),
                config.max_joins
            )));
        }
        let cache = match &parts.shared_cache {
            Some(shared) => shared.handle(),
            None => {
                Arc::new(EvalCache::with_identity(parts.db.db_id(), parts.db.epoch(), None))
            }
        };
        Ok(NonAnswerDebugger {
            db: parts.db,
            index: parts.index,
            graph: parts.graph,
            lattice: parts.lattice,
            config,
            workspaces: WorkspacePool::new(),
            cache,
            pa_stats: parts.pa_stats,
            shared_cache: parts.shared_cache,
            ticket: None,
        })
    }

    /// Builds the system reusing a previously persisted lattice (see
    /// [`crate::lattice_io`]), skipping the expensive Phase-0 generation.
    /// The lattice must match `config.max_joins` and must have been built
    /// for a database with the same schema graph — table and foreign-key
    /// ids are validated against `db`.
    pub fn with_lattice(
        mut db: Database,
        lattice: Lattice,
        config: DebugConfig,
    ) -> Result<Self, KwError> {
        config.validate()?;
        if lattice.max_joins() != config.max_joins {
            return Err(KwError::BadConfig(format!(
                "lattice was built for maxJoins = {}, config wants {}",
                lattice.max_joins(),
                config.max_joins
            )));
        }
        for id in lattice.all_nodes() {
            let jnts = lattice.jnts(id);
            for ts in jnts.nodes() {
                if ts.table >= db.table_count() {
                    return Err(KwError::BadConfig(format!(
                        "lattice references table #{} outside this database",
                        ts.table
                    )));
                }
            }
            for e in jnts.edges() {
                if e.fk >= db.foreign_keys().len() {
                    return Err(KwError::BadConfig(format!(
                        "lattice references foreign key #{} outside this schema",
                        e.fk
                    )));
                }
            }
        }
        db.finalize();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let cache = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        Ok(NonAnswerDebugger {
            db: Arc::new(db),
            index: Arc::new(index),
            graph: Arc::new(graph),
            lattice: Arc::new(lattice),
            config,
            workspaces: WorkspacePool::new(),
            cache: Arc::new(cache),
            pa_stats: Arc::new(OnlinePa::new()),
            shared_cache: None,
            ticket: None,
        })
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The offline lattice.
    pub fn lattice(&self) -> &Lattice {
        &self.lattice
    }

    /// The inverted index.
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The schema graph.
    pub fn schema_graph(&self) -> &SchemaGraph {
        &self.graph
    }

    /// The active configuration.
    pub fn config(&self) -> &DebugConfig {
        &self.config
    }

    /// How many Phase 1–2 builds were served by a recycled scratch workspace
    /// instead of a fresh allocation (system-level counter over the lifetime
    /// of this debugger; see [`crate::workspace::WorkspacePool`]).
    pub fn workspace_reuses(&self) -> u64 {
        self.workspaces.reuses()
    }

    /// Sets the per-interpretation probe budget for subsequent debug calls.
    pub fn set_budget(&mut self, budget: ProbeBudget) {
        self.config.budget = budget;
    }

    /// Sets the transient-failure retry policy for subsequent debug calls.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.config.retry = retry;
    }

    /// Enables (`Some`) or disables (`None`) deterministic fault injection
    /// for subsequent debug calls.
    pub fn set_chaos(&mut self, chaos: Option<FaultConfig>) {
        self.config.chaos = chaos;
    }

    /// Sets the probe-thread count for subsequent debug calls (`<= 1` is
    /// sequential; see [`crate::parallel`] for the equivalence guarantee).
    pub fn set_workers(&mut self, workers: usize) {
        self.config.workers = workers;
    }

    /// Attaches a cross-session [`crate::batch::WaveExchange`]: the session
    /// registers on the exchange's `(db_id, epoch)` group for its lifetime,
    /// and subsequent debug calls merge their probe waves with concurrently
    /// registered sessions (see the [`crate::batch`] module docs — reports
    /// are identical to unbatched runs). Sessions pinned to different epochs
    /// land in different groups and never share a wave. `None` detaches
    /// (deregistering immediately).
    pub fn set_wave_exchange(&mut self, exchange: Option<Arc<crate::batch::WaveExchange>>) {
        self.ticket = exchange.map(|ex| ex.register(self.db.db_id(), self.db.epoch()));
    }

    /// The attached cross-session wave exchange, if any.
    pub fn wave_exchange(&self) -> Option<&Arc<crate::batch::WaveExchange>> {
        self.ticket.as_ref().map(|t| t.exchange())
    }

    /// Enables or disables the session evaluation cache for subsequent debug
    /// calls. Disabling does not clear the cache — entries stay valid for
    /// the debugger's lifetime and are reused when re-enabled.
    pub fn set_eval_cache(&mut self, on: bool) {
        self.config.eval_cache = on;
    }

    /// The session evaluation cache (sizes and entry counts for dashboards
    /// and the REPL's `:cache` command; empty until a cache-enabled debug
    /// call populates it).
    pub fn eval_cache(&self) -> &EvalCache {
        &self.cache
    }

    /// Drops every cached selection and subtree value-set, returning the
    /// session to a cold cache. Entries are otherwise valid for the
    /// debugger's whole lifetime (the database is immutable), so this exists
    /// for memory pressure in long sessions and for benchmarking cold-start
    /// behaviour repeatably. A session attached to a [`SharedEvalCache`]
    /// *detaches* onto a private cold cache instead (the shared store belongs
    /// to every session; one session must not be able to dump it) — not
    /// reachable over the serving wire.
    pub fn reset_eval_cache(&mut self) {
        self.cache =
            Arc::new(EvalCache::with_identity(self.db.db_id(), self.db.epoch(), None));
        self.shared_cache = None;
    }

    /// Process-unique id of the database build this debugger reads (stamped
    /// on shared caches; see [`SharedParts::db_id`]).
    pub fn db_id(&self) -> u64 {
        self.db.db_id()
    }

    /// The epoch of the database snapshot this debugger reads — its cache
    /// pin and the `epoch` gauge of every report it produces.
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// The online `p_a` estimator this debugger records into and reads from
    /// when [`DebugConfig::online_pa`] is on (shared across sibling sessions
    /// built with [`NonAnswerDebugger::from_shared`]).
    pub fn pa_stats(&self) -> &Arc<OnlinePa> {
        &self.pa_stats
    }

    /// The process-wide store this session attached to, if it was built over
    /// [`SharedParts`] carrying one.
    pub fn shared_cache(&self) -> Option<&SharedEvalCache> {
        self.shared_cache.as_ref()
    }

    /// Debugs a keyword query end to end (Phases 1–3).
    pub fn debug(&self, input: &str) -> Result<DebugReport, KwError> {
        self.debug_with_strategy(input, self.config.strategy)
    }

    /// Like [`NonAnswerDebugger::debug`] but with an explicit strategy,
    /// letting callers compare strategies over one offline lattice.
    pub fn debug_with_strategy(
        &self,
        input: &str,
        strategy: StrategyKind,
    ) -> Result<DebugReport, KwError> {
        let start = Instant::now();
        let query = KeywordQuery::parse(input)?;

        let map_start = Instant::now();
        let mapping = map_keywords(&query, &self.index);
        let mapping_time = map_start.elapsed();

        let ticket = self.ticket.as_ref();
        let mut interpretations = Vec::with_capacity(mapping.interpretations.len());
        for interp in &mapping.interpretations {
            interpretations.push(self.debug_interpretation(
                interp,
                &mapping.keywords,
                strategy,
                ticket,
            )?);
        }
        let mut timing = PhaseTiming { mapping: mapping_time, ..PhaseTiming::default() };
        for interp in &interpretations {
            timing.accumulate(&interp.timing);
        }
        timing.total = start.elapsed();
        Ok(DebugReport {
            keywords: mapping.keywords,
            unknown_keywords: mapping.unknown,
            interpretations,
            mapping_time,
            total_time: timing.total,
            timing,
        })
    }

    /// Runs Phases 2–3 for one interpretation.
    fn debug_interpretation(
        &self,
        interp: &Interpretation,
        keywords: &[String],
        strategy: StrategyKind,
        ticket: Option<&crate::batch::BatchTicket>,
    ) -> Result<InterpretationOutcome, KwError> {
        let prune_start = Instant::now();
        let (mut ws, _reused) = self.workspaces.acquire();
        let pruned = PrunedLattice::build_with(&self.lattice, interp, &mut ws);
        self.workspaces.release(ws);
        let pruning = prune_start.elapsed();
        let mut oracle = AlivenessOracle::new(
            &self.db,
            Some(&self.index),
            interp,
            keywords,
            self.config.memoize,
        )
        .with_budget(self.config.budget)
        .with_retry(self.config.retry);
        if let Some(chaos) = self.config.chaos {
            oracle = oracle.with_chaos(chaos);
        }
        if self.config.eval_cache {
            oracle = oracle.with_eval_cache(Arc::clone(&self.cache));
        }
        if self.config.online_pa {
            oracle = oracle.with_pa_stats(Arc::clone(&self.pa_stats));
        }
        let pa = if self.config.online_pa {
            self.pa_stats.estimate_pa(&pruned)
        } else if self.config.estimate_pa {
            crate::estimate::PaEstimator::new(&self.db, &self.index, interp, keywords)
                .estimate_pa(&self.lattice, &pruned)
        } else {
            self.config.pa
        };
        let traversal_start = Instant::now();
        let mut outcome = traversal::run_with_ticket(
            strategy,
            &self.lattice,
            &pruned,
            &mut oracle,
            pa,
            self.config.workers,
            ticket,
        )?;
        let traversal_time = traversal_start.elapsed();
        // Phase-1 substrate accounting rides along in the probe counters so
        // every report surface sees it. workspace_reuses intentionally does
        // NOT: whether the pool was warm depends on call history, which would
        // break the run-for-run equivalence guarantees; it is exposed as a
        // system-level counter via [`NonAnswerDebugger::workspace_reuses`].
        outcome.probes.phase1_nodes_touched = pruned.phase1_nodes_touched();
        // Write-path gauges: the snapshot epoch this report was computed at,
        // and the lifetime invalidation/compaction counts of the substrate it
        // read. Gauges, not probe work — `Metrics::delta` carries them
        // through windows unchanged.
        outcome.probes.epoch = self.db.epoch();
        outcome.probes.entries_invalidated = self.cache.invalidated();
        outcome.probes.compactions = self.index.compactions();

        let report_start = Instant::now();
        let keyword_tables = keywords
            .iter()
            .zip(interp.tables())
            .map(|(k, &t)| (k.clone(), self.db.table(t).schema().name.clone()))
            .collect();

        let mut answers = Vec::with_capacity(outcome.alive_mtns.len());
        for &m in &outcome.alive_mtns {
            answers.push(self.query_info(&pruned, m, &mut oracle, true)?);
        }
        let mut non_answers = Vec::with_capacity(outcome.dead_mtns.len());
        for ((&m, mpans), possible) in
            outcome.dead_mtns.iter().zip(&outcome.mpans).zip(&outcome.possible_mpans)
        {
            let query = self.query_info(&pruned, m, &mut oracle, false)?;
            let mut infos = Vec::with_capacity(mpans.len());
            for &p in mpans {
                infos.push(self.query_info(&pruned, p, &mut oracle, true)?);
            }
            let mut possible_infos = Vec::with_capacity(possible.len());
            for &p in possible {
                possible_infos.push(self.query_info(&pruned, p, &mut oracle, true)?);
            }
            non_answers.push(NonAnswerInfo {
                query,
                mpans: infos,
                possible_mpans: possible_infos,
            });
        }
        let mut unknown = Vec::with_capacity(outcome.unknown_mtns.len());
        for &m in &outcome.unknown_mtns {
            unknown.push(self.query_info(&pruned, m, &mut oracle, false)?);
        }
        let reporting = report_start.elapsed();

        Ok(InterpretationOutcome {
            keyword_tables,
            answers,
            non_answers,
            unknown,
            budget_exhausted: outcome.exhausted,
            prune_stats: pruned.stats().clone(),
            sql_queries: outcome.sql_queries,
            sql_time: outcome.sql_time,
            probes: outcome.probes,
            timing: PhaseTiming {
                pruning,
                traversal: traversal_time,
                sql: outcome.sql_time,
                reporting,
                ..PhaseTiming::default()
            },
        })
    }

    /// Renders one pruned-lattice node for the report, sampling tuples if the
    /// node is alive and sampling is enabled. Sampling degrades gracefully: a
    /// tripped budget or an injected fault yields an empty sample rather than
    /// failing the whole report.
    fn query_info(
        &self,
        pruned: &PrunedLattice,
        dense: usize,
        oracle: &mut AlivenessOracle<'_>,
        alive: bool,
    ) -> Result<QueryInfo, KwError> {
        let jnts = pruned.jnts(&self.lattice, dense);
        let sql = oracle.sql(jnts)?;
        let sample_tuples = if alive && self.config.sample_limit > 0 {
            match oracle.sample(jnts, self.config.sample_limit) {
                Ok(tuples) => {
                    tuples.into_iter().map(|t| render_tuple(&self.db, jnts, &t)).collect()
                }
                Err(KwError::BudgetExhausted(_)) => Vec::new(),
                Err(KwError::Engine(e)) if e.is_fault() => Vec::new(),
                Err(e) => return Err(e),
            }
        } else {
            Vec::new()
        };
        Ok(QueryInfo { sql, level: pruned.level(dense), sample_tuples })
    }
}

/// Renders one result tuple as `table0(v1, v2) ⋈ table1(...)`.
fn render_tuple(db: &Database, jnts: &Jnts, tuple: &[relengine::RowId]) -> String {
    let parts: Vec<String> = jnts
        .nodes()
        .iter()
        .zip(tuple)
        .map(|(ts, &rid)| {
            let table = db.table(ts.table);
            let values: Vec<String> =
                table.row(rid).iter().map(|v| v.to_string()).collect();
            format!("{}{}({})", table.schema().name, ts.copy, values.join(", "))
        })
        .collect();
    parts.join(" ⋈ ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    /// The paper's Figure 2 in miniature: saffron-colored things exist, scented
    /// candles exist, but no saffron-scented candle.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
        db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
        db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
        // A red scented candle and a saffron scented oil.
        db.insert_values(
            "item",
            vec![Value::Int(1), Value::text("scented pillar"), Value::Int(1), Value::Int(2)],
        )
        .unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(2), Value::text("scented burner"), Value::Int(2), Value::Int(1)],
        )
        .unwrap();
        db
    }

    fn debugger(strategy: StrategyKind) -> NonAnswerDebugger {
        NonAnswerDebugger::new(
            db(),
            DebugConfig { max_joins: 2, strategy, ..DebugConfig::default() },
        )
        .unwrap()
    }

    #[test]
    fn answer_query_reported_alive() {
        let d = debugger(StrategyKind::ScoreBasedHeuristic);
        let r = d.debug("red candle").unwrap();
        assert_eq!(r.answer_count(), 1);
        assert_eq!(r.non_answer_count(), 0);
        let a = &r.interpretations[0].answers[0];
        assert_eq!(a.level, 3);
        assert!(!a.sample_tuples.is_empty());
        assert!(a.sample_tuples[0].contains("scented pillar"), "{:?}", a.sample_tuples);
    }

    #[test]
    fn non_answer_explained_with_mpans() {
        let d = debugger(StrategyKind::ScoreBasedHeuristic);
        let r = d.debug("saffron candle").unwrap();
        assert_eq!(r.answer_count(), 0);
        assert_eq!(r.non_answer_count(), 1);
        let na = &r.interpretations[0].non_answers[0];
        assert!(!na.mpans.is_empty());
        // MPANs must mention both frontier causes: candles exist, and
        // saffron things exist.
        let all_sql: String =
            na.mpans.iter().map(|m| m.sql.as_str()).collect::<Vec<_>>().join(" | ");
        assert!(all_sql.contains("%candle%"), "{all_sql}");
        assert!(all_sql.contains("%saffron%"), "{all_sql}");
    }

    #[test]
    fn all_strategies_agree_on_output() {
        let d = debugger(StrategyKind::BruteForce);
        let base = d.debug("saffron candle").unwrap();
        for kind in StrategyKind::ALL {
            let r = d.debug_with_strategy("saffron candle", kind).unwrap();
            assert_eq!(r.answer_count(), base.answer_count(), "{kind}");
            assert_eq!(r.non_answer_count(), base.non_answer_count(), "{kind}");
            assert_eq!(r.mpan_count(), base.mpan_count(), "{kind}");
        }
    }

    #[test]
    fn unknown_keyword_short_circuits() {
        let d = debugger(StrategyKind::ScoreBasedHeuristic);
        let r = d.debug("saffron zanzibar").unwrap();
        assert_eq!(r.unknown_keywords, vec!["zanzibar"]);
        assert!(r.interpretations.is_empty());
        assert_eq!(r.sql_queries(), 0);
    }

    #[test]
    fn empty_query_is_error() {
        let d = debugger(StrategyKind::ScoreBasedHeuristic);
        assert!(matches!(d.debug("  !! "), Err(KwError::EmptyQuery)));
    }

    #[test]
    fn config_validation() {
        assert!(NonAnswerDebugger::new(
            db(),
            DebugConfig { max_joins: 99, ..DebugConfig::default() }
        )
        .is_err());
        assert!(NonAnswerDebugger::new(db(), DebugConfig { pa: 1.5, ..DebugConfig::default() })
            .is_err());
    }

    #[test]
    fn sampling_can_be_disabled() {
        let d = NonAnswerDebugger::new(
            db(),
            DebugConfig { max_joins: 2, sample_limit: 0, ..DebugConfig::default() },
        )
        .unwrap();
        let r = d.debug("red candle").unwrap();
        assert!(r.interpretations[0].answers[0].sample_tuples.is_empty());
    }

    #[test]
    fn report_display_is_readable() {
        let d = debugger(StrategyKind::ScoreBasedHeuristic);
        let r = d.debug("saffron candle").unwrap();
        let text = r.to_string();
        assert!(text.contains("DEAD"));
        assert!(text.contains("max alive sub-query"));
    }

    #[test]
    fn quiet_chaos_and_default_knobs_change_nothing() {
        let base = debugger(StrategyKind::ScoreBasedHeuristic)
            .debug("saffron candle")
            .unwrap();
        let d = NonAnswerDebugger::new(
            db(),
            DebugConfig {
                max_joins: 2,
                chaos: Some(FaultConfig::quiet(42)),
                ..DebugConfig::default()
            },
        )
        .unwrap();
        let r = d.debug("saffron candle").unwrap();
        // Byte-identical up to wall-clock timings (the only nondeterminism).
        let scrub = |s: &str| -> String {
            s.lines()
                .map(|l| match l.find(" SQL queries, ") {
                    Some(i) => format!("{} SQL queries, (t)", &l[..i]),
                    None => l.to_string(),
                })
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(scrub(&r.to_string()), scrub(&base.to_string()), "quiet chaos is transparent");
        assert_eq!(r.sql_queries(), base.sql_queries());
        let timeless = |mut p: crate::metrics::ProbeCounters| {
            p.probe_time_ns = 0;
            p
        };
        assert_eq!(timeless(r.probes()), timeless(base.probes()), "same counters");
        assert!(r.is_complete() && base.is_complete());
        for (ri, bi) in r.interpretations.iter().zip(&base.interpretations) {
            assert_eq!(ri.answers, bi.answers);
            assert_eq!(ri.non_answers, bi.non_answers);
            assert_eq!(ri.unknown, bi.unknown);
        }
    }

    #[test]
    fn zero_probe_budget_reports_everything_unknown() {
        let d = NonAnswerDebugger::new(
            db(),
            DebugConfig {
                max_joins: 2,
                budget: ProbeBudget::probes(0),
                ..DebugConfig::default()
            },
        )
        .unwrap();
        let r = d.debug("saffron candle").unwrap();
        assert_eq!(r.answer_count(), 0);
        assert_eq!(r.non_answer_count(), 0);
        assert_eq!(r.unknown_count(), 1, "the MTN is reported, just unclassified");
        assert!(!r.is_complete());
        assert_eq!(r.sql_queries(), 0, "nothing executed");
        assert_eq!(r.probes().budget_exhausted, 1);
        let text = r.to_string();
        assert!(text.contains("UNKNOWN"), "{text}");
        assert!(text.contains("probe budget exhausted"), "{text}");
    }

    #[test]
    fn robustness_setters_update_config() {
        let mut d = debugger(StrategyKind::ScoreBasedHeuristic);
        d.set_budget(ProbeBudget::probes(5));
        d.set_retry(RetryPolicy::none());
        d.set_chaos(Some(FaultConfig::quiet(1)));
        assert_eq!(d.config().budget, ProbeBudget::probes(5));
        assert_eq!(d.config().retry, RetryPolicy::none());
        assert!(d.config().chaos.is_some());
        d.set_chaos(None);
        assert!(d.config().chaos.is_none());
    }

    #[test]
    fn shared_parts_sessions_agree_with_owner() {
        // The serving-layer split: one owner builds Phase 0, then O(1)
        // sessions attach to the same immutable substrate and must report
        // exactly what the owner reports — with private eval caches.
        let owner = debugger(StrategyKind::ScoreBasedHeuristic);
        let parts = owner.shared_parts();
        assert_eq!(parts.max_joins(), 2);
        assert_eq!(parts.database().tables().count(), owner.database().tables().count());

        let session = NonAnswerDebugger::from_shared(
            parts.clone(),
            DebugConfig { max_joins: 2, eval_cache: true, ..DebugConfig::default() },
        )
        .expect("O(1) session over shared parts");
        for query in ["saffron candle", "red candle", "scented oil"] {
            let a = owner.debug(query).unwrap();
            let b = session.debug(query).unwrap();
            assert_eq!(a.answer_count(), b.answer_count(), "{query}");
            assert_eq!(a.non_answer_count(), b.non_answer_count(), "{query}");
            assert_eq!(a.mpan_count(), b.mpan_count(), "{query}");
        }
        // The session warmed its own cache generation, not the owner's.
        assert!(session.eval_cache().selection_entries() > 0);
        assert_eq!(owner.eval_cache().selection_entries(), 0);
    }

    #[test]
    fn shared_cache_sessions_share_one_store() {
        let owner = debugger(StrategyKind::ScoreBasedHeuristic);
        let mut parts = owner.shared_parts();
        let store = parts.share_eval_cache(None);
        let config = DebugConfig { max_joins: 2, eval_cache: true, ..DebugConfig::default() };
        let a = NonAnswerDebugger::from_shared(parts.clone(), config).expect("session a");
        let b = NonAnswerDebugger::from_shared(parts.clone(), config).expect("session b");
        let ra = a.debug("saffron candle").unwrap();
        let warmed = store.bytes();
        assert!(warmed > 0, "first session populates the shared store");
        let rb = b.debug("saffron candle").unwrap();
        assert_eq!(store.bytes(), warmed, "second session adds nothing new");
        assert!(store.hits() > 0, "second session hits shared entries");
        assert_eq!(ra.answer_count(), rb.answer_count());
        assert_eq!(ra.non_answer_count(), rb.non_answer_count());
        assert_eq!(ra.mpan_count(), rb.mpan_count());
        // Both sessions see the same resident store through their accessor.
        assert_eq!(a.eval_cache().bytes(), b.eval_cache().bytes());
        assert!(a.shared_cache().is_some() && b.shared_cache().is_some());
        // shared_parts() re-exports the attachment for further siblings.
        assert!(a.shared_parts().shared_cache().is_some());
        // The opt-out handle yields private-cache sessions.
        let private =
            NonAnswerDebugger::from_shared(parts.without_shared_cache(), config).expect("session");
        assert!(private.shared_cache().is_none());
        private.debug("saffron candle").unwrap();
        assert_eq!(store.bytes(), warmed, "opted-out session never touches the store");
    }

    #[test]
    fn adopt_rejects_foreign_database() {
        let one = debugger(StrategyKind::ScoreBasedHeuristic);
        let two = debugger(StrategyKind::ScoreBasedHeuristic);
        let mut parts_one = one.shared_parts();
        let mut parts_two = two.shared_parts();
        assert_ne!(parts_one.db_id(), parts_two.db_id());
        let store = parts_one.share_eval_cache(Some(1 << 20));
        assert!(
            matches!(parts_two.adopt_eval_cache(store.clone()), Err(KwError::BadConfig(_))),
            "a cache from another database build must not attach"
        );
        // Same-identity adoption (another clone of the same substrate) is
        // fine.
        let mut sibling = one.shared_parts();
        sibling.adopt_eval_cache(store).expect("same identity adopts");
        assert!(sibling.shared_cache().is_some());
    }

    #[test]
    fn online_pa_matches_fixed_prior_output() {
        let base = debugger(StrategyKind::ScoreBasedHeuristic);
        let parts = base.shared_parts();
        let online = NonAnswerDebugger::from_shared(
            parts,
            DebugConfig { max_joins: 2, online_pa: true, ..DebugConfig::default() },
        )
        .expect("session");
        for query in ["saffron candle", "red candle", "scented oil", "saffron candle"] {
            let a = base.debug(query).unwrap();
            let b = online.debug(query).unwrap();
            assert_eq!(a.answer_count(), b.answer_count(), "{query}");
            assert_eq!(a.non_answer_count(), b.non_answer_count(), "{query}");
            assert_eq!(a.mpan_count(), b.mpan_count(), "{query}");
        }
        assert!(online.pa_stats().observations() > 0, "verdicts were recorded");
        // The estimator is the substrate's: the owner sees the same one.
        assert!(Arc::ptr_eq(base.pa_stats(), online.pa_stats()));
    }

    #[test]
    fn from_shared_validates_config_against_lattice() {
        let owner = debugger(StrategyKind::ScoreBasedHeuristic);
        let result = NonAnswerDebugger::from_shared(
            owner.shared_parts(),
            DebugConfig { max_joins: 3, ..DebugConfig::default() },
        );
        assert!(matches!(result, Err(KwError::BadConfig(_))), "lattice depth must match");
        let result = NonAnswerDebugger::from_shared(
            owner.shared_parts(),
            DebugConfig { max_joins: 2, pa: 7.0, ..DebugConfig::default() },
        );
        assert!(matches!(result, Err(KwError::BadConfig(_))), "config still validated");
    }
}

#[cfg(test)]
mod with_lattice_tests {
    use super::*;
    use crate::lattice_io::{load_lattice, save_lattice};
    use relengine::{DataType, DatabaseBuilder, Value};

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).expect("row");
        db.insert_values("item", vec![Value::Int(1), Value::text("wax"), Value::Int(1)])
            .expect("row");
        db.finalize();
        db
    }

    #[test]
    fn persisted_lattice_round_trips_through_debugger() {
        let config = DebugConfig { max_joins: 2, sample_limit: 0, ..DebugConfig::default() };
        let first = NonAnswerDebugger::new(db(), config).expect("builds");
        let mut buf = Vec::new();
        save_lattice(first.lattice(), &mut buf).expect("saves");
        let reloaded = load_lattice(&mut buf.as_slice()).expect("loads");
        let second =
            NonAnswerDebugger::with_lattice(db(), reloaded, config).expect("reuses lattice");
        for q in ["red wax", "red item"] {
            let a = first.debug(q).expect("runs");
            let b = second.debug(q).expect("runs");
            assert_eq!(a.answer_count(), b.answer_count(), "{q}");
            assert_eq!(a.non_answer_count(), b.non_answer_count(), "{q}");
        }
    }

    #[test]
    fn mismatched_max_joins_rejected() {
        let first = NonAnswerDebugger::new(
            db(),
            DebugConfig { max_joins: 2, ..DebugConfig::default() },
        )
        .expect("builds");
        let mut buf = Vec::new();
        save_lattice(first.lattice(), &mut buf).expect("saves");
        let reloaded = load_lattice(&mut buf.as_slice()).expect("loads");
        let result = NonAnswerDebugger::with_lattice(
            db(),
            reloaded,
            DebugConfig { max_joins: 3, ..DebugConfig::default() },
        );
        assert!(matches!(result, Err(KwError::BadConfig(_))));
    }

    #[test]
    fn foreign_lattice_rejected() {
        // A lattice over a wider schema must not attach to a narrower db.
        let mut b = DatabaseBuilder::new();
        b.table("only").column("id", DataType::Int).column("t", DataType::Text);
        let small = b.finish().expect("static");
        let wide = NonAnswerDebugger::new(
            db(),
            DebugConfig { max_joins: 1, ..DebugConfig::default() },
        )
        .expect("builds");
        let mut buf = Vec::new();
        save_lattice(wide.lattice(), &mut buf).expect("saves");
        let reloaded = load_lattice(&mut buf.as_slice()).expect("loads");
        let result = NonAnswerDebugger::with_lattice(
            small,
            reloaded,
            DebugConfig { max_joins: 1, ..DebugConfig::default() },
        );
        assert!(matches!(result, Err(KwError::BadConfig(_))));
    }
}
