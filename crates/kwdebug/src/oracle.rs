//! The aliveness oracle: executing a lattice node's SQL query.
//!
//! Phase 3 asks one question of a node — *is it alive* (does its SQL query
//! return at least one tuple)? The oracle instantiates a node's network into
//! a [`relengine::JoinTreePlan`] under the current interpretation (keyword
//! copies get their keyword's containment predicate plus the inverted-index
//! posting list as candidates; free copies are unconstrained) and runs the
//! engine's emptiness check. Every call is one "SQL query executed" in the
//! paper's metrics; an optional memo table (off by default, an ablation knob)
//! caches results per lattice node across calls.
//!
//! The oracle owns the [`Metrics`] block for its interpretation and keeps the
//! probe-side counters itself; traversal strategies record their inference
//! and reuse events through [`AlivenessOracle::metrics`]. Oracle-side
//! accounting versus the paper:
//!
//! | event | counters touched | paper counterpart |
//! |---|---|---|
//! | `is_alive` cache miss | `probes_executed`, `probe_time`, `tuples_scanned` | one "SQL query" (Figs. 11–12) |
//! | `is_alive` memo hit | `memo_hits` | beyond the paper (§3 re-executes) |
//! | `sample` for a report | `probes_executed`, `probe_time`, `tuples_scanned` | §2.1 sample tuples of `A(K)`/`M(K)` |
//!
//! `probes_executed` always equals the engine's own `ExecStats::queries` —
//! the invariant the metrics integration tests pin down.

use std::collections::HashMap;
use std::time::Instant;

use relengine::{
    Database, EngineError, ExecStats, Executor, JoinTreePlan, PlanEdge, PlanNode, Predicate,
};
use textindex::InvertedIndex;

use crate::binding::Interpretation;
use crate::error::KwError;
use crate::jnts::Jnts;
use crate::lattice::NodeId;
use crate::metrics::Metrics;

/// Builds the executable plan of a network under an interpretation.
pub fn build_plan(
    jnts: &Jnts,
    interp: &Interpretation,
    db: &Database,
    index: Option<&InvertedIndex>,
    keywords: &[String],
) -> Result<JoinTreePlan, EngineError> {
    let mut nodes = Vec::with_capacity(jnts.node_count());
    for &ts in jnts.nodes() {
        let table_name = &db.table(ts.table).schema().name;
        let alias = format!("{}{}", table_name, ts.copy);
        let node = match interp.keyword_for(ts) {
            None => PlanNode::free(ts.table).with_alias(alias),
            Some(kw_idx) => {
                let kw = &keywords[kw_idx];
                let mut n =
                    PlanNode::new(ts.table, Predicate::any_text_contains(kw.clone()))
                        .with_alias(alias);
                if let Some(idx) = index {
                    n = n.with_candidates(idx.rows_containing(ts.table, kw).to_vec());
                }
                n
            }
        };
        nodes.push(node);
    }
    let mut edges = Vec::with_capacity(jnts.join_count());
    for e in jnts.edges() {
        let fk = db.foreign_key(e.fk);
        let (a_col, b_col) =
            if e.a_is_from { (fk.from_col, fk.to_col) } else { (fk.to_col, fk.from_col) };
        edges.push(PlanEdge { a: e.a as usize, a_col, b: e.b as usize, b_col });
    }
    JoinTreePlan::new(nodes, edges)
}

/// Answers aliveness queries for lattice nodes, counting every execution.
pub struct AlivenessOracle<'a> {
    db: &'a Database,
    index: Option<&'a InvertedIndex>,
    interp: &'a Interpretation,
    keywords: &'a [String],
    executor: Executor<'a>,
    memo: Option<HashMap<NodeId, bool>>,
    metrics: Metrics,
}

impl<'a> AlivenessOracle<'a> {
    /// Creates an oracle for one interpretation. `memoize` enables the
    /// cross-call result cache (an extension; the paper re-executes).
    pub fn new(
        db: &'a Database,
        index: Option<&'a InvertedIndex>,
        interp: &'a Interpretation,
        keywords: &'a [String],
        memoize: bool,
    ) -> Self {
        AlivenessOracle {
            db,
            index,
            interp,
            keywords,
            executor: Executor::new(db),
            memo: memoize.then(HashMap::new),
            metrics: Metrics::new(),
        }
    }

    /// Whether the node's query returns at least one tuple.
    pub fn is_alive(&mut self, node: NodeId, jnts: &Jnts) -> Result<bool, KwError> {
        if let Some(memo) = &self.memo {
            if let Some(&alive) = memo.get(&node) {
                self.metrics.memo_hits.incr();
                return Ok(alive);
            }
        }
        let plan = build_plan(jnts, self.interp, self.db, self.index, self.keywords)?;
        let rows_before = self.executor.stats().rows_examined;
        let start = Instant::now();
        let alive = self.executor.exists(&plan)?;
        self.metrics.probes_executed.incr();
        self.metrics.probe_time.add(start.elapsed());
        self.metrics.tuples_scanned.add(self.executor.stats().rows_examined - rows_before);
        if let Some(memo) = &mut self.memo {
            memo.insert(node, alive);
        }
        Ok(alive)
    }

    /// Fetches up to `limit` sample result tuples of a node (for reports).
    /// Counts as one more executed query.
    pub fn sample(
        &mut self,
        jnts: &Jnts,
        limit: usize,
    ) -> Result<Vec<Vec<relengine::RowId>>, KwError> {
        let plan = build_plan(jnts, self.interp, self.db, self.index, self.keywords)?;
        let rows_before = self.executor.stats().rows_examined;
        let start = Instant::now();
        let tuples = self.executor.execute(&plan, limit)?;
        self.metrics.probes_executed.incr();
        self.metrics.probe_time.add(start.elapsed());
        self.metrics.tuples_scanned.add(self.executor.stats().rows_examined - rows_before);
        Ok(tuples)
    }

    /// The keyword bound to a relation copy under this interpretation, if any.
    pub fn keyword_of(&self, ts: crate::jnts::TupleSet) -> Option<&str> {
        self.interp.keyword_for(ts).map(|i| self.keywords[i].as_str())
    }

    /// The SQL text of a node under this interpretation.
    pub fn sql(&self, jnts: &Jnts) -> Result<String, KwError> {
        let plan = build_plan(jnts, self.interp, self.db, self.index, self.keywords)?;
        Ok(relengine::render_sql(&plan, self.db))
    }

    /// Engine statistics: queries executed, rows examined, time.
    pub fn stats(&self) -> &ExecStats {
        self.executor.stats()
    }

    /// Number of executed queries so far.
    pub fn queries(&self) -> u64 {
        self.executor.stats().queries
    }

    /// Memo hits (0 unless memoization is on).
    pub fn memo_hits(&self) -> u64 {
        self.metrics.memo_hits.get()
    }

    /// The probe-level instrumentation block. Traversal strategies record
    /// their R1/R2 inferences and reuse hits here; callers snapshot it
    /// (before/after) to attribute counts to one traversal.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Resets execution statistics and metrics (not the memo).
    pub fn reset_stats(&mut self) {
        self.executor.reset_stats();
        self.metrics.reset();
    }

    /// The database under test.
    pub fn database(&self) -> &'a Database {
        self.db
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::jnts::TupleSet;
    use crate::schema_graph::Incidence;
    use relengine::{DataType, DatabaseBuilder, Value};

    /// ptype(candle,oil) <- item -> color(red,saffron); items: red candle,
    /// saffron oil.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
        db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values("color", vec![Value::Int(2), Value::text("saffron")]).unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(1), Value::text("glowy"), Value::Int(1), Value::Int(1)],
        )
        .unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(2), Value::text("scented"), Value::Int(2), Value::Int(2)],
        )
        .unwrap();
        db.finalize();
        db
    }

    fn inc(fk: usize, other: usize, local_is_from: bool) -> Incidence {
        Incidence { fk, other, local_is_from }
    }

    /// P1 - I0 - C1 for the given two keywords (ptype kw first).
    fn mtn_jnts() -> Jnts {
        Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, false), 0)
            .extend(1, inc(1, 2, true), 1)
    }

    #[test]
    fn alive_and_dead_networks() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let interp = &m.interpretations[0];
        let mut oracle = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false);
        assert!(oracle.is_alive(0, &mtn_jnts()).unwrap()); // red candle exists

        let q2 = KeywordQuery::parse("candle saffron").unwrap();
        let m2 = map_keywords(&q2, &idx);
        let interp2 = &m2.interpretations[0];
        let mut oracle2 = AlivenessOracle::new(&db, Some(&idx), interp2, &m2.keywords, false);
        assert!(!oracle2.is_alive(0, &mtn_jnts()).unwrap()); // no saffron candle
        assert_eq!(oracle2.queries(), 1);
    }

    #[test]
    fn memoization_avoids_reexecution() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, true);
        let j = mtn_jnts();
        assert!(oracle.is_alive(7, &j).unwrap());
        assert!(oracle.is_alive(7, &j).unwrap());
        assert_eq!(oracle.queries(), 1);
        assert_eq!(oracle.memo_hits(), 1);
    }

    #[test]
    fn without_memo_reexecutes() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let j = mtn_jnts();
        oracle.is_alive(7, &j).unwrap();
        oracle.is_alive(7, &j).unwrap();
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.memo_hits(), 0);
    }

    #[test]
    fn metrics_track_probes_and_memo() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, true);
        let j = mtn_jnts();
        oracle.is_alive(7, &j).unwrap();
        oracle.is_alive(7, &j).unwrap();
        oracle.sample(&j, 5).unwrap();
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.probes_executed, oracle.queries(), "probe counter mirrors the engine");
        assert_eq!(snap.probes_executed, 2, "one is_alive miss + one sample");
        assert_eq!(snap.memo_hits, 1);
        assert!(snap.tuples_scanned > 0, "probes examine rows");
        assert_eq!(snap.r1_inferences + snap.r2_inferences + snap.reuse_hits, 0);
        oracle.reset_stats();
        assert_eq!(oracle.metrics().snapshot(), crate::metrics::ProbeCounters::default());
        assert_eq!(oracle.queries(), 0);
    }

    #[test]
    fn plan_without_index_scans() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle = AlivenessOracle::new(&db, None, &m.interpretations[0], &m.keywords, false);
        assert!(oracle.is_alive(0, &mtn_jnts()).unwrap());
    }

    #[test]
    fn sql_rendering_shows_binding() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let sql = oracle.sql(&mtn_jnts()).unwrap();
        assert!(sql.contains("ptype AS ptype1"), "{sql}");
        assert!(sql.contains("item AS item0"), "{sql}");
        assert!(sql.contains("LIKE '%candle%'"), "{sql}");
        assert!(sql.contains("LIKE '%red%'"), "{sql}");
        assert!(sql.contains("item0.ptype_id = ptype1.id") || sql.contains("ptype1.id = item0.ptype_id"), "{sql}");
    }

    #[test]
    fn sample_returns_tuples() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let tuples = oracle.sample(&mtn_jnts(), 5).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].len(), 3);
    }
}
