//! The aliveness oracle: executing a lattice node's SQL query.
//!
//! Phase 3 asks one question of a node — *is it alive* (does its SQL query
//! return at least one tuple)? The oracle instantiates a node's network into
//! a [`relengine::JoinTreePlan`] under the current interpretation (keyword
//! copies get their keyword's containment predicate plus the inverted-index
//! posting list as candidates; free copies are unconstrained) and runs the
//! engine's emptiness check. Every call is one "SQL query executed" in the
//! paper's metrics; an optional memo table (off by default, an ablation knob)
//! caches results per lattice node across calls.
//!
//! ## Architecture: shareable core, thin view
//!
//! Since the parallel scheduler landed ([`crate::parallel`]), the oracle is
//! split in two:
//!
//! * `ProbeCore` (crate-internal) — the `Send + Sync` probe backend: the
//!   plan builder inputs, the sharded memo table, the [`Metrics`] block, the
//!   atomic [`BudgetGate`] and the retry policy. Everything in it is either
//!   immutable borrowed data or atomic/lock-striped state, so one core can
//!   serve any number of worker threads concurrently. Engines (executors)
//!   are *not* in the core — each thread owns its own engine and passes it
//!   into the core's execution methods.
//! * [`AlivenessOracle`] — the thin sequential view every existing call site
//!   uses: one core plus one private engine, exposing the same public API as
//!   before the split. Sequential behavior is byte-identical.
//!
//! See DESIGN.md §8 ("Concurrency model") for which invariant each piece of
//! shared state protects.
//!
//! ## Fault tolerance and budgets
//!
//! The oracle is the single choke point between the traversals and the
//! engine, so the whole robustness layer lives here:
//!
//! * [`AlivenessOracle::with_chaos`] swaps the plain executor for a
//!   [`relengine::ChaosExecutor`] that injects deterministic faults;
//! * [`AlivenessOracle::with_budget`] bounds the probing work
//!   ([`ProbeBudget`]: max probes, wall-clock deadline, tuple-scan cap),
//!   enforced through the atomic [`BudgetGate`];
//! * [`AlivenessOracle::with_retry`] sets how transient failures are retried
//!   ([`RetryPolicy`]: capped exponential backoff, deterministic).
//!
//! [`AlivenessOracle::probe`] is the degradation-aware entry point: instead
//! of an error it returns a [`Probe`] — a verdict, a per-node failure (the
//! node stays `Unknown`), or budget exhaustion (probing is over; budgets are
//! sticky). [`AlivenessOracle::is_alive`] keeps the original hard-error
//! contract on top of it.
//!
//! The oracle owns the [`Metrics`] block for its interpretation and keeps the
//! probe-side counters itself; traversal strategies record their inference
//! and reuse events through [`AlivenessOracle::metrics`]. Oracle-side
//! accounting versus the paper:
//!
//! | event | counters touched | paper counterpart |
//! |---|---|---|
//! | `is_alive` cache miss | `probes_executed`, `probe_time`, `tuples_scanned` | one "SQL query" (Figs. 11–12) |
//! | `is_alive` memo hit | `memo_hits` | beyond the paper (§3 re-executes) |
//! | `sample` for a report | `probes_executed`, `probe_time`, `tuples_scanned` | §2.1 sample tuples of `A(K)`/`M(K)` |
//! | transient fault retried | `retries`, `faults_injected` | beyond the paper (degraded mode) |
//! | probe abandoned | `probes_abandoned` (+ `faults_injected` per fault) | beyond the paper (degraded mode) |
//! | budget cap tripped | `budget_exhausted` (once; sticky) | beyond the paper (degraded mode) |
//!
//! `probes_executed` always equals the engine's own `ExecStats::queries` —
//! the invariant the metrics integration tests pin down. Faults are injected
//! *before* the engine executes, so a failed attempt never increments either
//! side of that equation. A failed attempt also returns its reserved budget
//! slot ([`BudgetGate::release`]), so the budget only ever counts executions.

use std::sync::Arc;
use std::time::Instant;

use relengine::sortedvals::ValuePostings;
use relengine::{
    ChaosExecutor, ColId, Database, EngineError, ExecStats, Executor, FaultConfig, FaultStats,
    HarvestOut, JoinTreePlan, MatchTuple, PlanEdge, PlanNode, Predicate, RowId, TableId,
};
use textindex::InvertedIndex;

use crate::binding::Interpretation;
use crate::budget::{BudgetGate, Exhausted, ProbeBudget, RetryPolicy};
use crate::error::KwError;
use crate::evalcache::{network_key, network_mask, subtree_refs, EvalCache};
use crate::jnts::Jnts;
use crate::lattice::NodeId;
use crate::metrics::Metrics;
use crate::parallel::ShardedMemo;

/// Builds the executable plan of a network under an interpretation.
pub fn build_plan(
    jnts: &Jnts,
    interp: &Interpretation,
    db: &Database,
    index: Option<&InvertedIndex>,
    keywords: &[String],
) -> Result<JoinTreePlan, EngineError> {
    let mut nodes = Vec::with_capacity(jnts.node_count());
    for &ts in jnts.nodes() {
        let table_name = &db.table(ts.table).schema().name;
        let alias = format!("{}{}", table_name, ts.copy);
        let node = match interp.keyword_for(ts) {
            None => PlanNode::free(ts.table).with_alias(alias),
            Some(kw_idx) => {
                let kw = &keywords[kw_idx];
                let mut n =
                    PlanNode::new(ts.table, Predicate::any_text_contains(kw.clone()))
                        .with_alias(alias);
                if let Some(idx) = index {
                    n = n.with_candidates(idx.rows_containing(ts.table, kw).to_vec());
                }
                n
            }
        };
        nodes.push(node);
    }
    let mut edges = Vec::with_capacity(jnts.join_count());
    for e in jnts.edges() {
        let fk = db.foreign_key(e.fk);
        let (a_col, b_col) =
            if e.a_is_from { (fk.from_col, fk.to_col) } else { (fk.to_col, fk.from_col) };
        edges.push(PlanEdge { a: e.a as usize, a_col, b: e.b as usize, b_col });
    }
    JoinTreePlan::new(nodes, edges)
}

/// The outcome of one degradation-aware probe ([`AlivenessOracle::probe`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Probe {
    /// The node's query executed (or was memoized): alive or dead.
    Verdict(bool),
    /// This probe failed permanently (hard fault, or transient retries
    /// exhausted); the node stays unclassified, but probing may continue.
    NodeFailed(EngineError),
    /// The probe budget ran out; this and every later probe is refused.
    Exhausted(Exhausted),
}

/// The engine behind one probing thread: plain, or wrapped in fault
/// injection. Each thread owns exactly one engine; the shared [`ProbeCore`]
/// never holds one.
pub(crate) enum ProbeEngine<'a> {
    Plain(Executor<'a>),
    Chaos(ChaosExecutor<'a>),
}

impl<'a> ProbeEngine<'a> {
    fn exists(&mut self, plan: &JoinTreePlan) -> Result<bool, EngineError> {
        match self {
            ProbeEngine::Plain(e) => e.exists(plan),
            ProbeEngine::Chaos(c) => c.exists(plan),
        }
    }

    fn exists_harvesting(
        &mut self,
        plan: &JoinTreePlan,
        harvest: &[usize],
    ) -> Result<(bool, HarvestOut), EngineError> {
        match self {
            ProbeEngine::Plain(e) => e.exists_harvesting(plan, harvest),
            ProbeEngine::Chaos(c) => c.exists_harvesting(plan, harvest),
        }
    }

    fn execute(
        &mut self,
        plan: &JoinTreePlan,
        limit: usize,
    ) -> Result<Vec<MatchTuple>, EngineError> {
        match self {
            ProbeEngine::Plain(e) => e.execute(plan, limit),
            ProbeEngine::Chaos(c) => c.execute(plan, limit),
        }
    }

    pub(crate) fn stats(&self) -> &ExecStats {
        match self {
            ProbeEngine::Plain(e) => e.stats(),
            ProbeEngine::Chaos(c) => c.stats(),
        }
    }

    fn reset_stats(&mut self) {
        match self {
            ProbeEngine::Plain(e) => e.reset_stats(),
            ProbeEngine::Chaos(c) => c.reset_stats(),
        }
    }

    fn absorb_stats(&mut self, other: &ExecStats) {
        match self {
            ProbeEngine::Plain(e) => e.absorb_stats(other),
            ProbeEngine::Chaos(c) => c.absorb_stats(other),
        }
    }
}

/// Internal failure of a budgeted, retried execution attempt.
enum ProbeFail {
    Node(EngineError),
    Exhausted(Exhausted),
}

/// A cache-aware probe plan: the (possibly pruned) executable plan plus the
/// subtree-cache keys to populate from this probe's reduction, as
/// `(plan node index, cache key, tables mask)` triples aligned with the
/// executor's harvest output. The mask travels with the key so the cache
/// can later invalidate the entry when any of its tables is written.
struct CachedPlan {
    plan: JoinTreePlan,
    harvest: Vec<(usize, Vec<u8>, u64)>,
}

/// The `Send + Sync` probe backend shared by every probing thread.
///
/// Holds everything a probe needs *except* an engine: the plan-builder
/// inputs (all shared borrows), the sharded memo, the metrics block (relaxed
/// atomics), the budget gate (atomics) and the retry policy (a `Copy`
/// value). Threads bring their own [`ProbeEngine`] — built by
/// [`ProbeCore::make_engine`] — and pass it into the execution methods, so
/// nothing here ever needs `&mut`.
pub(crate) struct ProbeCore<'a> {
    db: &'a Database,
    index: Option<&'a InvertedIndex>,
    interp: &'a Interpretation,
    keywords: &'a [String],
    /// Shared verdict memo (`None` when memoization is off). Lock-striped;
    /// verdicts are ground truth, so concurrent inserts are idempotent.
    memo: Option<ShardedMemo>,
    /// Probe/inference counters, shared across threads (relaxed atomics).
    pub(crate) metrics: Metrics,
    /// Atomic budget enforcement, shared across threads.
    pub(crate) gate: BudgetGate,
    retry: RetryPolicy,
    /// The fault schedule, kept so per-worker engines can derive their own
    /// deterministic streams (`None` = plain engines).
    chaos: Option<FaultConfig>,
    /// The session-scoped evaluation cache (`None` = plain planning). Shared
    /// across interpretations and parallel workers; see [`crate::evalcache`].
    cache: Option<Arc<EvalCache>>,
    /// Online `p_a` observer (`None` = off). Every *executed* probe reports
    /// its `(level, verdict)` here; see [`crate::estimate::OnlinePa`].
    pa_stats: Option<Arc<crate::estimate::OnlinePa>>,
}

// The core must stay shareable across the scheduler's worker threads; this
// trips at compile time if a non-Sync field ever sneaks in.
const _: () = {
    const fn assert_sync<T: Sync>() {}
    assert_sync::<ProbeCore<'static>>();
};

impl<'a> ProbeCore<'a> {
    fn new(
        db: &'a Database,
        index: Option<&'a InvertedIndex>,
        interp: &'a Interpretation,
        keywords: &'a [String],
        memoize: bool,
    ) -> Self {
        ProbeCore {
            db,
            index,
            interp,
            keywords,
            memo: memoize.then(ShardedMemo::new),
            metrics: Metrics::new(),
            gate: BudgetGate::new(ProbeBudget::default()),
            retry: RetryPolicy::default(),
            chaos: None,
            cache: None,
            pa_stats: None,
        }
    }

    /// Builds an engine for probing thread `worker`. Worker engines under
    /// chaos draw from seeds derived per worker (never the base seed, which
    /// belongs to the oracle's own engine), so each worker's fault stream is
    /// deterministic given the pool size — though which *probe* a fault
    /// lands on still depends on job assignment.
    pub(crate) fn make_engine(&self, worker: u64) -> ProbeEngine<'a> {
        match self.chaos {
            None => ProbeEngine::Plain(Executor::new(self.db)),
            Some(config) => {
                let seed =
                    config.seed ^ (worker + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                ProbeEngine::Chaos(ChaosExecutor::new(self.db, FaultConfig {
                    seed,
                    ..config
                }))
            }
        }
    }

    /// The memoized verdict of a node, if any (a pure read; no metrics).
    pub(crate) fn verdict_if_known(&self, node: NodeId) -> Option<bool> {
        self.memo.as_ref().and_then(|m| m.get(node))
    }

    /// Binding label of every jnts vertex for the subtree cache: the table id
    /// in the high 32 bits and, for bound copies, the session-interned
    /// keyword id + 1 in the low bits (0 = free copy). Copy numbers are
    /// deliberately absent, so structurally identical subtrees of different
    /// networks share cache entries.
    fn binding_labels(&self, jnts: &Jnts, cache: &EvalCache) -> Vec<u64> {
        jnts.nodes()
            .iter()
            .map(|&ts| {
                let base = (ts.table as u64) << 32;
                match self.interp.keyword_for(ts) {
                    None => base,
                    Some(k) => base | (cache.intern(&self.keywords[k]) + 1),
                }
            })
            .collect()
    }

    /// The exact rows the uncached probe path would keep for a bound copy of
    /// `table`: index posting list (when the session has one) filtered by the
    /// containment predicate, in ascending row order. Computed oracle-side —
    /// never through a (possibly chaos-wrapped) engine — so a cached
    /// selection can never be poisoned by a fault.
    fn compute_selection(&self, table: TableId, kw: &str) -> Vec<RowId> {
        let pred = Predicate::any_text_contains(kw.to_owned()).compile();
        let t = self.db.table(table);
        let schema = t.schema();
        match self.index {
            Some(idx) => {
                let rows = idx.rows_containing(table, kw);
                if matches!(rows, std::borrow::Cow::Owned(_)) {
                    self.metrics.delta_postings_merged.incr();
                }
                rows.iter().copied().filter(|&rid| pred.eval(schema, t.row(rid))).collect()
            }
            None => (0..t.len() as RowId)
                .filter(|&rid| !t.is_deleted(rid) && pred.eval(schema, t.row(rid)))
                .collect(),
        }
    }

    /// The shared selection for one bound copy: cache hit, or computed and
    /// published. Counts `selection_cache_hits` / `cache_bytes`.
    fn shared_selection(&self, cache: &EvalCache, table: TableId, kw: &str) -> Arc<Vec<RowId>> {
        let pin = self.db.epoch();
        let kid = cache.intern(kw);
        let indexed = self.index.is_some();
        match cache.selection(pin, table, kid, indexed) {
            Some(sel) => {
                self.metrics.selection_cache_hits.incr();
                sel
            }
            None => {
                let (sel, added) = cache.insert_selection(
                    pin,
                    table,
                    kid,
                    indexed,
                    self.compute_selection(table, kw),
                );
                self.metrics.cache_bytes.add(added);
                sel
            }
        }
    }

    /// The sorted distinct join values a shared selection holds in `col`:
    /// cache hit, or extracted once from the selection's rows and published.
    /// Attached to plans as [`PlanNode::col_postings`], letting the executor
    /// answer untouched-selection membership, parent-side semi-joins and
    /// whole single-node probes without re-reading rows. Counts `cache_bytes`
    /// only — it is derived state of an already-counted selection hit.
    fn shared_selection_postings(
        &self,
        cache: &EvalCache,
        table: TableId,
        kw: &str,
        col: ColId,
        sel: &Arc<Vec<RowId>>,
    ) -> Arc<ValuePostings> {
        let pin = self.db.epoch();
        let kid = cache.intern(kw);
        let indexed = self.index.is_some();
        if let Some(postings) = cache.selection_postings(pin, table, kid, indexed, col) {
            return postings;
        }
        let t = self.db.table(table);
        let postings = ValuePostings::build(
            sel.iter().filter_map(|&rid| t.row(rid)[col].as_int().map(|v| (v, rid))).collect(),
        );
        let (postings, added) =
            cache.insert_selection_postings(pin, table, kid, indexed, col, postings);
        self.metrics.cache_bytes.add(added);
        postings
    }

    /// Answers a probe Dead without touching the engine when any cached cut
    /// value-set of the network is empty: the component on the far side of
    /// that cut is unsatisfiable (or joins on an all-NULL column), so no
    /// assignment of the whole network can exist either way. Counted like an
    /// inference (`subtree_cache_dead_shortcuts`), never as a probe; the
    /// verdict is ground truth, so it also feeds the memo.
    pub(crate) fn dead_shortcut(&self, node: NodeId, jnts: &Jnts) -> bool {
        let Some(cache) = &self.cache else { return false };
        if jnts.join_count() == 0 {
            return false;
        }
        let labels = self.binding_labels(jnts, cache);
        let vid = |i: usize| labels[i];
        for r in subtree_refs(jnts, self.db, &vid) {
            if cache.subtree(self.db.epoch(), &r.key).is_some_and(|set| set.is_empty()) {
                self.metrics.subtree_cache_dead_shortcuts.incr();
                if let Some(memo) = &self.memo {
                    memo.insert(node, false);
                }
                return true;
            }
        }
        false
    }

    /// Answers a probe without touching the engine when the evaluation cache
    /// already knows the outcome — first from a completed whole-network
    /// verdict under the network's canonical binding key
    /// ([`crate::evalcache::network_key`]; `verdict_cache_hits`), then from
    /// an empty cached cut value-set ([`ProbeCore::dead_shortcut`]). The
    /// verdict layer answers *alive* repeats too, which is what makes warm
    /// shared-cache sessions probe-free on repeated workloads. Both answers
    /// are ground truth, so they also feed the memo.
    pub(crate) fn shortcut(&self, node: NodeId, jnts: &Jnts) -> Option<bool> {
        if let Some(cache) = &self.cache {
            let labels = self.binding_labels(jnts, cache);
            if let Some(alive) =
                cache.verdict(self.db.epoch(), &network_key(jnts, &|i| labels[i]))
            {
                self.metrics.verdict_cache_hits.incr();
                if let Some(memo) = &self.memo {
                    memo.insert(node, alive);
                }
                return Some(alive);
            }
        }
        if self.dead_shortcut(node, jnts) {
            return Some(false);
        }
        None
    }

    /// Builds a cache-aware probe plan rooted (like the executor's reduction)
    /// at vertex 0:
    ///
    /// * every branch whose cut-subtree value-set is already cached is
    ///   pruned from the plan, replaced by a sorted-membership constraint on
    ///   its ex-parent (`subtree_cache_hits`);
    /// * every bound copy that stays gets the shared keyword selection;
    /// * every kept non-root vertex whose value-set is *not* cached is
    ///   scheduled for harvesting, so this probe's reduction populates it.
    fn build_plan_cached(
        &self,
        jnts: &Jnts,
        cache: &EvalCache,
    ) -> Result<CachedPlan, EngineError> {
        let labels = self.binding_labels(jnts, cache);
        let vid = |i: usize| labels[i];
        let refs = subtree_refs(jnts, self.db, &vid);
        let n = jnts.node_count();
        // Prune cached branches. `refs` is in DFS pre-order from vertex 0, so
        // a vertex's parent is always decided first; a branch inside an
        // already-pruned branch is skipped without counting a hit.
        let mut keep = vec![false; n];
        keep[0] = true;
        let mut cons_by_vertex: Vec<Vec<(ColId, Arc<Vec<i64>>)>> = vec![Vec::new(); n];
        for r in &refs {
            if !keep[r.parent] {
                continue;
            }
            if let Some(set) = cache.subtree(self.db.epoch(), &r.key) {
                self.metrics.subtree_cache_hits.incr();
                cons_by_vertex[r.parent].push((r.parent_col, set));
            } else {
                keep[r.vertex] = true;
            }
        }
        // Each vertex's join columns in the *full* network — kept edges and
        // the constraint columns of pruned branches alike — so bound nodes
        // can carry the pre-extracted selection values for every membership
        // question the reduction might ask about them.
        let mut join_cols: Vec<Vec<ColId>> = vec![Vec::new(); n];
        for e in jnts.edges() {
            let fk = self.db.foreign_key(e.fk);
            let (a_col, b_col) =
                if e.a_is_from { (fk.from_col, fk.to_col) } else { (fk.to_col, fk.from_col) };
            for (v, col) in [(e.a as usize, a_col), (e.b as usize, b_col)] {
                if !join_cols[v].contains(&col) {
                    join_cols[v].push(col);
                }
            }
        }
        let mut plan_idx = vec![usize::MAX; n];
        let mut nodes = Vec::new();
        for (i, &ts) in jnts.nodes().iter().enumerate() {
            if !keep[i] {
                continue;
            }
            plan_idx[i] = nodes.len();
            let table_name = &self.db.table(ts.table).schema().name;
            let alias = format!("{}{}", table_name, ts.copy);
            let mut node = match self.interp.keyword_for(ts) {
                None => PlanNode::free(ts.table).with_alias(alias),
                Some(kw_idx) => {
                    let kw = &self.keywords[kw_idx];
                    let sel = self.shared_selection(cache, ts.table, kw);
                    let mut node = PlanNode::new(ts.table, Predicate::any_text_contains(kw.clone()))
                        .with_alias(alias)
                        .with_selection(Arc::clone(&sel));
                    for &col in &join_cols[i] {
                        node = node.with_col_postings(
                            col,
                            self.shared_selection_postings(cache, ts.table, kw, col, &sel),
                        );
                    }
                    node
                }
            };
            for (col, set) in cons_by_vertex[i].drain(..) {
                node = node.with_constraint(col, set);
            }
            nodes.push(node);
        }
        let mut edges = Vec::new();
        for e in jnts.edges() {
            let (a, b) = (plan_idx[e.a as usize], plan_idx[e.b as usize]);
            if a == usize::MAX || b == usize::MAX {
                continue;
            }
            let fk = self.db.foreign_key(e.fk);
            let (a_col, b_col) =
                if e.a_is_from { (fk.from_col, fk.to_col) } else { (fk.to_col, fk.from_col) };
            edges.push(PlanEdge { a, a_col, b, b_col });
        }
        let harvest = refs
            .into_iter()
            .filter(|r| keep[r.vertex])
            .map(|r| (plan_idx[r.vertex], r.key, r.tables_mask))
            .collect();
        Ok(CachedPlan { plan: JoinTreePlan::new(nodes, edges)?, harvest })
    }

    /// The full (unpruned) plan used for report samples: identical to
    /// [`build_plan`], except bound copies reuse the shared keyword
    /// selections when the session has an [`EvalCache`]. Samples enumerate
    /// one row per copy of the network, so subtree pruning never applies.
    fn build_sample_plan(&self, jnts: &Jnts) -> Result<JoinTreePlan, EngineError> {
        let Some(cache) = &self.cache else {
            return build_plan(jnts, self.interp, self.db, self.index, self.keywords);
        };
        let mut edges = Vec::with_capacity(jnts.join_count());
        let mut join_cols: Vec<Vec<ColId>> = vec![Vec::new(); jnts.node_count()];
        for e in jnts.edges() {
            let fk = self.db.foreign_key(e.fk);
            let (a_col, b_col) =
                if e.a_is_from { (fk.from_col, fk.to_col) } else { (fk.to_col, fk.from_col) };
            edges.push(PlanEdge { a: e.a as usize, a_col, b: e.b as usize, b_col });
            for (v, col) in [(e.a as usize, a_col), (e.b as usize, b_col)] {
                if !join_cols[v].contains(&col) {
                    join_cols[v].push(col);
                }
            }
        }
        let mut nodes = Vec::with_capacity(jnts.node_count());
        for (i, &ts) in jnts.nodes().iter().enumerate() {
            let table_name = &self.db.table(ts.table).schema().name;
            let alias = format!("{}{}", table_name, ts.copy);
            let node = match self.interp.keyword_for(ts) {
                None => PlanNode::free(ts.table).with_alias(alias),
                Some(kw_idx) => {
                    let kw = &self.keywords[kw_idx];
                    let sel = self.shared_selection(cache, ts.table, kw);
                    let mut node = PlanNode::new(ts.table, Predicate::any_text_contains(kw.clone()))
                        .with_alias(alias)
                        .with_selection(Arc::clone(&sel));
                    for &col in &join_cols[i] {
                        node = node.with_col_postings(
                            col,
                            self.shared_selection_postings(cache, ts.table, kw, col, &sel),
                        );
                    }
                    node
                }
            };
            nodes.push(node);
        }
        JoinTreePlan::new(nodes, edges)
    }

    /// Reserves one budget slot, translating a refusal into the sticky
    /// [`Exhausted`] cause and counting the (single) trip event.
    pub(crate) fn try_reserve(&self) -> Result<(), Exhausted> {
        match self.gate.try_reserve(self.metrics.tuples_scanned.get()) {
            Ok(()) => Ok(()),
            Err(trip) => {
                if trip.newly {
                    self.metrics.budget_exhausted.incr();
                }
                Err(trip.why)
            }
        }
    }

    /// Runs one engine operation under the retry policy: transient failures
    /// back off and retry (re-checking the deadline), anything else abandons.
    fn execute_with_retry<T>(
        &self,
        engine: &mut ProbeEngine<'a>,
        mut op: impl FnMut(&mut ProbeEngine<'a>) -> Result<T, EngineError>,
    ) -> Result<T, ProbeFail> {
        let mut attempt = 0u32;
        loop {
            match op(engine) {
                Ok(v) => return Ok(v),
                Err(e) => {
                    if e.is_fault() {
                        self.metrics.faults_injected.incr();
                    }
                    if e.is_transient() && attempt < self.retry.max_retries {
                        let backoff = self.retry.backoff(attempt);
                        if !backoff.is_zero() {
                            std::thread::sleep(backoff);
                        }
                        self.metrics.retries.incr();
                        attempt += 1;
                        // The deadline may pass while backing off.
                        if self.gate.deadline_passed() {
                            if self.gate.trip(Exhausted::Deadline).newly {
                                self.metrics.budget_exhausted.incr();
                            }
                            return Err(ProbeFail::Exhausted(Exhausted::Deadline));
                        }
                        continue;
                    }
                    self.metrics.probes_abandoned.incr();
                    return Err(ProbeFail::Node(e));
                }
            }
        }
    }

    /// Executes one probe whose budget slot is already reserved: plan,
    /// emptiness check under retry, bookkeeping, memo insert. A failed
    /// execution returns the slot — failed attempts never count against the
    /// budget. This is the worker-side half of a probe; reservation (and the
    /// memo pre-check) belongs to the caller so a dispatcher can keep both
    /// in deterministic order.
    pub(crate) fn execute_reserved(
        &self,
        engine: &mut ProbeEngine<'a>,
        node: NodeId,
        jnts: &Jnts,
    ) -> Probe {
        let cached = match &self.cache {
            None => None,
            Some(cache) => match self.build_plan_cached(jnts, cache) {
                Ok(c) => Some(c),
                Err(e) => {
                    self.gate.release();
                    self.metrics.probes_abandoned.incr();
                    return Probe::NodeFailed(e);
                }
            },
        };
        let plain = match &cached {
            Some(_) => None,
            None => match build_plan(jnts, self.interp, self.db, self.index, self.keywords) {
                Ok(p) => Some(p),
                Err(e) => {
                    self.gate.release();
                    self.metrics.probes_abandoned.incr();
                    return Probe::NodeFailed(e);
                }
            },
        };
        // The uncached planner merges delta postings inside `rows_containing`
        // (the cached path counts inside `compute_selection`): one merge per
        // bound copy whose term is currently dirtied.
        if plain.is_some() {
            if let Some(idx) = self.index {
                for &ts in jnts.nodes() {
                    if let Some(k) = self.interp.keyword_for(ts) {
                        if idx.has_delta(ts.table, &self.keywords[k]) {
                            self.metrics.delta_postings_merged.incr();
                        }
                    }
                }
            }
        }
        let harvest_idx: Vec<usize> =
            cached.as_ref().map_or_else(Vec::new, |c| c.harvest.iter().map(|h| h.0).collect());
        let rows_before = engine.stats().rows_examined;
        let start = Instant::now();
        let outcome = self.execute_with_retry(engine, |eng| match (&cached, &plain) {
            (Some(c), _) => eng.exists_harvesting(&c.plan, &harvest_idx),
            (None, Some(p)) => eng.exists(p).map(|alive| (alive, Vec::new())),
            (None, None) => unreachable!("one of the plans is always built"),
        });
        match outcome {
            Ok((alive, harvested)) => {
                self.metrics.probes_executed.incr();
                self.metrics.probe_time.add(start.elapsed());
                self.metrics
                    .tuples_scanned
                    .add(engine.stats().rows_examined - rows_before);
                if let Some(memo) = &self.memo {
                    memo.insert(node, alive);
                }
                // Executed verdicts (and only those — memo hits, inferences
                // and dead shortcuts are derived facts) feed the online p_a
                // estimator.
                if let Some(stats) = &self.pa_stats {
                    stats.record(jnts.node_count(), alive);
                }
                // Only a *completed* reduction reaches this point (a chaos
                // fault aborts before execution), so every harvested
                // value-set — and the whole-network verdict itself — is a
                // sound cache entry.
                if let (Some(c), Some(cache)) = (cached, &self.cache) {
                    let pin = self.db.epoch();
                    for ((_, key, mask), values) in c.harvest.into_iter().zip(harvested) {
                        if let Some(values) = values {
                            self.metrics
                                .cache_bytes
                                .add(cache.insert_subtree(pin, key, mask, values));
                        }
                    }
                    let labels = self.binding_labels(jnts, cache);
                    let key = network_key(jnts, &|i| labels[i]);
                    self.metrics
                        .cache_bytes
                        .add(cache.insert_verdict(pin, key, network_mask(jnts), alive));
                }
                Probe::Verdict(alive)
            }
            Err(ProbeFail::Node(e)) => {
                self.gate.release();
                Probe::NodeFailed(e)
            }
            Err(ProbeFail::Exhausted(why)) => {
                self.gate.release();
                Probe::Exhausted(why)
            }
        }
    }

    /// The canonical cross-session identity of a probe: the same
    /// [`crate::evalcache::network_key`] the layer-3 verdict cache uses, but
    /// with keyword ids drawn from a caller-supplied interner (the
    /// [`crate::batch::WaveExchange`]'s own) instead of the session cache's.
    /// Two sessions on the same `(db_id, epoch)` produce equal keys exactly
    /// when their probes are the same ground-truth query, whether or not
    /// either session has an evaluation cache attached.
    pub(crate) fn exchange_key(
        &self,
        jnts: &Jnts,
        intern: &mut dyn FnMut(&str) -> u64,
    ) -> Vec<u8> {
        let labels: Vec<u64> = jnts
            .nodes()
            .iter()
            .map(|&ts| {
                let base = (ts.table as u64) << 32;
                match self.interp.keyword_for(ts) {
                    None => base,
                    Some(k) => base | (intern(&self.keywords[k]) + 1),
                }
            })
            .collect();
        network_key(jnts, &|i| labels[i])
    }

    /// Books a verdict another session executed for this session's probe in
    /// a merged wave. Mirrors the non-execution bookkeeping of
    /// [`ProbeCore::execute_reserved`]'s success path — memo insert, online
    /// `p_a`, verdict-cache publish — but counts `coalesced_probes` instead
    /// of `probes_executed` (the accounting twin of a memo hit), keeping the
    /// `probes_executed == ExecStats::queries` invariant intact. The budget
    /// slot the dispatcher reserved for this probe stays consumed, exactly
    /// as if the probe had executed, so budget-cut partials match unbatched
    /// runs.
    pub(crate) fn record_coalesced(&self, node: NodeId, jnts: &Jnts, alive: bool) {
        self.metrics.coalesced_probes.incr();
        if let Some(memo) = &self.memo {
            memo.insert(node, alive);
        }
        if let Some(stats) = &self.pa_stats {
            stats.record(jnts.node_count(), alive);
        }
        if let Some(cache) = &self.cache {
            let labels = self.binding_labels(jnts, cache);
            let key = network_key(jnts, &|i| labels[i]);
            self.metrics
                .cache_bytes
                .add(cache.insert_verdict(self.db.epoch(), key, network_mask(jnts), alive));
        }
    }
}

/// Answers aliveness queries for lattice nodes, counting every execution.
///
/// The thin sequential view over a `ProbeCore`: one shared-state core plus
/// one private engine. [`crate::parallel`] borrows the core and fans probes
/// over worker-owned engines; this type's public API is unchanged from the
/// pre-split oracle and its sequential behavior is byte-identical.
pub struct AlivenessOracle<'a> {
    core: ProbeCore<'a>,
    engine: ProbeEngine<'a>,
}

impl<'a> AlivenessOracle<'a> {
    /// Creates an oracle for one interpretation. `memoize` enables the
    /// cross-call result cache (an extension; the paper re-executes). The
    /// oracle starts with an unlimited [`ProbeBudget`], the default
    /// [`RetryPolicy`] and no fault injection — the happy-path pipeline.
    pub fn new(
        db: &'a Database,
        index: Option<&'a InvertedIndex>,
        interp: &'a Interpretation,
        keywords: &'a [String],
        memoize: bool,
    ) -> Self {
        AlivenessOracle {
            core: ProbeCore::new(db, index, interp, keywords, memoize),
            engine: ProbeEngine::Plain(Executor::new(db)),
        }
    }

    /// Routes every execution through a deterministic fault injector
    /// (keeping any statistics the current engine accumulated). Parallel
    /// workers derive their own per-worker seeds from this schedule.
    pub fn with_chaos(mut self, config: FaultConfig) -> Self {
        self.core.chaos = Some(config);
        self.engine = match self.engine {
            ProbeEngine::Plain(e) => ProbeEngine::Chaos(ChaosExecutor::wrap(e, config)),
            ProbeEngine::Chaos(c) => {
                ProbeEngine::Chaos(ChaosExecutor::wrap(c.into_inner(), config))
            }
        };
        self
    }

    /// Bounds the probing work of this oracle (a fresh [`BudgetGate`]
    /// window).
    pub fn with_budget(mut self, budget: ProbeBudget) -> Self {
        self.core.gate = BudgetGate::new(budget);
        self
    }

    /// Sets the transient-failure retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.core.retry = retry;
        self
    }

    /// Attaches a session-scoped [`EvalCache`] shared with other oracles of
    /// the same debug session (and all parallel workers). Probes then reuse
    /// cached keyword selections, prune subtrees whose semi-join value-sets
    /// are cached, answer probes Dead from empty cached cuts without
    /// executing, and harvest their own reductions into the cache. Verdicts
    /// and reports are unchanged; only the work to reach them shrinks.
    pub fn with_eval_cache(mut self, cache: Arc<EvalCache>) -> Self {
        self.core.cache = Some(cache);
        self
    }

    /// Attaches an [`crate::estimate::OnlinePa`] observer: every executed
    /// probe reports its `(level, verdict)` so later queries — in this
    /// session or, when the estimator is shared through
    /// [`crate::debugger::SharedParts`], any session of the process — start
    /// SBH from observed alive rates instead of the fixed paper prior.
    /// Recording is lock-free and does not change verdicts or reports.
    pub fn with_pa_stats(mut self, stats: Arc<crate::estimate::OnlinePa>) -> Self {
        self.core.pa_stats = Some(stats);
        self
    }

    /// The memoized verdict of a node, without probing: `Some(true)` for
    /// cached alive, `Some(false)` for cached dead, `None` when the node was
    /// never probed (or memoization is off). Lets traversals and the session
    /// distinguish "known dead" from "unknown" without re-deriving memo
    /// state; a pure read, it records no metrics.
    pub fn verdict_if_known(&self, node: NodeId) -> Option<bool> {
        self.core.verdict_if_known(node)
    }

    /// Why probing stopped, if a budget cap tripped.
    pub fn exhausted(&self) -> Option<Exhausted> {
        self.core.gate.tripped()
    }

    /// The active probe budget.
    pub fn budget(&self) -> ProbeBudget {
        self.core.gate.budget()
    }

    /// Fault-injection counters, when chaos is enabled (this oracle's own
    /// engine only; parallel workers keep separate schedules, observable
    /// through the shared `faults_injected` metric).
    pub fn fault_stats(&self) -> Option<&FaultStats> {
        match &self.engine {
            ProbeEngine::Plain(_) => None,
            ProbeEngine::Chaos(c) => Some(c.fault_stats()),
        }
    }

    /// Probes a node's aliveness without hard-failing: the degradation-aware
    /// form of [`AlivenessOracle::is_alive`]. Memo hits are always answered
    /// (they are free); everything else goes through the budget gate and the
    /// retry policy.
    pub fn probe(&mut self, node: NodeId, jnts: &Jnts) -> Probe {
        if let Some(alive) = self.core.verdict_if_known(node) {
            self.core.metrics.memo_hits.incr();
            return Probe::Verdict(alive);
        }
        if let Some(alive) = self.core.shortcut(node, jnts) {
            return Probe::Verdict(alive);
        }
        if let Err(why) = self.core.try_reserve() {
            return Probe::Exhausted(why);
        }
        self.core.execute_reserved(&mut self.engine, node, jnts)
    }

    /// Whether the node's query returns at least one tuple. Hard-errors on
    /// probe failure or budget exhaustion ([`KwError::BudgetExhausted`]);
    /// degradation-aware callers use [`AlivenessOracle::probe`] instead.
    pub fn is_alive(&mut self, node: NodeId, jnts: &Jnts) -> Result<bool, KwError> {
        match self.probe(node, jnts) {
            Probe::Verdict(alive) => Ok(alive),
            Probe::NodeFailed(e) => Err(e.into()),
            Probe::Exhausted(why) => Err(KwError::BudgetExhausted(why)),
        }
    }

    /// Fetches up to `limit` sample result tuples of a node (for reports).
    /// Counts as one more executed query, subject to the same budget and
    /// retry policy as probes.
    pub fn sample(
        &mut self,
        jnts: &Jnts,
        limit: usize,
    ) -> Result<Vec<Vec<relengine::RowId>>, KwError> {
        if let Err(why) = self.core.try_reserve() {
            return Err(KwError::BudgetExhausted(why));
        }
        let core = &self.core;
        let plan = match core.build_sample_plan(jnts) {
            Ok(p) => p,
            Err(e) => {
                core.gate.release();
                return Err(e.into());
            }
        };
        let rows_before = self.engine.stats().rows_examined;
        let start = Instant::now();
        match core.execute_with_retry(&mut self.engine, |eng| eng.execute(&plan, limit)) {
            Ok(tuples) => {
                core.metrics.probes_executed.incr();
                core.metrics.probe_time.add(start.elapsed());
                core.metrics
                    .tuples_scanned
                    .add(self.engine.stats().rows_examined - rows_before);
                Ok(tuples)
            }
            Err(ProbeFail::Node(e)) => {
                core.gate.release();
                Err(e.into())
            }
            Err(ProbeFail::Exhausted(why)) => {
                core.gate.release();
                Err(KwError::BudgetExhausted(why))
            }
        }
    }

    /// The keyword bound to a relation copy under this interpretation, if any.
    pub fn keyword_of(&self, ts: crate::jnts::TupleSet) -> Option<&str> {
        self.core.interp.keyword_for(ts).map(|i| self.core.keywords[i].as_str())
    }

    /// The SQL text of a node under this interpretation.
    pub fn sql(&self, jnts: &Jnts) -> Result<String, KwError> {
        let core = &self.core;
        let plan = build_plan(jnts, core.interp, core.db, core.index, core.keywords)?;
        Ok(relengine::render_sql(&plan, core.db))
    }

    /// Engine statistics: queries executed, rows examined, time. After a
    /// parallel traversal, worker-engine statistics have been absorbed here.
    pub fn stats(&self) -> &ExecStats {
        self.engine.stats()
    }

    /// Number of executed queries so far.
    pub fn queries(&self) -> u64 {
        self.engine.stats().queries
    }

    /// Memo hits (0 unless memoization is on).
    pub fn memo_hits(&self) -> u64 {
        self.core.metrics.memo_hits.get()
    }

    /// The probe-level instrumentation block. Traversal strategies record
    /// their R1/R2 inferences and reuse hits here; callers snapshot it
    /// (before/after) to attribute counts to one traversal. Shared by every
    /// parallel worker, so a snapshot is already the merged per-worker view.
    pub fn metrics(&self) -> &Metrics {
        &self.core.metrics
    }

    /// Resets execution statistics, metrics and the budget clock/trip state
    /// (not the memo, and not the fault schedule).
    pub fn reset_stats(&mut self) {
        self.engine.reset_stats();
        self.core.metrics.reset();
        self.core.gate.reset();
    }

    /// The database under test.
    pub fn database(&self) -> &'a Database {
        self.core.db
    }

    /// The shared probe backend, for the parallel scheduler.
    pub(crate) fn core(&self) -> &ProbeCore<'a> {
        &self.core
    }

    /// Folds a worker engine's statistics into this oracle's engine, so
    /// `stats()`/`queries()` cover the whole pool after a parallel run.
    pub(crate) fn absorb_stats(&mut self, stats: &ExecStats) {
        self.engine.absorb_stats(stats);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::jnts::TupleSet;
    use crate::schema_graph::Incidence;
    use relengine::{DataType, DatabaseBuilder, Value};
    use std::time::Duration;

    /// ptype(candle,oil) <- item -> color(red,saffron); items: red candle,
    /// saffron oil.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
        db.insert_values("ptype", vec![Value::Int(2), Value::text("oil")]).unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values("color", vec![Value::Int(2), Value::text("saffron")]).unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(1), Value::text("glowy"), Value::Int(1), Value::Int(1)],
        )
        .unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(2), Value::text("scented"), Value::Int(2), Value::Int(2)],
        )
        .unwrap();
        db.finalize();
        db
    }

    fn inc(fk: usize, other: usize, local_is_from: bool) -> Incidence {
        Incidence { fk, other, local_is_from }
    }

    /// P1 - I0 - C1 for the given two keywords (ptype kw first).
    fn mtn_jnts() -> Jnts {
        Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, false), 0)
            .extend(1, inc(1, 2, true), 1)
    }

    #[test]
    fn alive_and_dead_networks() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let interp = &m.interpretations[0];
        let mut oracle = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false);
        assert!(oracle.is_alive(0, &mtn_jnts()).unwrap()); // red candle exists

        let q2 = KeywordQuery::parse("candle saffron").unwrap();
        let m2 = map_keywords(&q2, &idx);
        let interp2 = &m2.interpretations[0];
        let mut oracle2 = AlivenessOracle::new(&db, Some(&idx), interp2, &m2.keywords, false);
        assert!(!oracle2.is_alive(0, &mtn_jnts()).unwrap()); // no saffron candle
        assert_eq!(oracle2.queries(), 1);
    }

    #[test]
    fn memoization_avoids_reexecution() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, true);
        let j = mtn_jnts();
        assert!(oracle.is_alive(7, &j).unwrap());
        assert!(oracle.is_alive(7, &j).unwrap());
        assert_eq!(oracle.queries(), 1);
        assert_eq!(oracle.memo_hits(), 1);
    }

    #[test]
    fn without_memo_reexecutes() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let j = mtn_jnts();
        oracle.is_alive(7, &j).unwrap();
        oracle.is_alive(7, &j).unwrap();
        assert_eq!(oracle.queries(), 2);
        assert_eq!(oracle.memo_hits(), 0);
    }

    #[test]
    fn metrics_track_probes_and_memo() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, true);
        let j = mtn_jnts();
        oracle.is_alive(7, &j).unwrap();
        oracle.is_alive(7, &j).unwrap();
        oracle.sample(&j, 5).unwrap();
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.probes_executed, oracle.queries(), "probe counter mirrors the engine");
        assert_eq!(snap.probes_executed, 2, "one is_alive miss + one sample");
        assert_eq!(snap.memo_hits, 1);
        assert!(snap.tuples_scanned > 0, "probes examine rows");
        assert_eq!(snap.r1_inferences + snap.r2_inferences + snap.reuse_hits, 0);
        oracle.reset_stats();
        assert_eq!(oracle.metrics().snapshot(), crate::metrics::ProbeCounters::default());
        assert_eq!(oracle.queries(), 0);
    }

    #[test]
    fn plan_without_index_scans() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle = AlivenessOracle::new(&db, None, &m.interpretations[0], &m.keywords, false);
        assert!(oracle.is_alive(0, &mtn_jnts()).unwrap());
    }

    #[test]
    fn sql_rendering_shows_binding() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let sql = oracle.sql(&mtn_jnts()).unwrap();
        assert!(sql.contains("ptype AS ptype1"), "{sql}");
        assert!(sql.contains("item AS item0"), "{sql}");
        assert!(sql.contains("LIKE '%candle%'"), "{sql}");
        assert!(sql.contains("LIKE '%red%'"), "{sql}");
        assert!(sql.contains("item0.ptype_id = ptype1.id") || sql.contains("ptype1.id = item0.ptype_id"), "{sql}");
    }

    #[test]
    fn sample_returns_tuples() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let tuples = oracle.sample(&mtn_jnts(), 5).unwrap();
        assert_eq!(tuples.len(), 1);
        assert_eq!(tuples[0].len(), 3);
    }

    #[test]
    fn verdict_if_known_reads_memo_without_probing() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, true);
        assert_eq!(oracle.verdict_if_known(7), None, "never probed");
        oracle.is_alive(7, &mtn_jnts()).unwrap();
        assert_eq!(oracle.verdict_if_known(7), Some(true), "cached alive");
        assert_eq!(oracle.verdict_if_known(8), None, "other node untouched");
        assert_eq!(oracle.memo_hits(), 0, "accessor records nothing");
        assert_eq!(oracle.queries(), 1);

        // Without memoization there is never a known verdict.
        let mut plain =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        plain.is_alive(7, &mtn_jnts()).unwrap();
        assert_eq!(plain.verdict_if_known(7), None);
    }

    #[test]
    fn zero_probe_budget_refuses_everything() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_budget(ProbeBudget::probes(0));
        let j = mtn_jnts();
        assert_eq!(oracle.probe(0, &j), Probe::Exhausted(Exhausted::Probes));
        assert_eq!(oracle.probe(1, &j), Probe::Exhausted(Exhausted::Probes), "sticky");
        assert!(matches!(
            oracle.is_alive(0, &j),
            Err(KwError::BudgetExhausted(Exhausted::Probes))
        ));
        assert!(matches!(
            oracle.sample(&j, 3),
            Err(KwError::BudgetExhausted(Exhausted::Probes))
        ));
        assert_eq!(oracle.queries(), 0, "nothing executed");
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.budget_exhausted, 1, "tripped exactly once");
        assert_eq!(oracle.exhausted(), Some(Exhausted::Probes));
    }

    #[test]
    fn probe_budget_allows_exactly_n_probes() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_budget(ProbeBudget::probes(2));
        let j = mtn_jnts();
        assert!(matches!(oracle.probe(0, &j), Probe::Verdict(_)));
        assert!(matches!(oracle.probe(1, &j), Probe::Verdict(_)));
        assert!(matches!(oracle.probe(2, &j), Probe::Exhausted(Exhausted::Probes)));
        assert_eq!(oracle.queries(), 2);
    }

    #[test]
    fn memo_hits_are_free_under_exhausted_budget() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, true)
                .with_budget(ProbeBudget::probes(1));
        let j = mtn_jnts();
        assert!(matches!(oracle.probe(7, &j), Probe::Verdict(true)));
        assert!(matches!(oracle.probe(8, &j), Probe::Exhausted(_)));
        // The memoized node still answers after exhaustion.
        assert!(matches!(oracle.probe(7, &j), Probe::Verdict(true)));
        assert_eq!(oracle.memo_hits(), 1);
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_chaos(FaultConfig { fail_first_transient: 2, ..FaultConfig::quiet(3) })
                .with_retry(RetryPolicy::immediate(3));
        let j = mtn_jnts();
        assert!(oracle.is_alive(0, &j).unwrap(), "retries get through the warm-up faults");
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.faults_injected, 2);
        assert_eq!(snap.probes_abandoned, 0);
        assert_eq!(snap.probes_executed, oracle.queries(), "faulted attempts never count");
        assert_eq!(oracle.queries(), 1);
    }

    #[test]
    fn exhausted_retries_abandon_the_node() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_chaos(FaultConfig { fail_first_transient: 10, ..FaultConfig::quiet(3) })
                .with_retry(RetryPolicy::immediate(2));
        let j = mtn_jnts();
        match oracle.probe(0, &j) {
            Probe::NodeFailed(e) => assert!(e.is_transient()),
            other => panic!("expected NodeFailed, got {other:?}"),
        }
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.retries, 2);
        assert_eq!(snap.faults_injected, 3, "initial attempt + two retries all faulted");
        assert_eq!(snap.probes_abandoned, 1);
        assert_eq!(oracle.queries(), 0);
        // The next probe draws fresh (but still failing) attempts.
        assert!(matches!(oracle.probe(1, &j), Probe::NodeFailed(_)));
    }

    #[test]
    fn permanent_faults_never_retry() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_chaos(FaultConfig {
                    permanent_per_mille: 1000,
                    ..FaultConfig::quiet(5)
                })
                .with_retry(RetryPolicy::immediate(5));
        match oracle.probe(0, &mtn_jnts()) {
            Probe::NodeFailed(e) => assert!(!e.is_transient() && e.is_fault()),
            other => panic!("expected NodeFailed, got {other:?}"),
        }
        let snap = oracle.metrics().snapshot();
        assert_eq!(snap.retries, 0, "permanent failures are not retried");
        assert_eq!(snap.probes_abandoned, 1);
    }

    #[test]
    fn deadline_trips_and_sticks() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_budget(ProbeBudget::default().with_deadline(Duration::ZERO));
        assert!(matches!(
            oracle.probe(0, &mtn_jnts()),
            Probe::Exhausted(Exhausted::Deadline)
        ));
        assert_eq!(oracle.exhausted(), Some(Exhausted::Deadline));
        // reset_stats clears the trip so a new window can start.
        oracle.reset_stats();
        assert_eq!(oracle.exhausted(), None);
    }

    #[test]
    fn tuple_cap_trips_after_scanning() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let mut oracle =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_budget(ProbeBudget::default().with_max_tuples(1));
        let j = mtn_jnts();
        assert!(matches!(oracle.probe(0, &j), Probe::Verdict(_)), "first probe runs");
        assert!(matches!(oracle.probe(1, &j), Probe::Exhausted(Exhausted::Tuples)));
    }

    #[test]
    fn eval_cache_shortcuts_dead_probes_and_reuses_selections() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        // glowy binds item, saffron binds color; the glowy item is red, so
        // the item–color cut dies mid-reduction and proves the cut dead.
        let q = KeywordQuery::parse("glowy saffron").unwrap();
        let m = map_keywords(&q, &idx);
        let interp = &m.interpretations[0];
        let j = Jnts::single(TupleSet::new(0, 0))
            .extend(0, inc(0, 1, false), 1)
            .extend(1, inc(1, 2, true), 1);
        let cache = Arc::new(crate::evalcache::EvalCache::new());
        let mut plain = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false);
        let mut o1 = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false)
            .with_eval_cache(Arc::clone(&cache));
        assert!(!plain.is_alive(0, &j).unwrap(), "no saffron glowy item");
        assert!(!o1.is_alive(0, &j).unwrap(), "cached oracle agrees");
        assert_eq!(o1.queries(), 1, "cold probe executes");
        assert!(cache.subtree_entries() > 0, "the reduction was harvested");
        assert!(cache.selection_entries() > 0, "keyword selections published");
        assert!(cache.bytes() > 0);

        // A fresh oracle sharing the session cache answers Dead for free —
        // the whole network's completed verdict is already cached.
        let mut o2 = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false)
            .with_eval_cache(Arc::clone(&cache));
        assert!(!o2.is_alive(0, &j).unwrap());
        assert_eq!(o2.queries(), 0, "cached verdict answers without executing");
        let snap = o2.metrics().snapshot();
        assert_eq!(snap.verdict_cache_hits, 1);
        assert_eq!(snap.probes_executed, 0);

        // A *larger* network was never probed whole, so no verdict exists for
        // it — but it contains the cached-empty cut, so the dead shortcut
        // still answers without the engine.
        let j3 = j.extend(0, inc(0, 1, false), 2);
        assert!(!o2.is_alive(2, &j3).unwrap());
        let snap = o2.metrics().snapshot();
        assert_eq!(snap.subtree_cache_dead_shortcuts, 1);
        assert_eq!(snap.probes_executed, 0);

        // A different network reusing the saffron binding hits the shared
        // selection instead of re-evaluating the predicate.
        let single = Jnts::single(TupleSet::new(2, 1));
        assert!(o2.is_alive(1, &single).unwrap(), "saffron colors exist");
        assert_eq!(o2.metrics().snapshot().selection_cache_hits, 1);
    }

    #[test]
    fn eval_cache_matches_plain_verdicts_and_samples() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let interp = &m.interpretations[0];
        let j = mtn_jnts();
        let cache = Arc::new(crate::evalcache::EvalCache::new());
        let mut plain = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false);
        let mut warm = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false)
            .with_eval_cache(Arc::clone(&cache));
        // Warm the cache, then compare a second cached oracle to plain.
        assert!(warm.is_alive(0, &j).unwrap());
        let mut o = AlivenessOracle::new(&db, Some(&idx), interp, &m.keywords, false)
            .with_eval_cache(Arc::clone(&cache));
        assert_eq!(plain.is_alive(0, &j).unwrap(), o.is_alive(0, &j).unwrap());
        assert_eq!(o.metrics().snapshot().verdict_cache_hits, 1, "warm repeat skips the engine");
        assert_eq!(plain.sample(&j, 5).unwrap(), o.sample(&j, 5).unwrap(), "same tuples");
        // A larger network sharing the warmed item–color branch has no cached
        // verdict, but its probe prunes the branch from the plan.
        let j2 = j.extend(0, inc(0, 1, false), 2);
        assert_eq!(plain.is_alive(1, &j2).unwrap(), o.is_alive(1, &j2).unwrap());
        assert!(o.metrics().snapshot().subtree_cache_hits > 0, "warm probe pruned subtrees");
        assert_eq!(o.sql(&j).unwrap(), plain.sql(&j).unwrap(), "SQL text is cache-blind");
    }

    #[test]
    fn quiet_chaos_is_transparent() {
        let db = db();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("candle red").unwrap();
        let m = map_keywords(&q, &idx);
        let j = mtn_jnts();
        let mut plain =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false);
        let mut chaotic =
            AlivenessOracle::new(&db, Some(&idx), &m.interpretations[0], &m.keywords, false)
                .with_chaos(FaultConfig::quiet(99));
        assert_eq!(
            plain.is_alive(0, &j).unwrap(),
            chaotic.is_alive(0, &j).unwrap(),
            "a quiet schedule changes nothing"
        );
        assert_eq!(plain.queries(), chaotic.queries());
        assert_eq!(chaotic.fault_stats().unwrap().faults(), 0);
        assert!(plain.fault_stats().is_none());
    }
}
