//! Lattice persistence: save the Phase-0 artifact, skip the rebuild.
//!
//! The offline lattice is the expensive part of setup — minutes at level 7 —
//! and it depends only on the schema graph and `maxJoins`, not on the data.
//! This module serializes a [`Lattice`] to a compact, versioned binary format
//! (hand-rolled little-endian writer; no external dependencies) so a
//! production deployment builds it once and reloads it on every restart.
//!
//! Format (`KWSLAT02`): header (magic, `max_joins`, level count, per-level
//! node counts), then every node in level order — vertex list, edge list,
//! child links ascending (parent links, the postings index and the free-leaf
//! flags are reconstructed by `Lattice::from_parts`, which keeps the file
//! small and version-stable across index changes). Reading validates
//! structure (tree-ness, level consistency, link ranges and order) and fails
//! with a typed error rather than panicking on corrupt input.
//!
//! Version 1 files (`KWSLAT01`, written before the compact-arena substrate of
//! DESIGN.md §9) are rejected with [`LatticeIoError::UnsupportedVersion`] —
//! rebuild and re-save the lattice with the current binary.

use std::io::{self, Read, Write};

use crate::jnts::{Jnts, JntsEdge, TupleSet};
use crate::lattice::{Lattice, LevelStats, NodeId};

const MAGIC: &[u8; 8] = b"KWSLAT02";
const MAGIC_V1: &[u8; 8] = b"KWSLAT01";

/// Errors raised while reading a serialized lattice.
#[derive(Debug)]
pub enum LatticeIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a lattice file at all.
    BadMagic,
    /// The input is a lattice file of an older, no longer supported format
    /// version (carries the version string found).
    UnsupportedVersion(String),
    /// Structurally invalid content (with a description).
    Corrupt(String),
}

impl std::fmt::Display for LatticeIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatticeIoError::Io(e) => write!(f, "i/o error: {e}"),
            LatticeIoError::BadMagic => write!(f, "not a KWSLAT02 lattice file"),
            LatticeIoError::UnsupportedVersion(v) => write!(
                f,
                "lattice file version {v} is no longer supported (current is KWSLAT02); \
                 rebuild the lattice and save it again"
            ),
            LatticeIoError::Corrupt(msg) => write!(f, "corrupt lattice file: {msg}"),
        }
    }
}

impl std::error::Error for LatticeIoError {}

impl From<io::Error> for LatticeIoError {
    fn from(e: io::Error) -> Self {
        LatticeIoError::Io(e)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> Result<u64, LatticeIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> Result<u32, LatticeIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> Result<u8, LatticeIoError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Serializes a lattice to `w`.
pub fn save_lattice(lattice: &Lattice, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u64(w, lattice.max_joins() as u64)?;
    write_u64(w, lattice.level_count() as u64)?;
    for level in 1..=lattice.level_count() {
        write_u64(w, lattice.level_nodes(level).len() as u64)?;
    }
    for stats in lattice.stats() {
        write_u64(w, stats.generated as u64)?;
        write_u64(w, stats.duplicates as u64)?;
        write_u64(w, stats.kept as u64)?;
        write_u64(w, stats.elapsed.as_nanos() as u64)?;
    }
    for id in lattice.all_nodes() {
        let jnts = lattice.jnts(id);
        w.write_all(&[jnts.node_count() as u8])?;
        for ts in jnts.nodes() {
            write_u32(w, ts.table as u32)?;
            w.write_all(&[ts.copy])?;
        }
        for e in jnts.edges() {
            w.write_all(&[e.a, e.b, u8::from(e.a_is_from)])?;
            write_u32(w, e.fk as u32)?;
        }
        let children = lattice.children(id);
        write_u32(w, children.len() as u32)?;
        for &c in children {
            write_u32(w, c)?;
        }
    }
    Ok(())
}

/// Deserializes a lattice from `r`, validating structure. The derived arena
/// indexes (parents CSR, tuple-set postings, free-leaf flags) are rebuilt by
/// `Lattice::from_parts` from the validated networks and child links.
pub fn load_lattice(r: &mut impl Read) -> Result<Lattice, LatticeIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        if &magic == MAGIC_V1 {
            return Err(LatticeIoError::UnsupportedVersion(
                String::from_utf8_lossy(MAGIC_V1).into_owned(),
            ));
        }
        return Err(LatticeIoError::BadMagic);
    }
    let max_joins = read_u64(r)? as usize;
    let level_count = read_u64(r)? as usize;
    // Guard against absurd sizes before allocating: a corrupt header or node
    // section must produce a typed error, never a multi-gigabyte allocation
    // in `Lattice::from_parts` (which sizes the postings index from the
    // largest table id and `max_joins`).
    const MAX_NODES: u64 = 1 << 28;
    const MAX_LEVELS: usize = 64;
    const MAX_TABLES: usize = 1 << 12;
    if max_joins >= MAX_LEVELS {
        return Err(LatticeIoError::Corrupt(format!(
            "maxJoins {max_joins} exceeds sanity bound"
        )));
    }
    if level_count != max_joins + 1 {
        return Err(LatticeIoError::Corrupt(format!(
            "level count {level_count} does not match maxJoins {max_joins}"
        )));
    }
    let mut per_level = Vec::with_capacity(level_count);
    let mut total: u64 = 0;
    for _ in 0..level_count {
        let n = read_u64(r)?;
        total = total.saturating_add(n);
        if total > MAX_NODES {
            return Err(LatticeIoError::Corrupt("node count exceeds sanity bound".into()));
        }
        per_level.push(n as usize);
    }
    let mut stats = Vec::with_capacity(level_count);
    for _ in 0..level_count {
        let generated = read_u64(r)? as usize;
        let duplicates = read_u64(r)? as usize;
        let kept = read_u64(r)? as usize;
        let elapsed = std::time::Duration::from_nanos(read_u64(r)?);
        stats.push(LevelStats { generated, duplicates, kept, elapsed });
    }

    let total = total as usize;
    let mut jnts: Vec<Jnts> = Vec::with_capacity(total);
    let mut children: Vec<Vec<NodeId>> = Vec::with_capacity(total);
    let mut next_id: NodeId = 0;
    let mut prev_level_first: NodeId = 0;
    for (li, &count) in per_level.iter().enumerate() {
        let level = (li + 1) as u32;
        let level_first = next_id;
        for _ in 0..count {
            let n_vertices = read_u8(r)? as usize;
            if n_vertices != li + 1 {
                return Err(LatticeIoError::Corrupt(format!(
                    "node at level {level} has {n_vertices} vertices"
                )));
            }
            let mut vertices = Vec::with_capacity(n_vertices);
            for _ in 0..n_vertices {
                let table = read_u32(r)? as usize;
                if table >= MAX_TABLES {
                    return Err(LatticeIoError::Corrupt(format!(
                        "tuple-set table index {table} exceeds sanity bound"
                    )));
                }
                let copy = read_u8(r)?;
                if copy as usize >= max_joins + 2 {
                    return Err(LatticeIoError::Corrupt(format!(
                        "tuple-set copy {copy} outside the 0..=maxJoins+1 range"
                    )));
                }
                vertices.push(TupleSet::new(table, copy));
            }
            let mut edges = Vec::with_capacity(n_vertices.saturating_sub(1));
            for _ in 0..n_vertices.saturating_sub(1) {
                let a = read_u8(r)?;
                let b = read_u8(r)?;
                let a_is_from = match read_u8(r)? {
                    0 => false,
                    1 => true,
                    v => {
                        return Err(LatticeIoError::Corrupt(format!(
                            "invalid edge direction byte {v}"
                        )))
                    }
                };
                let fk = read_u32(r)? as usize;
                if a as usize >= n_vertices || b as usize >= n_vertices {
                    return Err(LatticeIoError::Corrupt("edge endpoint out of range".into()));
                }
                edges.push(JntsEdge { a, b, fk, a_is_from });
            }
            let network = Jnts::from_parts(vertices, edges)
                .ok_or_else(|| LatticeIoError::Corrupt("node is not a tree".into()))?;
            let n_children = read_u32(r)? as usize;
            if n_children > total {
                return Err(LatticeIoError::Corrupt("child count exceeds node count".into()));
            }
            let mut child_ids = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let c = read_u32(r)?;
                if c < prev_level_first || c >= level_first {
                    return Err(LatticeIoError::Corrupt(
                        "child link points outside the previous level".into(),
                    ));
                }
                if child_ids.last().is_some_and(|&last| c <= last) {
                    return Err(LatticeIoError::Corrupt(
                        "child links must be ascending and unique".into(),
                    ));
                }
                child_ids.push(c);
            }
            jnts.push(network);
            children.push(child_ids);
            next_id += 1;
        }
        prev_level_first = level_first;
    }

    Ok(Lattice::from_parts(jnts, children, per_level, max_joins, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_graph::SchemaGraph;
    use datagen_free::toy_store;
    use relengine::Database;

    /// A minimal store schema (kwdebug cannot depend on datagen — dev-deps
    /// don't apply to unit tests of this crate's lib target... they do, but
    /// keep this self-contained anyway).
    mod datagen_free {
        use relengine::{DataType, Database, DatabaseBuilder};

        pub fn toy_store() -> Database {
            let mut b = DatabaseBuilder::new();
            b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
                .primary_key("id");
            b.table("item")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .column("ptype_id", DataType::Int)
                .primary_key("id");
            b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
            b.finish().expect("static")
        }
    }

    fn lattice_of(db: &Database, max_joins: usize) -> Lattice {
        let graph = SchemaGraph::new(db);
        Lattice::build(db, &graph, max_joins)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = toy_store();
        let original = lattice_of(&db, 3);
        let mut buf = Vec::new();
        save_lattice(&original, &mut buf).expect("writes");
        let loaded = load_lattice(&mut buf.as_slice()).expect("reads");

        assert_eq!(loaded.node_count(), original.node_count());
        assert_eq!(loaded.max_joins(), original.max_joins());
        assert_eq!(loaded.level_count(), original.level_count());
        assert_eq!(loaded.table_count(), original.table_count());
        for id in original.all_nodes() {
            assert_eq!(original.jnts(id), loaded.jnts(id), "node {id}");
            assert_eq!(original.level_of(id), loaded.level_of(id));
            assert_eq!(original.children(id), loaded.children(id));
            assert_eq!(original.parents(id), loaded.parents(id));
            assert_eq!(original.has_free_leaf(id), loaded.has_free_leaf(id));
        }
        // Derived postings index is rebuilt identically.
        for t in 0..original.table_count() {
            for copy in 0..original.copies_per_table() {
                assert_eq!(
                    original.postings(t, copy as u8),
                    loaded.postings(t, copy as u8),
                    "postings({t},{copy})"
                );
            }
        }
        for (sa, sb) in original.stats().iter().zip(loaded.stats()) {
            assert_eq!(sa.generated, sb.generated);
            assert_eq!(sa.duplicates, sb.duplicates);
            assert_eq!(sa.kept, sb.kept);
        }
    }

    #[test]
    fn loaded_lattice_answers_queries_identically() {
        use crate::binding::{map_keywords, KeywordQuery};
        use crate::oracle::AlivenessOracle;
        use crate::prune::PrunedLattice;
        use crate::traversal::{self, StrategyKind};
        use relengine::Value;
        use textindex::InvertedIndex;

        let mut db = toy_store();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).expect("row");
        db.insert_values("item", vec![Value::Int(1), Value::text("waxy"), Value::Int(1)])
            .expect("row");
        db.finalize();
        let original = lattice_of(&db, 2);
        let mut buf = Vec::new();
        save_lattice(&original, &mut buf).expect("writes");
        let loaded = load_lattice(&mut buf.as_slice()).expect("reads");

        let index = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("waxy candle").expect("parses");
        let mapping = map_keywords(&q, &index);
        let interp = &mapping.interpretations[0];
        let run = |lat: &Lattice| {
            let pruned = PrunedLattice::build(lat, interp);
            let mut oracle =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
            traversal::run(StrategyKind::BruteForce, lat, &pruned, &mut oracle, 0.5)
                .expect("runs")
        };
        let a = run(&original);
        let b = run(&loaded);
        assert_eq!(a.alive_mtns, b.alive_mtns);
        assert_eq!(a.mpans, b.mpans);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_lattice(&mut &b"NOTALATT"[..]).expect_err("rejects");
        assert!(matches!(err, LatticeIoError::BadMagic), "{err}");
    }

    #[test]
    fn v1_file_rejected_with_version_error() {
        // A v1 header followed by anything must fail fast with a message that
        // names both the found and the supported version.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"KWSLAT01");
        buf.extend_from_slice(&[0u8; 64]);
        let err = load_lattice(&mut buf.as_slice()).expect_err("rejects v1");
        assert!(matches!(err, LatticeIoError::UnsupportedVersion(_)), "{err}");
        let msg = err.to_string();
        assert!(msg.contains("KWSLAT01"), "{msg}");
        assert!(msg.contains("KWSLAT02"), "{msg}");
        assert!(msg.contains("rebuild"), "{msg}");
    }

    #[test]
    fn truncated_input_rejected() {
        let db = toy_store();
        let lattice = lattice_of(&db, 2);
        let mut buf = Vec::new();
        save_lattice(&lattice, &mut buf).expect("writes");
        for cut in [4, 12, buf.len() / 2, buf.len() - 1] {
            assert!(
                load_lattice(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupted_link_rejected() {
        let db = toy_store();
        let lattice = lattice_of(&db, 2);
        let mut buf = Vec::new();
        save_lattice(&lattice, &mut buf).expect("writes");
        // Smash every byte in turn; most corruptions hit a validated field.
        // Accept either an error or a still-consistent read (flipping e.g. a
        // duplicate-count stat is benign), but never panic and never attempt
        // an absurd allocation (a flipped table id or maxJoins must be caught
        // by the sanity bounds, not sized into the postings index).
        for pos in MAGIC.len()..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0xFF;
            let _ = load_lattice(&mut bad.as_slice());
        }
    }

    #[test]
    fn error_display() {
        assert!(LatticeIoError::BadMagic.to_string().contains("KWSLAT02"));
        assert!(LatticeIoError::Corrupt("x".into()).to_string().contains("x"));
        let io_err: LatticeIoError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
    }
}
