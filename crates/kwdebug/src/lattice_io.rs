//! Lattice persistence: save the Phase-0 artifact, skip the rebuild.
//!
//! The offline lattice is the expensive part of setup — minutes at level 7 —
//! and it depends only on the schema graph and `maxJoins`, not on the data.
//! This module serializes a [`Lattice`] to a compact, versioned binary format
//! (hand-rolled little-endian writer; no external dependencies) so a
//! production deployment builds it once and reloads it on every restart.
//!
//! Format (`KWSLAT01`): header (magic, `max_joins`, level count, per-level
//! node counts), then every node in level order — vertex list, edge list,
//! child links (parent links are reconstructed from them, halving the file).
//! Reading validates structure (tree-ness, level consistency, link ranges)
//! and fails with a typed error rather than panicking on corrupt input.

use std::io::{self, Read, Write};

use crate::jnts::{Jnts, JntsEdge, TupleSet};
use crate::lattice::{Lattice, LatticeNode, LevelStats, NodeId};

const MAGIC: &[u8; 8] = b"KWSLAT01";

/// Errors raised while reading a serialized lattice.
#[derive(Debug)]
pub enum LatticeIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a lattice file or is a different format version.
    BadMagic,
    /// Structurally invalid content (with a description).
    Corrupt(String),
}

impl std::fmt::Display for LatticeIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LatticeIoError::Io(e) => write!(f, "i/o error: {e}"),
            LatticeIoError::BadMagic => write!(f, "not a KWSLAT01 lattice file"),
            LatticeIoError::Corrupt(msg) => write!(f, "corrupt lattice file: {msg}"),
        }
    }
}

impl std::error::Error for LatticeIoError {}

impl From<io::Error> for LatticeIoError {
    fn from(e: io::Error) -> Self {
        LatticeIoError::Io(e)
    }
}

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> Result<u64, LatticeIoError> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn read_u32(r: &mut impl Read) -> Result<u32, LatticeIoError> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u8(r: &mut impl Read) -> Result<u8, LatticeIoError> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b)?;
    Ok(b[0])
}

/// Serializes a lattice to `w`.
pub fn save_lattice(lattice: &Lattice, w: &mut impl Write) -> io::Result<()> {
    w.write_all(MAGIC)?;
    write_u64(w, lattice.max_joins() as u64)?;
    write_u64(w, lattice.level_count() as u64)?;
    for level in 1..=lattice.level_count() {
        write_u64(w, lattice.level_nodes(level).len() as u64)?;
    }
    for stats in lattice.stats() {
        write_u64(w, stats.generated as u64)?;
        write_u64(w, stats.duplicates as u64)?;
        write_u64(w, stats.kept as u64)?;
        write_u64(w, stats.elapsed.as_nanos() as u64)?;
    }
    for id in lattice.all_nodes() {
        let node = lattice.node(id);
        let jnts = &node.jnts;
        w.write_all(&[jnts.node_count() as u8])?;
        for ts in jnts.nodes() {
            write_u32(w, ts.table as u32)?;
            w.write_all(&[ts.copy])?;
        }
        for e in jnts.edges() {
            w.write_all(&[e.a, e.b, u8::from(e.a_is_from)])?;
            write_u32(w, e.fk as u32)?;
        }
        write_u32(w, node.children.len() as u32)?;
        for &c in &node.children {
            write_u32(w, c)?;
        }
    }
    Ok(())
}

/// Deserializes a lattice from `r`, validating structure.
pub fn load_lattice(r: &mut impl Read) -> Result<Lattice, LatticeIoError> {
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(LatticeIoError::BadMagic);
    }
    let max_joins = read_u64(r)? as usize;
    let level_count = read_u64(r)? as usize;
    if level_count != max_joins + 1 {
        return Err(LatticeIoError::Corrupt(format!(
            "level count {level_count} does not match maxJoins {max_joins}"
        )));
    }
    // Guard against absurd sizes before allocating.
    const MAX_NODES: u64 = 1 << 28;
    let mut per_level = Vec::with_capacity(level_count);
    let mut total: u64 = 0;
    for _ in 0..level_count {
        let n = read_u64(r)?;
        total = total.saturating_add(n);
        if total > MAX_NODES {
            return Err(LatticeIoError::Corrupt("node count exceeds sanity bound".into()));
        }
        per_level.push(n as usize);
    }
    let mut stats = Vec::with_capacity(level_count);
    for _ in 0..level_count {
        let generated = read_u64(r)? as usize;
        let duplicates = read_u64(r)? as usize;
        let kept = read_u64(r)? as usize;
        let elapsed = std::time::Duration::from_nanos(read_u64(r)?);
        stats.push(LevelStats { generated, duplicates, kept, elapsed });
    }

    let total = total as usize;
    let mut nodes: Vec<LatticeNode> = Vec::with_capacity(total);
    let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(level_count);
    let mut next_id: NodeId = 0;
    for (li, &count) in per_level.iter().enumerate() {
        let level = (li + 1) as u32;
        let mut ids = Vec::with_capacity(count);
        for _ in 0..count {
            let n_vertices = read_u8(r)? as usize;
            if n_vertices != li + 1 {
                return Err(LatticeIoError::Corrupt(format!(
                    "node at level {level} has {n_vertices} vertices"
                )));
            }
            let mut vertices = Vec::with_capacity(n_vertices);
            for _ in 0..n_vertices {
                let table = read_u32(r)? as usize;
                let copy = read_u8(r)?;
                vertices.push(TupleSet::new(table, copy));
            }
            let mut edges = Vec::with_capacity(n_vertices.saturating_sub(1));
            for _ in 0..n_vertices.saturating_sub(1) {
                let a = read_u8(r)?;
                let b = read_u8(r)?;
                let a_is_from = match read_u8(r)? {
                    0 => false,
                    1 => true,
                    v => {
                        return Err(LatticeIoError::Corrupt(format!(
                            "invalid edge direction byte {v}"
                        )))
                    }
                };
                let fk = read_u32(r)? as usize;
                if a as usize >= n_vertices || b as usize >= n_vertices {
                    return Err(LatticeIoError::Corrupt("edge endpoint out of range".into()));
                }
                edges.push(JntsEdge { a, b, fk, a_is_from });
            }
            let jnts = Jnts::from_parts(vertices, edges)
                .ok_or_else(|| LatticeIoError::Corrupt("node is not a tree".into()))?;
            let n_children = read_u32(r)? as usize;
            if n_children > total {
                return Err(LatticeIoError::Corrupt("child count exceeds node count".into()));
            }
            let mut children = Vec::with_capacity(n_children);
            for _ in 0..n_children {
                let c = read_u32(r)?;
                if c >= next_id {
                    return Err(LatticeIoError::Corrupt(
                        "child link points at same-or-higher level".into(),
                    ));
                }
                children.push(c);
            }
            nodes.push(LatticeNode { jnts, level, parents: Vec::new(), children });
            ids.push(next_id);
            next_id += 1;
        }
        levels.push(ids);
    }

    // Rebuild parent links from children.
    for id in 0..nodes.len() {
        let children = nodes[id].children.clone();
        for c in children {
            nodes[c as usize].parents.push(id as NodeId);
        }
    }
    for n in &mut nodes {
        n.parents.sort_unstable();
    }

    Ok(Lattice::from_parts(nodes, levels, max_joins, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema_graph::SchemaGraph;
    use datagen_free::toy_store;
    use relengine::Database;

    /// A minimal store schema (kwdebug cannot depend on datagen — dev-deps
    /// don't apply to unit tests of this crate's lib target... they do, but
    /// keep this self-contained anyway).
    mod datagen_free {
        use relengine::{DataType, Database, DatabaseBuilder};

        pub fn toy_store() -> Database {
            let mut b = DatabaseBuilder::new();
            b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
                .primary_key("id");
            b.table("item")
                .column("id", DataType::Int)
                .column("name", DataType::Text)
                .column("ptype_id", DataType::Int)
                .primary_key("id");
            b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
            b.finish().expect("static")
        }
    }

    fn lattice_of(db: &Database, max_joins: usize) -> Lattice {
        let graph = SchemaGraph::new(db);
        Lattice::build(db, &graph, max_joins)
    }

    #[test]
    fn round_trip_preserves_everything() {
        let db = toy_store();
        let original = lattice_of(&db, 3);
        let mut buf = Vec::new();
        save_lattice(&original, &mut buf).expect("writes");
        let loaded = load_lattice(&mut buf.as_slice()).expect("reads");

        assert_eq!(loaded.node_count(), original.node_count());
        assert_eq!(loaded.max_joins(), original.max_joins());
        assert_eq!(loaded.level_count(), original.level_count());
        for id in original.all_nodes() {
            let a = original.node(id);
            let b = loaded.node(id);
            assert_eq!(a.jnts, b.jnts, "node {id}");
            assert_eq!(a.level, b.level);
            assert_eq!(a.children, b.children);
            assert_eq!(a.parents, b.parents);
        }
        for (sa, sb) in original.stats().iter().zip(loaded.stats()) {
            assert_eq!(sa.generated, sb.generated);
            assert_eq!(sa.duplicates, sb.duplicates);
            assert_eq!(sa.kept, sb.kept);
        }
    }

    #[test]
    fn loaded_lattice_answers_queries_identically() {
        use crate::binding::{map_keywords, KeywordQuery};
        use crate::oracle::AlivenessOracle;
        use crate::prune::PrunedLattice;
        use crate::traversal::{self, StrategyKind};
        use relengine::Value;
        use textindex::InvertedIndex;

        let mut db = toy_store();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).expect("row");
        db.insert_values("item", vec![Value::Int(1), Value::text("waxy"), Value::Int(1)])
            .expect("row");
        db.finalize();
        let original = lattice_of(&db, 2);
        let mut buf = Vec::new();
        save_lattice(&original, &mut buf).expect("writes");
        let loaded = load_lattice(&mut buf.as_slice()).expect("reads");

        let index = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("waxy candle").expect("parses");
        let mapping = map_keywords(&q, &index);
        let interp = &mapping.interpretations[0];
        let run = |lat: &Lattice| {
            let pruned = PrunedLattice::build(lat, interp);
            let mut oracle =
                AlivenessOracle::new(&db, Some(&index), interp, &mapping.keywords, false);
            traversal::run(StrategyKind::BruteForce, lat, &pruned, &mut oracle, 0.5)
                .expect("runs")
        };
        let a = run(&original);
        let b = run(&loaded);
        assert_eq!(a.alive_mtns, b.alive_mtns);
        assert_eq!(a.mpans, b.mpans);
    }

    #[test]
    fn bad_magic_rejected() {
        let err = load_lattice(&mut &b"NOTALATT"[..]).expect_err("rejects");
        assert!(matches!(err, LatticeIoError::BadMagic), "{err}");
    }

    #[test]
    fn truncated_input_rejected() {
        let db = toy_store();
        let lattice = lattice_of(&db, 2);
        let mut buf = Vec::new();
        save_lattice(&lattice, &mut buf).expect("writes");
        for cut in [4, 12, buf.len() / 2, buf.len() - 1] {
            assert!(
                load_lattice(&mut &buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
    }

    #[test]
    fn corrupted_link_rejected() {
        let db = toy_store();
        let lattice = lattice_of(&db, 2);
        let mut buf = Vec::new();
        save_lattice(&lattice, &mut buf).expect("writes");
        // Smash a byte somewhere in the node section; most corruptions hit a
        // validated field. Accept either an error or a still-consistent read
        // (flipping e.g. a duplicate-count stat is benign), but never panic.
        for pos in (MAGIC.len() + 16..buf.len()).step_by(buf.len() / 13) {
            let mut bad = buf.clone();
            bad[pos] ^= 0xFF;
            let _ = load_lattice(&mut bad.as_slice());
        }
    }

    #[test]
    fn error_display() {
        assert!(LatticeIoError::BadMagic.to_string().contains("KWSLAT01"));
        assert!(LatticeIoError::Corrupt("x".into()).to_string().contains("x"));
        let io_err: LatticeIoError = io::Error::other("boom").into();
        assert!(io_err.to_string().contains("boom"));
    }
}
