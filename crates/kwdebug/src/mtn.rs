//! Totality and Minimal Total Nodes (Phase 2 predicates).
//!
//! * A node is **total** if its network contains the relation copy bound to
//!   *every* keyword (only total nodes can be answer queries under "and"
//!   semantics).
//! * A node is a **Minimal Total Node (MTN)** if it is total and none of its
//!   descendants is total. MTNs correspond to the candidate networks of
//!   DISCOVER-style KWS-S systems; classifying them alive/dead is the goal of
//!   Phase 3.
//!
//! Because each keyword copy appears at most once per network and every
//! keyword copy present must be bound (Phase 1 pruned the rest), totality
//! reduces to counting non-free vertices; and since a node's children are its
//! one-leaf-removed sub-networks, minimality reduces to "no free leaf":
//! removing a bound leaf always breaks totality, removing a free leaf never
//! does.

use crate::binding::Interpretation;
use crate::jnts::Jnts;

/// Phase-1 retention: every keyword copy in the network is bound.
pub fn is_retained(jnts: &Jnts, interp: &Interpretation) -> bool {
    jnts.nodes().iter().all(|&ts| interp.vertex_allowed(ts))
}

/// Whether a (retained) network is total for the interpretation.
pub fn is_total(jnts: &Jnts, interp: &Interpretation) -> bool {
    debug_assert!(is_retained(jnts, interp));
    let bound = jnts.nodes().iter().filter(|ts| !ts.is_free()).count();
    bound == interp.keyword_count()
}

/// Whether a (retained) network is a Minimal Total Node.
pub fn is_mtn(jnts: &Jnts, interp: &Interpretation) -> bool {
    if !is_total(jnts, interp) {
        return false;
    }
    if jnts.node_count() == 1 {
        return true; // no descendants at all
    }
    // Minimal iff no child (= one leaf removed) is still total, i.e. no leaf
    // is a free tuple set.
    jnts.leaves().iter().all(|&l| !jnts.nodes()[l].is_free())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::jnts::TupleSet;
    use crate::schema_graph::Incidence;
    use relengine::{DataType, DatabaseBuilder, Value};
    use textindex::InvertedIndex;

    /// Tables: 0 = product_type(text), 1 = item(text), 2 = color(text).
    /// fks: 0 = item.ptype -> product_type, 1 = item.color -> color.
    fn interp_for(query: &str) -> Interpretation {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text);
        b.table("item").column("id", DataType::Int).column("name", DataType::Text);
        b.table("color").column("id", DataType::Int).column("name", DataType::Text);
        let mut db = b.finish().unwrap();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
        db.insert_values("item", vec![Value::Int(1), Value::text("scented thing")]).unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse(query).unwrap();
        let m = map_keywords(&q, &idx);
        assert_eq!(m.interpretations.len(), 1);
        m.interpretations.into_iter().next().unwrap()
    }

    fn inc(fk: usize, other: usize, local_is_from: bool) -> Incidence {
        Incidence { fk, other, local_is_from }
    }

    #[test]
    fn retention() {
        let i = interp_for("red candle"); // red -> color copy 1, candle -> ptype copy 1
        assert!(is_retained(&Jnts::single(TupleSet::new(2, 1)), &i)); // C1 bound
        assert!(is_retained(&Jnts::single(TupleSet::new(2, 0)), &i)); // free
        assert!(!is_retained(&Jnts::single(TupleSet::new(2, 2)), &i)); // unbound copy
        assert!(!is_retained(&Jnts::single(TupleSet::new(1, 1)), &i)); // item has no keyword
    }

    #[test]
    fn totality_counts_keywords() {
        let i = interp_for("red candle");
        // C1 alone: only one keyword covered.
        assert!(!is_total(&Jnts::single(TupleSet::new(2, 1)), &i));
        // P1 - I0 - C1 covers both.
        let full = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, false), 0) // item0 references ptype
            .extend(1, inc(1, 2, true), 1); // item0 references color1
        assert!(is_total(&full, &i));
        assert!(is_mtn(&full, &i));
    }

    #[test]
    fn free_leaf_breaks_minimality() {
        let i = interp_for("red"); // red -> color copy 1
        // C1 alone is an MTN (single keyword).
        assert!(is_mtn(&Jnts::single(TupleSet::new(2, 1)), &i));
        // C1 - I0 is total but I0 is a free leaf: not minimal.
        let with_free = Jnts::single(TupleSet::new(2, 1)).extend(0, inc(1, 1, false), 0);
        assert!(is_total(&with_free, &i));
        assert!(!is_mtn(&with_free, &i));
    }

    #[test]
    fn free_inner_vertex_is_fine() {
        let i = interp_for("red candle");
        // P1 - I0 - C1: I0 is free but interior; both leaves bound -> MTN.
        let mtn = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, false), 0)
            .extend(1, inc(1, 2, true), 1);
        assert!(is_mtn(&mtn, &i));
        // Extending with one more free leaf keeps it total but not minimal.
        let bigger = mtn.extend(1, inc(0, 0, true), 0);
        assert!(is_total(&bigger, &i));
        assert!(!is_mtn(&bigger, &i));
    }
}
