//! Lightweight estimation of the aliveness prior `p_a` (paper §2.5.3,
//! future work).
//!
//! The score-based heuristic weighs "what if this node is alive" against
//! "what if it is dead" with a prior `p_a`. The paper fixes `p_a = 0.5` and
//! notes that estimating it exactly would require executing all the queries —
//! "it is still interesting future work to explore lightweight estimation
//! approaches for `p_a`". This module is that approach: a textbook
//! System-R-style cardinality model over statistics that are already
//! available without touching the data at query time —
//!
//! * per-table row counts,
//! * per-join-column distinct-value counts (from the engine's join indexes),
//! * per-keyword document frequencies (from the inverted index).
//!
//! The expected result size of a join network is
//!
//! ```text
//! E[|T|] = Π_nodes sel(node) · |R(node)|  ·  Π_edges 1 / max(V(a.col), V(b.col))
//! ```
//!
//! and the node's aliveness probability is modeled as `1 − e^(−E[|T|])`
//! (a Poisson approximation of "at least one result"). `p_a` for a pruned
//! lattice is the mean over its nodes.

use relengine::Database;
use textindex::InvertedIndex;

use crate::binding::Interpretation;
use crate::jnts::Jnts;
use crate::lattice::Lattice;
use crate::prune::PrunedLattice;

/// Statistics-based cardinality and aliveness estimator.
pub struct PaEstimator<'a> {
    db: &'a Database,
    index: &'a InvertedIndex,
    interp: &'a Interpretation,
    keywords: &'a [String],
}

impl<'a> PaEstimator<'a> {
    /// Creates an estimator for one interpretation.
    pub fn new(
        db: &'a Database,
        index: &'a InvertedIndex,
        interp: &'a Interpretation,
        keywords: &'a [String],
    ) -> Self {
        PaEstimator { db, index, interp, keywords }
    }

    /// Expected number of result tuples of a network, under independence.
    pub fn expected_rows(&self, jnts: &Jnts) -> f64 {
        let mut expected = 1.0f64;
        for &ts in jnts.nodes() {
            let table = self.db.table(ts.table);
            let base = table.len() as f64;
            let filtered = match self.interp.keyword_for(ts) {
                None => base,
                Some(kw) => {
                    self.index.doc_frequency(ts.table, &self.keywords[kw]) as f64
                }
            };
            expected *= filtered;
        }
        for e in jnts.edges() {
            let fk = self.db.foreign_key(e.fk);
            let v_from = self.db.table(fk.from_table).distinct_ints(fk.from_col).max(1);
            let v_to = self.db.table(fk.to_table).distinct_ints(fk.to_col).max(1);
            expected /= v_from.max(v_to) as f64;
        }
        expected
    }

    /// Probability the network returns at least one tuple:
    /// `1 − e^(−E[rows])`.
    pub fn alive_probability(&self, jnts: &Jnts) -> f64 {
        let rows = self.expected_rows(jnts);
        if !rows.is_finite() {
            return 1.0;
        }
        1.0 - (-rows).exp()
    }

    /// Mean aliveness probability over a pruned lattice — the estimated
    /// `p_a` fed to the score-based heuristic. Empty lattices fall back to
    /// the paper's 0.5.
    pub fn estimate_pa(&self, lattice: &Lattice, pruned: &PrunedLattice) -> f64 {
        if pruned.is_empty() {
            return crate::traversal::DEFAULT_PA;
        }
        let sum: f64 =
            (0..pruned.len()).map(|i| self.alive_probability(pruned.jnts(lattice, i))).sum();
        (sum / pruned.len() as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::jnts::TupleSet;
    use crate::schema_graph::{Incidence, SchemaGraph};
    use relengine::{DataType, DatabaseBuilder, Value};

    /// color(2 rows) <- item(100 rows): most items red, one blue; keyword
    /// frequencies differ by 50x.
    fn setup() -> (Database, InvertedIndex) {
        let mut b = DatabaseBuilder::new();
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).expect("row");
        db.insert_values("color", vec![Value::Int(2), Value::text("blue")]).expect("row");
        for i in 1..=100i64 {
            let (name, c) = if i == 1 { ("blue widget", 2) } else { ("red widget", 1) };
            db.insert_values("item", vec![Value::Int(i), Value::text(name), Value::Int(c)])
                .expect("row");
        }
        db.finalize();
        let idx = InvertedIndex::build(&db);
        (db, idx)
    }

    use relengine::Database;

    fn estimator_for<'a>(
        db: &'a Database,
        idx: &'a InvertedIndex,
        mapping: &'a crate::binding::KeywordMapping,
    ) -> PaEstimator<'a> {
        PaEstimator::new(db, idx, &mapping.interpretations[0], &mapping.keywords)
    }

    #[test]
    fn frequent_terms_estimate_higher() {
        let (db, idx) = setup();
        // Use the interpretation binding the keyword to the *item* table
        // (both colors also appear as color names, giving two choices).
        let item_interp = |text: &str| {
            let m = map_keywords(&KeywordQuery::parse(text).expect("parses"), &idx);
            let i = m
                .interpretations
                .iter()
                .position(|i| i.tables() == [1])
                .expect("item interpretation exists");
            (m.keywords.clone(), m.interpretations[i].clone())
        };
        let (kw_red, i_red) = item_interp("red");
        let (kw_blue, i_blue) = item_interp("blue");
        let node = Jnts::single(TupleSet::new(1, 1));
        let red = PaEstimator::new(&db, &idx, &i_red, &kw_red).expected_rows(&node);
        let blue = PaEstimator::new(&db, &idx, &i_blue, &kw_blue).expected_rows(&node);
        assert!(red > blue * 10.0, "red {red} vs blue {blue}");
    }

    #[test]
    fn joins_reduce_expected_rows() {
        let (db, idx) = setup();
        let q = map_keywords(&KeywordQuery::parse("red widget").expect("parses"), &idx);
        let est = estimator_for(&db, &idx, &q);
        let single = Jnts::single(TupleSet::new(1, 1)); // item bound to "widget"
        let joined = single.extend(0, Incidence { fk: 0, other: 0, local_is_from: true }, 1);
        // Joining through a 2-distinct-value key divides by ~2 then applies
        // the color-side frequency.
        assert!(est.expected_rows(&joined) < est.expected_rows(&single));
    }

    #[test]
    fn probability_is_monotone_in_rows_and_bounded() {
        let (db, idx) = setup();
        let q = map_keywords(&KeywordQuery::parse("red").expect("parses"), &idx);
        let est = estimator_for(&db, &idx, &q);
        let bound = Jnts::single(TupleSet::new(1, 1));
        let free = Jnts::single(TupleSet::new(1, 0));
        let pb = est.alive_probability(&bound);
        let pf = est.alive_probability(&free);
        assert!((0.0..=1.0).contains(&pb));
        assert!((0.0..=1.0).contains(&pf));
        assert!(pf >= pb, "unfiltered scan at least as likely alive");
        // 100 expected rows ≈ certainly alive.
        assert!(pf > 0.999);
    }

    #[test]
    fn estimated_pa_drives_sbh_correctly() {
        let (db, idx) = setup();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let q = map_keywords(&KeywordQuery::parse("blue widget").expect("parses"), &idx);
        let interp = &q.interpretations[0];
        let pruned = PrunedLattice::build(&lattice, interp);
        let est = PaEstimator::new(&db, &idx, interp, &q.keywords);
        let pa = est.estimate_pa(&lattice, &pruned);
        assert!((0.0..=1.0).contains(&pa));

        // SBH with the estimated prior still matches brute force.
        let mut oracle =
            crate::oracle::AlivenessOracle::new(&db, Some(&idx), interp, &q.keywords, false);
        let sbh = crate::traversal::run(
            crate::traversal::StrategyKind::ScoreBasedHeuristic,
            &lattice, &pruned, &mut oracle, pa,
        )
        .expect("runs");
        let mut oracle =
            crate::oracle::AlivenessOracle::new(&db, Some(&idx), interp, &q.keywords, false);
        let brute = crate::traversal::run(
            crate::traversal::StrategyKind::BruteForce,
            &lattice, &pruned, &mut oracle, 0.5,
        )
        .expect("runs");
        assert_eq!(sbh.alive_mtns, brute.alive_mtns);
        assert_eq!(sbh.mpans, brute.mpans);
    }

    #[test]
    fn empty_pruned_lattice_falls_back_to_half() {
        let (db, idx) = setup();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 0); // single tables only
        // Two keywords in different tables: no MTN at level 1.
        let q = map_keywords(&KeywordQuery::parse("blue red").expect("parses"), &idx);
        // Pick an interpretation placing them in different tables if any;
        // all interpretations with both in `item` still have MTNs, so use
        // the (color, item) one.
        let interp = q
            .interpretations
            .iter()
            .find(|i| i.tables()[0] != i.tables()[1])
            .expect("cross-table interpretation");
        let pruned = PrunedLattice::build(&lattice, interp);
        assert!(pruned.is_empty());
        let est = PaEstimator::new(&db, &idx, interp, &q.keywords);
        assert_eq!(est.estimate_pa(&lattice, &pruned), 0.5);
    }
}
