//! Lightweight estimation of the aliveness prior `p_a` (paper §2.5.3,
//! future work).
//!
//! The score-based heuristic weighs "what if this node is alive" against
//! "what if it is dead" with a prior `p_a`. The paper fixes `p_a = 0.5` and
//! notes that estimating it exactly would require executing all the queries —
//! "it is still interesting future work to explore lightweight estimation
//! approaches for `p_a`". This module is that approach: a textbook
//! System-R-style cardinality model over statistics that are already
//! available without touching the data at query time —
//!
//! * per-table row counts,
//! * per-join-column distinct-value counts (from the engine's join indexes),
//! * per-keyword document frequencies (from the inverted index).
//!
//! The expected result size of a join network is
//!
//! ```text
//! E[|T|] = Π_nodes sel(node) · |R(node)|  ·  Π_edges 1 / max(V(a.col), V(b.col))
//! ```
//!
//! and the node's aliveness probability is modeled as `1 − e^(−E[|T|])`
//! (a Poisson approximation of "at least one result"). `p_a` for a pruned
//! lattice is the mean over its nodes.
//!
//! ## Online estimation (DESIGN.md §12)
//!
//! The static model above never looks at a verdict. [`OnlinePa`] closes the
//! loop: every *executed* probe reports `(level, alive)` into per-level
//! counters, and SBH's prior for a node becomes the Laplace-smoothed
//! observed alive rate of its level — exactly 0.5 (the paper's prior) at
//! zero observations, converging to the workload's true rate as probes
//! accumulate. Under the serving layer the estimator lives in
//! [`crate::debugger::SharedParts`], so verdicts observed by one tenant's
//! session sharpen the prior for every other (see CACHING.md). Enabled by
//! `DebugConfig::online_pa`; measured by the `exp_pa_estimate` /
//! `exp_pa_sweep` harnesses.

use std::sync::atomic::{AtomicU64, Ordering};

use relengine::Database;
use textindex::InvertedIndex;

use crate::binding::Interpretation;
use crate::jnts::Jnts;
use crate::lattice::Lattice;
use crate::prune::PrunedLattice;

/// Statistics-based cardinality and aliveness estimator.
pub struct PaEstimator<'a> {
    db: &'a Database,
    index: &'a InvertedIndex,
    interp: &'a Interpretation,
    keywords: &'a [String],
}

impl<'a> PaEstimator<'a> {
    /// Creates an estimator for one interpretation.
    pub fn new(
        db: &'a Database,
        index: &'a InvertedIndex,
        interp: &'a Interpretation,
        keywords: &'a [String],
    ) -> Self {
        PaEstimator { db, index, interp, keywords }
    }

    /// Expected number of result tuples of a network, under independence.
    pub fn expected_rows(&self, jnts: &Jnts) -> f64 {
        let mut expected = 1.0f64;
        for &ts in jnts.nodes() {
            let table = self.db.table(ts.table);
            let base = table.len() as f64;
            let filtered = match self.interp.keyword_for(ts) {
                None => base,
                Some(kw) => {
                    self.index.doc_frequency(ts.table, &self.keywords[kw]) as f64
                }
            };
            expected *= filtered;
        }
        for e in jnts.edges() {
            let fk = self.db.foreign_key(e.fk);
            let v_from = self.db.table(fk.from_table).distinct_ints(fk.from_col).max(1);
            let v_to = self.db.table(fk.to_table).distinct_ints(fk.to_col).max(1);
            expected /= v_from.max(v_to) as f64;
        }
        expected
    }

    /// Probability the network returns at least one tuple:
    /// `1 − e^(−E[rows])`.
    pub fn alive_probability(&self, jnts: &Jnts) -> f64 {
        let rows = self.expected_rows(jnts);
        if !rows.is_finite() {
            return 1.0;
        }
        1.0 - (-rows).exp()
    }

    /// Mean aliveness probability over a pruned lattice — the estimated
    /// `p_a` fed to the score-based heuristic. Empty lattices fall back to
    /// the paper's 0.5.
    pub fn estimate_pa(&self, lattice: &Lattice, pruned: &PrunedLattice) -> f64 {
        if pruned.is_empty() {
            return crate::traversal::DEFAULT_PA;
        }
        let sum: f64 =
            (0..pruned.len()).map(|i| self.alive_probability(pruned.jnts(lattice, i))).sum();
        (sum / pruned.len() as f64).clamp(0.0, 1.0)
    }
}

/// Number of per-level slots in [`OnlinePa`]. `DebugConfig::max_joins` is
/// capped at 12, so networks have at most 13 nodes; deeper levels (never
/// produced today) share the last slot rather than panic.
const PA_LEVELS: usize = 16;

/// Online per-level alive-rate estimator for SBH's prior `p_a`
/// (DESIGN.md §12).
///
/// Lock-free: two `AtomicU64` counters per network level (level = node
/// count), updated by [`OnlinePa::record`] from every *executed* probe —
/// memo hits, R1/R2 inferences and dead shortcuts are derived facts, not
/// fresh observations, so they don't count. The per-level rate is
/// Laplace-smoothed, `(alive + 1) / (total + 2)`: with no observations it is
/// exactly `0.5`, the paper's fixed prior, so an unwarmed estimator is
/// behavior-identical to the default — the estimate only moves once evidence
/// exists. Shared across sessions via [`crate::debugger::SharedParts`].
#[derive(Debug)]
pub struct OnlinePa {
    alive: [AtomicU64; PA_LEVELS],
    total: [AtomicU64; PA_LEVELS],
}

impl OnlinePa {
    /// Creates an estimator with no observations (every level at 0.5).
    pub fn new() -> OnlinePa {
        OnlinePa {
            alive: std::array::from_fn(|_| AtomicU64::new(0)),
            total: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn slot(level: usize) -> usize {
        level.saturating_sub(1).min(PA_LEVELS - 1)
    }

    /// Records one executed probe's verdict for a network of `level` nodes.
    pub fn record(&self, level: usize, alive: bool) {
        let s = OnlinePa::slot(level);
        self.total[s].fetch_add(1, Ordering::Relaxed);
        if alive {
            self.alive[s].fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Laplace-smoothed alive rate of networks with `level` nodes:
    /// `(alive + 1) / (total + 2)`, i.e. 0.5 with no observations.
    pub fn level_rate(&self, level: usize) -> f64 {
        let s = OnlinePa::slot(level);
        let alive = self.alive[s].load(Ordering::Relaxed) as f64;
        let total = self.total[s].load(Ordering::Relaxed) as f64;
        (alive + 1.0) / (total + 2.0)
    }

    /// Total verdicts observed across all levels.
    pub fn observations(&self) -> u64 {
        self.total.iter().map(|t| t.load(Ordering::Relaxed)).sum()
    }

    /// Estimated `p_a` for a pruned lattice: the mean of its nodes' level
    /// rates. Empty lattices fall back to the paper's 0.5.
    pub fn estimate_pa(&self, pruned: &PrunedLattice) -> f64 {
        if pruned.is_empty() {
            return crate::traversal::DEFAULT_PA;
        }
        let sum: f64 = (0..pruned.len()).map(|i| self.level_rate(pruned.level(i) as usize)).sum();
        (sum / pruned.len() as f64).clamp(0.0, 1.0)
    }
}

impl Default for OnlinePa {
    fn default() -> Self {
        OnlinePa::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::jnts::TupleSet;
    use crate::schema_graph::{Incidence, SchemaGraph};
    use relengine::{DataType, DatabaseBuilder, Value};

    /// color(2 rows) <- item(100 rows): most items red, one blue; keyword
    /// frequencies differ by 50x.
    fn setup() -> (Database, InvertedIndex) {
        let mut b = DatabaseBuilder::new();
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).expect("row");
        db.insert_values("color", vec![Value::Int(2), Value::text("blue")]).expect("row");
        for i in 1..=100i64 {
            let (name, c) = if i == 1 { ("blue widget", 2) } else { ("red widget", 1) };
            db.insert_values("item", vec![Value::Int(i), Value::text(name), Value::Int(c)])
                .expect("row");
        }
        db.finalize();
        let idx = InvertedIndex::build(&db);
        (db, idx)
    }

    use relengine::Database;

    fn estimator_for<'a>(
        db: &'a Database,
        idx: &'a InvertedIndex,
        mapping: &'a crate::binding::KeywordMapping,
    ) -> PaEstimator<'a> {
        PaEstimator::new(db, idx, &mapping.interpretations[0], &mapping.keywords)
    }

    #[test]
    fn frequent_terms_estimate_higher() {
        let (db, idx) = setup();
        // Use the interpretation binding the keyword to the *item* table
        // (both colors also appear as color names, giving two choices).
        let item_interp = |text: &str| {
            let m = map_keywords(&KeywordQuery::parse(text).expect("parses"), &idx);
            let i = m
                .interpretations
                .iter()
                .position(|i| i.tables() == [1])
                .expect("item interpretation exists");
            (m.keywords.clone(), m.interpretations[i].clone())
        };
        let (kw_red, i_red) = item_interp("red");
        let (kw_blue, i_blue) = item_interp("blue");
        let node = Jnts::single(TupleSet::new(1, 1));
        let red = PaEstimator::new(&db, &idx, &i_red, &kw_red).expected_rows(&node);
        let blue = PaEstimator::new(&db, &idx, &i_blue, &kw_blue).expected_rows(&node);
        assert!(red > blue * 10.0, "red {red} vs blue {blue}");
    }

    #[test]
    fn joins_reduce_expected_rows() {
        let (db, idx) = setup();
        let q = map_keywords(&KeywordQuery::parse("red widget").expect("parses"), &idx);
        let est = estimator_for(&db, &idx, &q);
        let single = Jnts::single(TupleSet::new(1, 1)); // item bound to "widget"
        let joined = single.extend(0, Incidence { fk: 0, other: 0, local_is_from: true }, 1);
        // Joining through a 2-distinct-value key divides by ~2 then applies
        // the color-side frequency.
        assert!(est.expected_rows(&joined) < est.expected_rows(&single));
    }

    #[test]
    fn probability_is_monotone_in_rows_and_bounded() {
        let (db, idx) = setup();
        let q = map_keywords(&KeywordQuery::parse("red").expect("parses"), &idx);
        let est = estimator_for(&db, &idx, &q);
        let bound = Jnts::single(TupleSet::new(1, 1));
        let free = Jnts::single(TupleSet::new(1, 0));
        let pb = est.alive_probability(&bound);
        let pf = est.alive_probability(&free);
        assert!((0.0..=1.0).contains(&pb));
        assert!((0.0..=1.0).contains(&pf));
        assert!(pf >= pb, "unfiltered scan at least as likely alive");
        // 100 expected rows ≈ certainly alive.
        assert!(pf > 0.999);
    }

    #[test]
    fn estimated_pa_drives_sbh_correctly() {
        let (db, idx) = setup();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let q = map_keywords(&KeywordQuery::parse("blue widget").expect("parses"), &idx);
        let interp = &q.interpretations[0];
        let pruned = PrunedLattice::build(&lattice, interp);
        let est = PaEstimator::new(&db, &idx, interp, &q.keywords);
        let pa = est.estimate_pa(&lattice, &pruned);
        assert!((0.0..=1.0).contains(&pa));

        // SBH with the estimated prior still matches brute force.
        let mut oracle =
            crate::oracle::AlivenessOracle::new(&db, Some(&idx), interp, &q.keywords, false);
        let sbh = crate::traversal::run(
            crate::traversal::StrategyKind::ScoreBasedHeuristic,
            &lattice, &pruned, &mut oracle, pa,
        )
        .expect("runs");
        let mut oracle =
            crate::oracle::AlivenessOracle::new(&db, Some(&idx), interp, &q.keywords, false);
        let brute = crate::traversal::run(
            crate::traversal::StrategyKind::BruteForce,
            &lattice, &pruned, &mut oracle, 0.5,
        )
        .expect("runs");
        assert_eq!(sbh.alive_mtns, brute.alive_mtns);
        assert_eq!(sbh.mpans, brute.mpans);
    }

    #[test]
    fn empty_pruned_lattice_falls_back_to_half() {
        let (db, idx) = setup();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 0); // single tables only
        // Two keywords in different tables: no MTN at level 1.
        let q = map_keywords(&KeywordQuery::parse("blue red").expect("parses"), &idx);
        // Pick an interpretation placing them in different tables if any;
        // all interpretations with both in `item` still have MTNs, so use
        // the (color, item) one.
        let interp = q
            .interpretations
            .iter()
            .find(|i| i.tables()[0] != i.tables()[1])
            .expect("cross-table interpretation");
        let pruned = PrunedLattice::build(&lattice, interp);
        assert!(pruned.is_empty());
        let est = PaEstimator::new(&db, &idx, interp, &q.keywords);
        assert_eq!(est.estimate_pa(&lattice, &pruned), 0.5);
    }

    #[test]
    fn online_pa_starts_at_paper_prior_and_learns() {
        let est = OnlinePa::new();
        assert_eq!(est.level_rate(1), 0.5);
        assert_eq!(est.observations(), 0);
        // 3 alive / 1 dead at level 1 → (3+1)/(4+2) = 2/3.
        est.record(1, true);
        est.record(1, true);
        est.record(1, true);
        est.record(1, false);
        assert!((est.level_rate(1) - 4.0 / 6.0).abs() < 1e-12);
        // Level 2 untouched: still the prior.
        assert_eq!(est.level_rate(2), 0.5);
        assert_eq!(est.observations(), 4);
        // All-dead evidence pulls below 0.5 but never to 0 (smoothing).
        est.record(2, false);
        est.record(2, false);
        let r2 = est.level_rate(2);
        assert!(r2 > 0.0 && r2 < 0.5, "rate {r2}");
    }

    #[test]
    fn online_pa_over_pruned_lattice_mixes_levels() {
        let (db, idx) = setup();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let q = map_keywords(&KeywordQuery::parse("blue widget").expect("parses"), &idx);
        let interp = &q.interpretations[0];
        let pruned = PrunedLattice::build(&lattice, interp);
        assert!(!pruned.is_empty());
        let est = OnlinePa::new();
        // Unwarmed estimator reproduces the paper prior exactly.
        assert_eq!(est.estimate_pa(&pruned), crate::traversal::DEFAULT_PA);
        // Warm it heavily alive: the lattice-wide estimate rises.
        for level in 1..=3 {
            for _ in 0..20 {
                est.record(level, true);
            }
        }
        let pa = est.estimate_pa(&pruned);
        assert!(pa > 0.8, "warmed estimate {pa}");
        assert!((0.0..=1.0).contains(&pa));
    }

    #[test]
    fn online_pa_deep_levels_share_last_slot() {
        let est = OnlinePa::new();
        est.record(40, true); // far past PA_LEVELS: clamps, never panics
        assert_eq!(est.observations(), 1);
        assert!(est.level_rate(99) > 0.5, "clamped slot sees the observation");
    }
}
