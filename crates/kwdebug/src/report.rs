//! Output types: the system's answer to a keyword query.
//!
//! Per §2.1 the output is `O(K) = A(K) ∪ N(K) ∪ M(K)`: the answer queries,
//! the non-answer queries, and for each non-answer its maximal non-empty
//! sub-queries. Reports carry SQL text (what a developer pastes into a
//! console) and sample result tuples for everything alive.
//!
//! Reports are deterministic in everything but wall-clock timings — and
//! that determinism survives [`crate::debugger::DebugConfig::workers`]: a
//! parallel traversal yields the same classification, the same MPAN lists
//! in the same order, and the same probe counters as the sequential run
//! (`tests/parallel_equivalence.rs` pins this; DESIGN.md §8 explains why).
//! Only `probe_time_ns` and the parallel-only `workers`/`steals` counters
//! vary with the thread count.

use std::fmt;
use std::time::Duration;

use crate::budget::Exhausted;
use crate::metrics::{PhaseTiming, ProbeCounters};
use crate::prune::PruneStats;

/// One structured query (a lattice node) as shown to the developer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryInfo {
    /// Rendered SQL of the instantiated query.
    pub sql: String,
    /// Lattice level (number of relation instances).
    pub level: u32,
    /// Up to `sample_limit` rendered result tuples (empty for dead queries or
    /// when sampling is disabled).
    pub sample_tuples: Vec<String>,
}

/// A dead candidate network together with its explanation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NonAnswerInfo {
    /// The non-answer query itself.
    pub query: QueryInfo,
    /// Its maximal partially alive sub-queries — the frontier cause. On a
    /// degraded run these are the *confirmed* MPANs (a sound lower bound).
    pub mpans: Vec<QueryInfo>,
    /// Additional *possible* MPANs a degraded run could not confirm or rule
    /// out (not known dead, no in-cone parent known alive); together with
    /// [`NonAnswerInfo::mpans`] a sound upper bound on the true frontier.
    /// Always empty on a complete run.
    pub possible_mpans: Vec<QueryInfo>,
}

/// Results for one interpretation of the keyword query.
#[derive(Debug, Clone)]
pub struct InterpretationOutcome {
    /// `(keyword, table name)` binding of this interpretation.
    pub keyword_tables: Vec<(String, String)>,
    /// Alive candidate networks.
    pub answers: Vec<QueryInfo>,
    /// Dead candidate networks with their MPANs.
    pub non_answers: Vec<NonAnswerInfo>,
    /// Candidate networks a degraded run could not classify (budget
    /// exhaustion or abandoned probes); always empty on a complete run.
    pub unknown: Vec<QueryInfo>,
    /// Why probing stopped early, if a budget cap tripped during this
    /// interpretation's traversal.
    pub budget_exhausted: Option<Exhausted>,
    /// Phase 1/2 statistics.
    pub prune_stats: PruneStats,
    /// SQL queries executed by the Phase-3 traversal.
    pub sql_queries: u64,
    /// Wall-clock SQL time of the Phase-3 traversal.
    pub sql_time: Duration,
    /// Probe/inference counters of the Phase-3 traversal.
    pub probes: ProbeCounters,
    /// Wall-clock breakdown of this interpretation's phases (`mapping` and
    /// `total` are report-level and left zero here).
    pub timing: PhaseTiming,
}

/// The full report for a keyword query.
#[derive(Debug, Clone)]
pub struct DebugReport {
    /// Normalized keywords in query order.
    pub keywords: Vec<String>,
    /// Keywords that occur nowhere in the database (non-empty ⇒ no
    /// exploration happened, matching the paper's early exit).
    pub unknown_keywords: Vec<String>,
    /// Per-interpretation results.
    pub interpretations: Vec<InterpretationOutcome>,
    /// Time to map keywords to schema terms (Phase 1 lookup, §3.3).
    pub mapping_time: Duration,
    /// End-to-end time of the debug call.
    pub total_time: Duration,
    /// Per-phase wall-clock breakdown (mapping + per-interpretation phases
    /// summed + total).
    pub timing: PhaseTiming,
}

impl DebugReport {
    /// Total answer queries across interpretations.
    pub fn answer_count(&self) -> usize {
        self.interpretations.iter().map(|i| i.answers.len()).sum()
    }

    /// Total non-answer queries across interpretations.
    pub fn non_answer_count(&self) -> usize {
        self.interpretations.iter().map(|i| i.non_answers.len()).sum()
    }

    /// Total confirmed MPANs reported across all non-answers.
    pub fn mpan_count(&self) -> usize {
        self.interpretations
            .iter()
            .flat_map(|i| i.non_answers.iter())
            .map(|n| n.mpans.len())
            .sum()
    }

    /// Total unconfirmed (possible) MPANs across all non-answers; 0 on a
    /// complete run.
    pub fn possible_mpan_count(&self) -> usize {
        self.interpretations
            .iter()
            .flat_map(|i| i.non_answers.iter())
            .map(|n| n.possible_mpans.len())
            .sum()
    }

    /// Total candidate networks left unclassified across interpretations;
    /// 0 on a complete run.
    pub fn unknown_count(&self) -> usize {
        self.interpretations.iter().map(|i| i.unknown.len()).sum()
    }

    /// Whether every interpretation ran to completion: nothing unknown, no
    /// unconfirmed MPANs, no tripped budget. Always true on the happy path.
    pub fn is_complete(&self) -> bool {
        self.unknown_count() == 0
            && self.possible_mpan_count() == 0
            && self.interpretations.iter().all(|i| i.budget_exhausted.is_none())
    }

    /// Total SQL queries executed across interpretations.
    pub fn sql_queries(&self) -> u64 {
        self.interpretations.iter().map(|i| i.sql_queries).sum()
    }

    /// Total SQL time across interpretations.
    pub fn sql_time(&self) -> Duration {
        self.interpretations.iter().map(|i| i.sql_time).sum()
    }

    /// Probe/inference counters summed across interpretations.
    pub fn probes(&self) -> ProbeCounters {
        let mut sum = ProbeCounters::default();
        for i in &self.interpretations {
            sum.accumulate(i.probes);
        }
        sum
    }
}

impl fmt::Display for DebugReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "keyword query: {:?}", self.keywords)?;
        if !self.unknown_keywords.is_empty() {
            writeln!(
                f,
                "keywords not found anywhere in the database: {:?}",
                self.unknown_keywords
            )?;
            return writeln!(f, "(no exploration performed — \"and\" semantics)");
        }
        for (i, interp) in self.interpretations.iter().enumerate() {
            writeln!(f, "— interpretation #{}:", i + 1)?;
            for (kw, table) in &interp.keyword_tables {
                writeln!(f, "    {kw} -> {table}")?;
            }
            writeln!(
                f,
                "  {} answer quer{}, {} non-answer quer{} ({} SQL queries, {:?})",
                interp.answers.len(),
                if interp.answers.len() == 1 { "y" } else { "ies" },
                interp.non_answers.len(),
                if interp.non_answers.len() == 1 { "y" } else { "ies" },
                interp.sql_queries,
                interp.sql_time,
            )?;
            for a in &interp.answers {
                writeln!(f, "  ALIVE  (level {}) {}", a.level, a.sql)?;
                for t in &a.sample_tuples {
                    writeln!(f, "           e.g. {t}")?;
                }
            }
            for n in &interp.non_answers {
                writeln!(f, "  DEAD   (level {}) {}", n.query.level, n.query.sql)?;
                for m in &n.mpans {
                    writeln!(f, "    max alive sub-query (level {}): {}", m.level, m.sql)?;
                    for t in &m.sample_tuples {
                        writeln!(f, "           e.g. {t}")?;
                    }
                }
                for m in &n.possible_mpans {
                    writeln!(
                        f,
                        "    possibly-max alive sub-query (level {}): {}",
                        m.level, m.sql
                    )?;
                }
            }
            for u in &interp.unknown {
                writeln!(f, "  UNKNOWN (level {}) {}", u.level, u.sql)?;
            }
            if let Some(why) = interp.budget_exhausted {
                writeln!(f, "  (partial result: probe budget exhausted — {why})")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> DebugReport {
        DebugReport {
            keywords: vec!["saffron".into(), "candle".into()],
            unknown_keywords: vec![],
            interpretations: vec![InterpretationOutcome {
                keyword_tables: vec![
                    ("saffron".into(), "color".into()),
                    ("candle".into(), "ptype".into()),
                ],
                answers: vec![QueryInfo {
                    sql: "SELECT *".into(),
                    level: 3,
                    sample_tuples: vec!["item(1)".into()],
                }],
                non_answers: vec![NonAnswerInfo {
                    query: QueryInfo { sql: "SELECT * DEAD".into(), level: 3, sample_tuples: vec![] },
                    mpans: vec![
                        QueryInfo { sql: "SUB1".into(), level: 2, sample_tuples: vec![] },
                        QueryInfo { sql: "SUB2".into(), level: 1, sample_tuples: vec![] },
                    ],
                    possible_mpans: vec![],
                }],
                unknown: vec![],
                budget_exhausted: None,
                prune_stats: PruneStats::default(),
                sql_queries: 7,
                sql_time: Duration::from_millis(3),
                probes: ProbeCounters {
                    probes_executed: 7,
                    r2_inferences: 2,
                    ..ProbeCounters::default()
                },
                timing: PhaseTiming::default(),
            }],
            mapping_time: Duration::from_millis(1),
            total_time: Duration::from_millis(5),
            timing: PhaseTiming::default(),
        }
    }

    #[test]
    fn counters() {
        let r = sample_report();
        assert_eq!(r.answer_count(), 1);
        assert_eq!(r.non_answer_count(), 1);
        assert_eq!(r.mpan_count(), 2);
        assert_eq!(r.sql_queries(), 7);
        assert_eq!(r.sql_time(), Duration::from_millis(3));
        let p = r.probes();
        assert_eq!(p.probes_executed, 7);
        assert_eq!(p.r2_inferences, 2);
        assert_eq!(p.inferences(), 2);
    }

    #[test]
    fn display_renders_sections() {
        let text = sample_report().to_string();
        assert!(text.contains("interpretation #1"));
        assert!(text.contains("ALIVE"));
        assert!(text.contains("DEAD"));
        assert!(text.contains("max alive sub-query"));
        assert!(text.contains("saffron -> color"));
    }

    #[test]
    fn display_unknown_keywords_short_circuit() {
        let mut r = sample_report();
        r.unknown_keywords = vec!["zanzibar".into()];
        let text = r.to_string();
        assert!(text.contains("not found anywhere"));
        assert!(text.contains("zanzibar"));
        assert!(!text.contains("interpretation #1"));
    }

    #[test]
    fn degraded_sections_render_only_when_present() {
        let mut r = sample_report();
        assert!(r.is_complete());
        let text = r.to_string();
        assert!(!text.contains("UNKNOWN"), "complete reports show no degraded lines");
        assert!(!text.contains("possibly-max"));
        assert!(!text.contains("budget exhausted"));

        r.interpretations[0]
            .unknown
            .push(QueryInfo { sql: "U".into(), level: 3, sample_tuples: vec![] });
        r.interpretations[0].non_answers[0]
            .possible_mpans
            .push(QueryInfo { sql: "P".into(), level: 2, sample_tuples: vec![] });
        r.interpretations[0].budget_exhausted = Some(Exhausted::Probes);
        assert!(!r.is_complete());
        assert_eq!(r.unknown_count(), 1);
        assert_eq!(r.possible_mpan_count(), 1);

        let text = r.to_string();
        assert!(text.contains("UNKNOWN (level 3) U"));
        assert!(text.contains("possibly-max alive sub-query (level 2): P"));
        assert!(text.contains("max probes reached"));

        let md = r.to_markdown();
        assert!(md.contains("❓ **unknown** (level 3): `U`"));
        assert!(md.contains("possibly still works (level 2): `P`"));
        assert!(md.contains("Partial result: probe budget exhausted"));
    }
}

impl DebugReport {
    /// Renders the report as Markdown — the shape a dashboard or issue
    /// tracker integration would consume.
    pub fn to_markdown(&self) -> String {
        use std::fmt::Write as _;
        let mut md = String::new();
        let _ = writeln!(md, "# Keyword query `{}`\n", self.keywords.join(" "));
        if !self.unknown_keywords.is_empty() {
            let _ = writeln!(
                md,
                "**Keywords not found anywhere in the database:** {}\n",
                self.unknown_keywords.join(", ")
            );
            let _ = writeln!(md, "_No exploration performed (\"and\" semantics)._");
            return md;
        }
        let _ = writeln!(
            md,
            "{} answer(s), {} non-answer(s), {} explanation sub-queries; \
             {} SQL queries in {:?}.\n",
            self.answer_count(),
            self.non_answer_count(),
            self.mpan_count(),
            self.sql_queries(),
            self.sql_time()
        );
        for (i, interp) in self.interpretations.iter().enumerate() {
            let binding: Vec<String> = interp
                .keyword_tables
                .iter()
                .map(|(k, t)| format!("`{k}` → `{t}`"))
                .collect();
            let _ = writeln!(md, "## Interpretation {}: {}\n", i + 1, binding.join(", "));
            for a in &interp.answers {
                let _ = writeln!(md, "- ✅ **alive** (level {}): `{}`", a.level, a.sql);
                for t in &a.sample_tuples {
                    let _ = writeln!(md, "  - e.g. {t}");
                }
            }
            for n in &interp.non_answers {
                let _ = writeln!(md, "- ❌ **dead** (level {}): `{}`", n.query.level, n.query.sql);
                for m in &n.mpans {
                    let _ = writeln!(
                        md,
                        "  - still works (level {}): `{}`",
                        m.level, m.sql
                    );
                }
                for m in &n.possible_mpans {
                    let _ = writeln!(
                        md,
                        "  - possibly still works (level {}): `{}`",
                        m.level, m.sql
                    );
                }
            }
            for u in &interp.unknown {
                let _ = writeln!(md, "- ❓ **unknown** (level {}): `{}`", u.level, u.sql);
            }
            if let Some(why) = interp.budget_exhausted {
                let _ = writeln!(md, "\n_Partial result: probe budget exhausted ({why})._");
            }
            let _ = writeln!(md);
        }
        md
    }
}

#[cfg(test)]
mod markdown_tests {
    use super::*;
    use crate::prune::PruneStats;
    use std::time::Duration;

    #[test]
    fn markdown_contains_all_sections() {
        let r = DebugReport {
            keywords: vec!["saffron".into(), "candle".into()],
            unknown_keywords: vec![],
            interpretations: vec![InterpretationOutcome {
                keyword_tables: vec![("saffron".into(), "color".into())],
                answers: vec![QueryInfo {
                    sql: "A".into(),
                    level: 2,
                    sample_tuples: vec!["x".into()],
                }],
                non_answers: vec![NonAnswerInfo {
                    query: QueryInfo { sql: "D".into(), level: 3, sample_tuples: vec![] },
                    mpans: vec![QueryInfo { sql: "M".into(), level: 1, sample_tuples: vec![] }],
                    possible_mpans: vec![],
                }],
                unknown: vec![],
                budget_exhausted: None,
                prune_stats: PruneStats::default(),
                sql_queries: 4,
                sql_time: Duration::from_millis(1),
                probes: ProbeCounters::default(),
                timing: PhaseTiming::default(),
            }],
            mapping_time: Duration::ZERO,
            total_time: Duration::ZERO,
            timing: PhaseTiming::default(),
        };
        let md = r.to_markdown();
        assert!(md.starts_with("# Keyword query `saffron candle`"));
        assert!(md.contains("## Interpretation 1"));
        assert!(md.contains("✅ **alive** (level 2): `A`"));
        assert!(md.contains("❌ **dead** (level 3): `D`"));
        assert!(md.contains("still works (level 1): `M`"));
        assert!(md.contains("e.g. x"));
    }

    #[test]
    fn markdown_unknown_keywords_short_circuit() {
        let r = DebugReport {
            keywords: vec!["x".into()],
            unknown_keywords: vec!["x".into()],
            interpretations: vec![],
            mapping_time: Duration::ZERO,
            total_time: Duration::ZERO,
            timing: PhaseTiming::default(),
        };
        let md = r.to_markdown();
        assert!(md.contains("not found anywhere"));
        assert!(!md.contains("## Interpretation"));
    }
}
