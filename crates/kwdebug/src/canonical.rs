//! Canonical labeling of join-query networks (the paper's Algorithm 2).
//!
//! Lattice generation produces the same network through different extension
//! orders; duplicates must be eliminated offline. Candidate join-query
//! networks are trees, so isomorphism is decidable in linear time with an
//! AHU-style canonical code: root the tree at every vertex carrying the
//! minimum vertex label, compute a recursive code whose children are sorted,
//! and keep the lexicographically smallest string. Two networks are
//! isomorphic — same relation copies, same joins, same orientations — if and
//! only if their canonical labels are equal.
//!
//! Vertex label: the relation copy `(table, copy)`. Edge label: the foreign
//! key plus its orientation relative to the traversal direction, so the two
//! orientations of a self-relationship (citing vs cited) never collapse.

use crate::jnts::Jnts;

/// Computes the canonical label of a network.
///
/// The label is an unambiguous string: node ids and edge ids are decimal
/// numbers separated by the non-digit delimiters `[`, `|`, `]` and `:`, so
/// distinct trees can never render to the same string.
pub fn canonical_label(j: &Jnts) -> String {
    let n = j.node_count();
    // Vertex label ids: order by (table, copy).
    let vid = |i: usize| -> u64 {
        let ts = j.nodes()[i];
        (ts.table as u64) << 8 | ts.copy as u64
    };
    // Adjacency with direction-aware edge ids.
    let mut adj: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n];
    for e in j.edges() {
        let (a, b) = (e.a as usize, e.b as usize);
        // Edge id as seen when traversing a -> b, resp. b -> a.
        let id_ab = (e.fk as u64) << 1 | u64::from(e.a_is_from);
        let id_ba = (e.fk as u64) << 1 | u64::from(!e.a_is_from);
        adj[a].push((id_ab, b));
        adj[b].push((id_ba, a));
    }

    let min_label = (0..n).map(vid).min().expect("non-empty network");
    (0..n)
        .filter(|&r| vid(r) == min_label)
        .map(|r| get_code(r, usize::MAX, &adj, &vid))
        .min()
        .expect("at least one root")
}

/// Computes the canonical key of a network: a compact binary encoding with
/// the same equivalence classes as [`canonical_label`].
///
/// Lattice generation interns these byte keys in its duplicate-elimination
/// hash map instead of the decimal strings — same AHU construction (root at
/// every minimum-label vertex, sorted child codes, lexicographic minimum),
/// but each vertex/edge id is a fixed-width little-endian word and the
/// structural delimiters are single tag bytes, so keys are smaller and never
/// go through decimal formatting. Both encodings are injective on rooted
/// labeled trees, so `canonical_key(a) == canonical_key(b)` iff
/// `canonical_label(a) == canonical_label(b)` (pinned by tests below).
pub fn canonical_key(j: &Jnts) -> Vec<u8> {
    let n = j.node_count();
    let vid = |i: usize| -> u64 {
        let ts = j.nodes()[i];
        (ts.table as u64) << 8 | ts.copy as u64
    };
    let mut adj: Vec<Vec<(u64, usize)>> = vec![Vec::new(); n];
    for e in j.edges() {
        let (a, b) = (e.a as usize, e.b as usize);
        let id_ab = (e.fk as u64) << 1 | u64::from(e.a_is_from);
        let id_ba = (e.fk as u64) << 1 | u64::from(!e.a_is_from);
        adj[a].push((id_ab, b));
        adj[b].push((id_ba, a));
    }
    let min_label = (0..n).map(vid).min().expect("non-empty network");
    (0..n)
        .filter(|&r| vid(r) == min_label)
        .map(|r| get_key(r, usize::MAX, &adj, &vid))
        .min()
        .expect("at least one root")
}

/// Rooted canonical byte key of the subtree of a network hanging below
/// `root`, with the neighbour `parent` (and everything beyond it) excluded —
/// `usize::MAX` for the whole network rooted at `root`. Unlike
/// [`canonical_key`] the root is fixed by the caller, which is what a
/// cut-edge identifies: the subtree on one side of a cut is always re-entered
/// through the same vertex. `vid` supplies the vertex labels, so callers can
/// label vertices by binding (table + bound keyword) instead of `(table,
/// copy)` — isomorphic *bound* subtrees then share a key regardless of copy
/// numbers. `adj` must hold `(direction-aware edge id, neighbour)` pairs as
/// built by [`canonical_key`] (`(fk << 1) | is_from` seen from each side).
pub fn rooted_subtree_key(
    root: usize,
    parent: usize,
    adj: &[Vec<(u64, usize)>],
    vid: &dyn Fn(usize) -> u64,
) -> Vec<u8> {
    get_key(root, parent, adj, vid)
}

/// Direction-aware adjacency of a network, shared by [`canonical_key`] and
/// the cut-subtree keys of the evaluation cache: entry `adj[a]` holds
/// `((fk << 1) | a_is_from_here, neighbour)` per incident edge.
pub fn direction_aware_adjacency(j: &Jnts) -> Vec<Vec<(u64, usize)>> {
    let mut adj: Vec<Vec<(u64, usize)>> = vec![Vec::new(); j.node_count()];
    for e in j.edges() {
        let (a, b) = (e.a as usize, e.b as usize);
        let id_ab = (e.fk as u64) << 1 | u64::from(e.a_is_from);
        let id_ba = (e.fk as u64) << 1 | u64::from(!e.a_is_from);
        adj[a].push((id_ab, b));
        adj[b].push((id_ba, a));
    }
    adj
}

/// Byte tag opening a vertex code (the `[` of the string encoding).
const KEY_OPEN: u8 = 0x01;
/// Byte tag introducing one child edge (the `|`/`:` of the string encoding).
const KEY_EDGE: u8 = 0x02;
/// Byte tag closing a vertex code (the `]` of the string encoding).
const KEY_CLOSE: u8 = 0x03;

/// Recursive rooted byte code: `OPEN vid (EDGE eid childcode)* CLOSE`, with
/// child codes sorted bytewise.
fn get_key(
    u: usize,
    parent: usize,
    adj: &[Vec<(u64, usize)>],
    vid: &dyn Fn(usize) -> u64,
) -> Vec<u8> {
    let mut children: Vec<Vec<u8>> = adj[u]
        .iter()
        .filter(|&&(_, v)| v != parent)
        .map(|&(eid, v)| {
            let mut c = Vec::new();
            c.push(KEY_EDGE);
            c.extend_from_slice(&eid.to_le_bytes());
            c.extend_from_slice(&get_key(v, u, adj, vid));
            c
        })
        .collect();
    children.sort_unstable();
    let mut out = Vec::with_capacity(10 + children.iter().map(Vec::len).sum::<usize>());
    out.push(KEY_OPEN);
    out.extend_from_slice(&vid(u).to_le_bytes());
    for c in children {
        out.extend_from_slice(&c);
    }
    out.push(KEY_CLOSE);
    out
}

/// Recursive rooted code (the paper's `GetCode`).
fn get_code(
    u: usize,
    parent: usize,
    adj: &[Vec<(u64, usize)>],
    vid: &dyn Fn(usize) -> u64,
) -> String {
    let mut children: Vec<String> = adj[u]
        .iter()
        .filter(|&&(_, v)| v != parent)
        .map(|&(eid, v)| format!("{eid}:{}", get_code(v, u, adj, vid)))
        .collect();
    if children.is_empty() {
        return format!("[{}]", vid(u));
    }
    children.sort_unstable();
    format!("[{}|{}]", vid(u), children.join(""))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jnts::TupleSet;
    use crate::schema_graph::Incidence;

    fn inc(fk: usize, other: usize, local_is_from: bool) -> Incidence {
        Incidence { fk, other, local_is_from }
    }

    #[test]
    fn isomorphic_extension_orders_collapse() {
        // R1 ⋈ S2 built from R1 and built from S2 must agree.
        // fk 0: R.b -> S.c, so R is the "from" side.
        let from_r = Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 2);
        let from_s = Jnts::single(TupleSet::new(1, 2)).extend(0, inc(0, 0, false), 1);
        assert_eq!(canonical_label(&from_r), canonical_label(&from_s));
    }

    #[test]
    fn different_copies_differ() {
        let r1s1 = Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 1);
        let r1s2 = Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 2);
        assert_ne!(canonical_label(&r1s1), canonical_label(&r1s2));
    }

    #[test]
    fn self_relationship_orientations_differ() {
        // cites: fk 0 from "citing" column, fk 1 from "cited" column, both
        // between table 1 (cites) and table 0 (publication).
        // P1 cited-by C0 citing P2  vs  P1 citing C0 cited P2.
        let a = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, false), 0) // cites vertex references P1 via "citing"
            .extend(1, inc(1, 0, true), 2); // same cites vertex references P2 via "cited"
        let b = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(1, 1, false), 0)
            .extend(1, inc(0, 0, true), 2);
        assert_ne!(canonical_label(&a), canonical_label(&b));
        // But swapping which publication copy sits on which side of `a`'s
        // shape produces an isomorphic network only if copies also swap.
        let a_mirror = Jnts::single(TupleSet::new(0, 2))
            .extend(0, inc(1, 1, false), 0)
            .extend(1, inc(0, 0, true), 1);
        assert_eq!(canonical_label(&a), canonical_label(&a_mirror));
    }

    #[test]
    fn paper_example3_shape_invariance() {
        // Figure 5: two different presentations of the same star tree.
        // Star: center table 0 copy 0; leaves tables 1,2,3 via fks 0,1,2.
        let star1 = Jnts::single(TupleSet::new(0, 0))
            .extend(0, inc(0, 1, true), 0)
            .extend(0, inc(1, 2, true), 0)
            .extend(0, inc(2, 3, true), 0);
        // Same star, built leaf-first in a different order.
        let star2 = Jnts::single(TupleSet::new(3, 0))
            .extend(0, inc(2, 0, false), 0)
            .extend(1, inc(1, 2, true), 0)
            .extend(1, inc(0, 1, true), 0);
        assert_eq!(canonical_label(&star1), canonical_label(&star2));
    }

    #[test]
    fn repeated_free_copies_are_handled() {
        // person1 - writes0 - pub0 - writes0' - person2: two distinct vertices
        // with the same label (writes, copy 0).
        // fks: 0 = writes.person -> person, 1 = writes.pub -> publication.
        let path = Jnts::single(TupleSet::new(0, 1)) // person1
            .extend(0, inc(0, 2, false), 0) // writes0
            .extend(1, inc(1, 1, true), 0) // pub0
            .extend(2, inc(1, 2, false), 0) // writes0'
            .extend(3, inc(0, 0, true), 2); // person2
        // Mirror image: person2 first.
        let mirror = Jnts::single(TupleSet::new(0, 2))
            .extend(0, inc(0, 2, false), 0)
            .extend(1, inc(1, 1, true), 0)
            .extend(2, inc(1, 2, false), 0)
            .extend(3, inc(0, 0, true), 1);
        assert_eq!(canonical_label(&path), canonical_label(&mirror));
    }

    #[test]
    fn path_vs_star_differ() {
        let path = Jnts::single(TupleSet::new(0, 0))
            .extend(0, inc(0, 0, true), 0)
            .extend(1, inc(0, 0, true), 0);
        let star = Jnts::single(TupleSet::new(0, 0))
            .extend(0, inc(0, 0, true), 0)
            .extend(0, inc(0, 0, true), 0);
        assert_ne!(canonical_label(&path), canonical_label(&star));
    }

    #[test]
    fn label_is_deterministic() {
        let j = Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 0);
        assert_eq!(canonical_label(&j), canonical_label(&j.clone()));
    }

    #[test]
    fn byte_key_matches_label_equivalence() {
        // The byte key must induce exactly the same equivalence classes as
        // the string label: agree on every isomorphic pair and every
        // non-isomorphic pair exercised above.
        let networks = vec![
            Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 2),
            Jnts::single(TupleSet::new(1, 2)).extend(0, inc(0, 0, false), 1),
            Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 1),
            Jnts::single(TupleSet::new(0, 1))
                .extend(0, inc(0, 1, false), 0)
                .extend(1, inc(1, 0, true), 2),
            Jnts::single(TupleSet::new(0, 1))
                .extend(0, inc(1, 1, false), 0)
                .extend(1, inc(0, 0, true), 2),
            Jnts::single(TupleSet::new(0, 2))
                .extend(0, inc(1, 1, false), 0)
                .extend(1, inc(0, 0, true), 1),
            Jnts::single(TupleSet::new(0, 0))
                .extend(0, inc(0, 0, true), 0)
                .extend(1, inc(0, 0, true), 0),
            Jnts::single(TupleSet::new(0, 0))
                .extend(0, inc(0, 0, true), 0)
                .extend(0, inc(0, 0, true), 0),
        ];
        for a in &networks {
            for b in &networks {
                assert_eq!(
                    canonical_label(a) == canonical_label(b),
                    canonical_key(a) == canonical_key(b),
                    "label and key disagree on {a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn byte_key_is_compact_and_deterministic() {
        let j = Jnts::single(TupleSet::new(0, 1)).extend(0, inc(0, 1, true), 0);
        let k = canonical_key(&j);
        assert_eq!(k, canonical_key(&j.clone()));
        // OPEN + vid + (EDGE + eid + leaf code) + CLOSE.
        assert_eq!(k.len(), 1 + 8 + (1 + 8 + 10) + 1);
        assert_eq!(k[0], KEY_OPEN);
        assert_eq!(*k.last().unwrap(), KEY_CLOSE);
    }
}
