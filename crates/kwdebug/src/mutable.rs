//! Mutable-database coordinator: the single writer over the epoch-stamped
//! stack.
//!
//! Everything below the debugger treats a database as an immutable snapshot:
//! probes pin the epoch of the `&Database` they borrow, cache entries are
//! stamped with the epoch they were computed at, and the inverted index
//! serves merge-on-read views synchronized to an applied epoch. This module
//! is the one place writes are allowed to happen, and its job is ordering:
//! every write flows
//!
//! 1. into the [`Database`] (which bumps the epoch and records an
//!    [`relengine::EpochDelta`] dirty set),
//! 2. through [`InvertedIndex::apply_deltas`] (incremental delta postings,
//!    threshold compaction — never a drop-and-rebuild),
//! 3. through [`SharedEvalCache::invalidate`] (selective eviction of exactly
//!    the entries the delta's dirty sets can have changed).
//!
//! Readers never observe a torn state because the coordinator only mutates
//! while it holds the **only** reference to the snapshot: a write with
//! outstanding [`SharedParts`] handles or sessions is refused with
//! [`KwError::BadConfig`] rather than silently forking the database
//! (a [`Database`] clone gets a fresh `db_id`, which would orphan every
//! cache entry). Quiesce — drop sessions — write — re-issue parts: epochs
//! stay monotonic and the `(db_id, epoch)` cache identity stays continuous,
//! which is what makes warm-cache incremental maintenance beat rebuilding
//! the world (benchmarked by E19, `exp_mutate`).
//!
//! Schema is fixed for the lifetime of the coordinator (writes are DML
//! only), so the [`SchemaGraph`] and the offline [`Lattice`] — both pure
//! functions of the schema — are built once and never refreshed.

use std::sync::Arc;

use relengine::{Database, RowId, TableId, Value};
use textindex::InvertedIndex;

use crate::debugger::{DebugConfig, NonAnswerDebugger, SharedParts};
use crate::error::KwError;
use crate::estimate::OnlinePa;
use crate::evalcache::SharedEvalCache;
use crate::lattice::Lattice;
use crate::schema_graph::SchemaGraph;

/// A database plus its derived read structures under single-writer mutation.
///
/// See the [module docs](crate::mutable) for the write-path contract. Debug
/// sessions are built over snapshots: [`MutableDatabase::parts`] hands out a
/// [`SharedParts`] pinned at the current epoch, and
/// [`MutableDatabase::session`] is the one-call shortcut.
pub struct MutableDatabase {
    db: Arc<Database>,
    index: Arc<InvertedIndex>,
    graph: Arc<SchemaGraph>,
    lattice: Arc<Lattice>,
    /// The process-wide evaluation cache kept epoch-current by the write
    /// path, when sharing is enabled (`None` = sessions get private caches,
    /// each stamped at its snapshot's epoch).
    shared_cache: Option<SharedEvalCache>,
    /// Cross-epoch online `p_a` estimator. Verdict statistics survive writes
    /// deliberately: they only ever tune the score-based heuristic's probe
    /// order, never its output, so slightly-stale priors are harmless.
    pa_stats: Arc<OnlinePa>,
}

impl MutableDatabase {
    /// Builds the coordinator over `db`: finalizes it, builds the inverted
    /// index, the schema graph and the offline lattice for `max_joins`.
    pub fn new(mut db: Database, max_joins: usize) -> Result<Self, KwError> {
        if max_joins > 12 {
            return Err(KwError::BadConfig(format!(
                "max_joins = {max_joins} would generate an intractably large lattice"
            )));
        }
        db.finalize();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        Ok(MutableDatabase {
            db: Arc::new(db),
            index: Arc::new(index),
            graph: Arc::new(graph),
            lattice: Arc::new(lattice),
            shared_cache: None,
            pa_stats: Arc::new(OnlinePa::new()),
        })
    }

    /// The current database snapshot.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The inverted index, synchronized to [`MutableDatabase::epoch`].
    pub fn index(&self) -> &InvertedIndex {
        &self.index
    }

    /// The current epoch (bumped by every successful write).
    pub fn epoch(&self) -> u64 {
        self.db.epoch()
    }

    /// Process-unique id of the coordinated database.
    pub fn db_id(&self) -> u64 {
        self.db.db_id()
    }

    /// Resolves a table name to its id.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.db.table_id(name)
    }

    /// Creates and attaches a [`SharedEvalCache`] stamped with the current
    /// `(db_id, epoch)` identity, bounded by `budget_bytes` payload bytes
    /// (`None` = unbounded). The write path keeps it epoch-current from then
    /// on; sessions built from later [`MutableDatabase::parts`] share it.
    pub fn share_eval_cache(&mut self, budget_bytes: Option<u64>) -> SharedEvalCache {
        let cache = SharedEvalCache::new(self.db.db_id(), self.db.epoch(), budget_bytes);
        self.shared_cache = Some(cache.clone());
        cache
    }

    /// The attached shared cache, if any.
    pub fn shared_cache(&self) -> Option<&SharedEvalCache> {
        self.shared_cache.as_ref()
    }

    /// Sets the pending-row threshold at which the index folds delta
    /// postings into its base (see
    /// [`InvertedIndex::set_compaction_threshold`]).
    pub fn set_compaction_threshold(&mut self, pending_rows: usize) {
        self.index_mut().set_compaction_threshold(pending_rows);
    }

    /// Appends `rows` to `table`, returning their new row ids. One epoch per
    /// call; the index and the shared cache are current when this returns.
    pub fn append_rows(
        &mut self,
        table: TableId,
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<RowId>, KwError> {
        let ids = self.db_mut()?.append_rows(table, rows)?;
        self.sync();
        Ok(ids)
    }

    /// Replaces row `id` of `table` in place, returning the new epoch.
    pub fn update_row(
        &mut self,
        table: TableId,
        id: RowId,
        values: Vec<Value>,
    ) -> Result<u64, KwError> {
        self.db_mut()?.update_row(table, id, values)?;
        self.sync();
        Ok(self.db.epoch())
    }

    /// Tombstones row `id` of `table`, returning the new epoch. Row ids are
    /// positional and never reused, so surviving ids are unchanged.
    pub fn delete_row(&mut self, table: TableId, id: RowId) -> Result<u64, KwError> {
        self.db_mut()?.delete_row(table, id)?;
        self.sync();
        Ok(self.db.epoch())
    }

    /// A [`SharedParts`] snapshot pinned at the current epoch. Sessions built
    /// from it (and the handle itself) block writes until dropped — the
    /// single-writer contract.
    pub fn parts(&self) -> SharedParts {
        SharedParts::assemble(
            Arc::clone(&self.db),
            Arc::clone(&self.index),
            Arc::clone(&self.graph),
            Arc::clone(&self.lattice),
            self.shared_cache.clone(),
            Arc::clone(&self.pa_stats),
        )
    }

    /// Builds a debug session over the current snapshot
    /// ([`NonAnswerDebugger::from_shared`] over [`MutableDatabase::parts`]).
    /// `config.max_joins` must match the lattice this coordinator was built
    /// with.
    pub fn session(&self, config: DebugConfig) -> Result<NonAnswerDebugger, KwError> {
        NonAnswerDebugger::from_shared(self.parts(), config)
    }

    /// Exclusive access to the database, or a refusal while snapshots are
    /// outstanding.
    fn db_mut(&mut self) -> Result<&mut Database, KwError> {
        Arc::get_mut(&mut self.db).ok_or_else(|| {
            KwError::BadConfig(
                "database snapshot has outstanding holders; \
                 drop sessions and parts before writing"
                    .into(),
            )
        })
    }

    /// Exclusive access to the index. Snapshot holders always hold the
    /// database too, so after a successful [`MutableDatabase::db_mut`] this
    /// is uncontended; the clone fallback covers any other holder.
    fn index_mut(&mut self) -> &mut InvertedIndex {
        if Arc::get_mut(&mut self.index).is_none() {
            self.index = Arc::new((*self.index).clone());
        }
        Arc::get_mut(&mut self.index).expect("index arc is uniquely held")
    }

    /// Brings the derived read structures up to the database's epoch: the
    /// index absorbs pending deltas, then the shared cache (if any) evicts
    /// what those deltas dirtied. Order matters — the cache's recomputation
    /// path reads the index, so the index must already be current.
    fn sync(&mut self) {
        let db = Arc::clone(&self.db);
        self.index_mut().apply_deltas(&db);
        if let Some(cache) = &self.shared_cache {
            cache.invalidate(&db);
        }
    }
}

impl std::fmt::Debug for MutableDatabase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MutableDatabase")
            .field("db_id", &self.db.db_id())
            .field("epoch", &self.db.epoch())
            .field("tables", &self.db.table_count())
            .field("pending_delta_rows", &self.index.pending_delta_rows())
            .field("compactions", &self.index.compactions())
            .field("shared_cache", &self.shared_cache.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder};

    /// color ← item: one saffron color, one candle item pointing at red.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
        db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(1), Value::text("wax candle"), Value::Int(2)],
        )
        .unwrap();
        db
    }

    fn config() -> DebugConfig {
        DebugConfig { max_joins: 2, eval_cache: true, ..DebugConfig::default() }
    }

    #[test]
    fn writes_flow_through_index_and_cache() {
        let mut m = MutableDatabase::new(db(), 2).unwrap();
        let store = m.share_eval_cache(None);
        assert_eq!(m.epoch(), 0);

        // Warm the cache: "saffron candle" is a non-answer.
        let before = m.session(config()).unwrap().debug("saffron candle").unwrap();
        assert_eq!(before.non_answer_count(), 1);
        assert!(store.bytes() > 0, "session warmed the shared store");

        // Append a candle pointing at the saffron color; the non-answer must
        // become an answer (through the join — the new text itself does not
        // mention saffron, so the interpretation set stays put).
        let item = m.table_id("item").unwrap();
        let ids = m
            .append_rows(
                item,
                vec![vec![Value::Int(2), Value::text("glow candle"), Value::Int(1)]],
            )
            .unwrap();
        assert_eq!(ids, vec![1]);
        assert_eq!(m.epoch(), 1);
        assert_eq!(m.index().applied_epoch(), 1, "index absorbed the delta");
        assert_eq!(store.epoch(), 1, "cache re-pinned to the new epoch");
        assert!(store.invalidated() > 0, "dirtied entries evicted");

        let after = m.session(config()).unwrap().debug("saffron candle").unwrap();
        assert_eq!(after.answer_count(), 1, "the appended row answers the query");
        assert_eq!(after.non_answer_count(), 0);
    }

    #[test]
    fn delete_kills_an_answer() {
        let mut m = MutableDatabase::new(db(), 2).unwrap();
        m.share_eval_cache(None);
        let item = m.table_id("item").unwrap();
        // A second candle keeps the keyword mapped after the delete below.
        m.append_rows(
            item,
            vec![vec![Value::Int(2), Value::text("brass candle holder"), Value::Int(1)]],
        )
        .unwrap();
        let before = m.session(config()).unwrap().debug("red candle").unwrap();
        assert_eq!(before.answer_count(), 1);

        m.delete_row(item, 0).unwrap();
        let after = m.session(config()).unwrap().debug("red candle").unwrap();
        assert_eq!(after.answer_count(), 0, "deleted row no longer joins");
        assert_eq!(after.non_answer_count(), 1);
    }

    #[test]
    fn update_moves_a_keyword() {
        let mut m = MutableDatabase::new(db(), 2).unwrap();
        m.share_eval_cache(None);
        let item = m.table_id("item").unwrap();
        // Re-point the candle from red to saffron.
        let epoch = m
            .update_row(
                item,
                0,
                vec![Value::Int(1), Value::text("wax candle"), Value::Int(1)],
            )
            .unwrap();
        assert_eq!(epoch, 1);
        let r = m.session(config()).unwrap().debug("saffron candle").unwrap();
        assert_eq!(r.answer_count(), 1);
    }

    #[test]
    fn writes_refused_while_snapshots_outstanding() {
        let mut m = MutableDatabase::new(db(), 2).unwrap();
        let session = m.session(config()).unwrap();
        let item = m.table_id("item").unwrap();
        let err = m.delete_row(item, 0);
        assert!(matches!(err, Err(KwError::BadConfig(_))), "live session blocks writes");
        drop(session);
        m.delete_row(item, 0).expect("write proceeds once quiesced");
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn reports_match_a_fresh_debugger_after_mutations() {
        let mut m = MutableDatabase::new(db(), 2).unwrap();
        m.share_eval_cache(None);
        let item = m.table_id("item").unwrap();
        let color = m.table_id("color").unwrap();
        // Warm, mutate, warm again — entries from epoch 0 survive exactly
        // when clean.
        m.session(config()).unwrap().debug("saffron candle").unwrap();
        m.append_rows(color, vec![vec![Value::Int(3), Value::text("teal")]]).unwrap();
        m.append_rows(
            item,
            vec![vec![Value::Int(2), Value::text("teal candle"), Value::Int(3)]],
        )
        .unwrap();
        m.delete_row(item, 0).unwrap();

        let fresh = NonAnswerDebugger::new(m.database().clone(), config()).unwrap();
        for q in ["saffron candle", "teal candle", "red candle"] {
            let a = m.session(config()).unwrap().debug(q).unwrap();
            let b = fresh.debug(q).unwrap();
            assert_eq!(a.answer_count(), b.answer_count(), "{q}");
            assert_eq!(a.non_answer_count(), b.non_answer_count(), "{q}");
            assert_eq!(a.mpan_count(), b.mpan_count(), "{q}");
        }
    }
}
