//! # kwdebug — debugging non-answers in keyword search over structured data
//!
//! This crate is the core reproduction of *On Debugging Non-Answers in
//! Keyword Search Systems* (Baid, Wu, Sun, Doan, Naughton; EDBT 2015).
//!
//! A KWS-S system maps a keyword query `K` to many structured SQL queries
//! (candidate networks); when all of them return zero tuples the user sees
//! "no results found" and the developer has nothing to go on. This crate
//! implements the paper's four-phase pipeline that exposes *why*:
//!
//! * **Phase 0** ([`lattice`]): offline generation of a lattice of all
//!   join-query trees up to `maxJoins` joins over relation copies
//!   `R_0..R_{m+1}` (Algorithm 1), deduplicated with a canonical tree
//!   labeling ([`canonical`], Algorithm 2).
//! * **Phase 1** ([`binding`], [`prune`]): keywords are mapped to relations
//!   through an inverted index and bound to relation copies; lattice nodes
//!   containing unbound copies are pruned.
//! * **Phase 2** ([`mtn`]): identification of Minimal Total Nodes (MTNs) —
//!   the candidate networks — and restriction to MTNs plus descendants.
//! * **Phase 3** ([`traversal`]): classification of each MTN as alive
//!   (answer query) or dead (non-answer query) and discovery of each dead
//!   MTN's Maximal Partially Alive Nodes (MPANs) — the maximal non-empty
//!   sub-queries that explain the non-answer — while minimizing the number
//!   of SQL queries executed. Five strategies: bottom-up / top-down, both
//!   with and without cross-MTN reuse, and the score-based greedy heuristic
//!   of §2.5.3.
//!
//! The two baselines of §3.8 — *Return Nothing* and *Return Everything* —
//! live in [`baseline`]. The end-to-end system (the public entry point) is
//! [`debugger::NonAnswerDebugger`].
//!
//! ## Paper-to-module map
//!
//! | Paper concept | Where | Module |
//! |---|---|---|
//! | Join network of tuple sets (JNTS), §2.2 | tree-shaped join query over relation copies | [`jnts`] |
//! | Schema graph `G_S`, §2.2 | tables + foreign keys as an undirected graph | [`schema_graph`] |
//! | Lattice generation, Algorithm 1 | level-by-level expansion up to `maxJoins` | [`lattice`] |
//! | Canonical labels, Algorithm 2 | AHU-style tree canonization for dedup | [`canonical`] |
//! | Lattice persistence (offline Phase 0) | stable binary save/load | [`lattice_io`] |
//! | Keyword → relation mapping, §2.3/§3.3 | inverted-index lookup, interpretations | [`binding`] |
//! | Phase-1 pruning + Phase-2 MTNs, §2.4 | keyword-bound sub-lattice, minimal total nodes | [`prune`], [`mtn`] |
//! | Aliveness probe (`exists` SQL), §2.5 | SQL generation + execution + memo | [`oracle`] |
//! | Rules R1/R2 and traversals, §2.5 | BU, TD, BUWR (Algorithm 3), TDWR, brute | [`traversal`] |
//! | Score-based heuristic, §2.5.3 | greedy expected-benefit probe selection | [`traversal`] |
//! | Output `A(K) ∪ N(K) ∪ M(K)`, §2.1 | answers, non-answers, MPANs, SQL text | [`report`] |
//! | RN / RE baselines, §3.8 | no-lattice comparison points | [`baseline`] |
//! | Interactive debugging (extension) | step-wise probe/assert session | [`session`], [`diagnose`] |
//! | `p_a` estimation (future work, §4) | aliveness prior from catalog stats | [`estimate`] |
//! | MPAN filters (future work, §1) | post-hoc filtering/prioritization | [`filter`] |
//! | Experiment instrumentation, §3 | probe/inference counters, phase timings | [`metrics`] |
//! | Probe budgets / retries (extension) | caps, deadlines, backoff, degraded mode | [`budget`] |
//! | Fault injection (extension) | deterministic chaos harness for probes | [`relengine::chaos`] |
//! | Parallel probe scheduling (extension) | work-stealing wave scheduler, sharded memo | [`parallel`] |
//! | Cross-probe evaluation cache (extension) | shared keyword selections, subtree semi-join value-sets | [`evalcache`] |
//! | Pooled traversal scratch (extension) | reusable per-query workspaces, zero steady-state allocation | [`workspace`] |
//! | Multi-tenant serving (extension) | shared substrate ([`SharedParts`]), per-session debuggers over TCP | [`debugger`], `kwserve` |
//! | Mutable databases (extension) | epoch-stamped writes, incremental index deltas, layered invalidation | [`mutable`], [`evalcache`] |
//! | Cross-session batched probing (extension) | merged dispatch waves, in-flight probe coalescing | [`batch`] |
//!
//! ## Observability
//!
//! Everything the paper's evaluation measures is counted by [`metrics`]:
//! the [`oracle`] counts SQL probes, probe time, scanned tuples and memo
//! hits; each traversal counts R1/R2 inferences and reuse hits; and
//! [`debugger`] stamps per-phase wall-clock timings
//! ([`metrics::PhaseTiming`]) onto every [`report::DebugReport`]. The
//! invariant `probes.probes_executed == ExecStats::queries` ties the
//! counters to the engine's ground truth and is asserted by the integration
//! tests. [`metrics::MetricsSnapshot::to_json`] renders one stable JSON
//! record per experiment run for scripted consumption.
//!
//! ```
//! use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
//! use kwdebug::traversal::StrategyKind;
//! # use relengine::{DatabaseBuilder, DataType, Value};
//! # let mut b = DatabaseBuilder::new();
//! # b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
//! # b.table("item").column("id", DataType::Int).column("name", DataType::Text)
//! #     .column("color_id", DataType::Int).primary_key("id");
//! # b.foreign_key("item", "color_id", "color", "id").unwrap();
//! # let mut db = b.finish().unwrap();
//! # db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
//! # db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
//! # db.insert_values("item", vec![Value::Int(1), Value::text("vanilla candle"), Value::Int(2)]).unwrap();
//! # db.finalize();
//! let debugger = NonAnswerDebugger::new(db, DebugConfig {
//!     max_joins: 2,
//!     strategy: StrategyKind::ScoreBasedHeuristic,
//!     ..DebugConfig::default()
//! }).unwrap();
//! let report = debugger.debug("saffron candle").unwrap();
//! // "saffron candle" has no answers, but its single-keyword sub-queries live:
//! assert!(report.answer_count() == 0);
//! assert!(report.non_answer_count() > 0);
//! ```

#![warn(missing_docs)]

pub mod baseline;
pub mod batch;
pub mod binding;
pub mod budget;
pub mod canonical;
pub mod debugger;
pub mod diagnose;
pub mod error;
pub mod estimate;
pub mod evalcache;
pub mod filter;
pub mod jnts;
pub mod lattice;
pub mod lattice_io;
pub mod metrics;
pub mod mtn;
pub mod mutable;
pub mod oracle;
pub mod parallel;
pub mod prune;
pub mod report;
pub mod schema_graph;
pub mod session;
pub mod traversal;
pub mod workspace;

pub use batch::{BatchConfig, WaveExchange};
pub use budget::{Exhausted, ProbeBudget, RetryPolicy};
pub use debugger::{DebugConfig, NonAnswerDebugger, SharedParts};
pub use mutable::MutableDatabase;
pub use error::KwError;
pub use estimate::OnlinePa;
pub use evalcache::SharedEvalCache;
pub use jnts::{CopyIdx, Jnts, TupleSet};
pub use report::DebugReport;
pub use schema_graph::SchemaGraph;
