//! # kwdebug — debugging non-answers in keyword search over structured data
//!
//! This crate is the core reproduction of *On Debugging Non-Answers in
//! Keyword Search Systems* (Baid, Wu, Sun, Doan, Naughton; EDBT 2015).
//!
//! A KWS-S system maps a keyword query `K` to many structured SQL queries
//! (candidate networks); when all of them return zero tuples the user sees
//! "no results found" and the developer has nothing to go on. This crate
//! implements the paper's four-phase pipeline that exposes *why*:
//!
//! * **Phase 0** ([`lattice`]): offline generation of a lattice of all
//!   join-query trees up to `maxJoins` joins over relation copies
//!   `R_0..R_{m+1}` (Algorithm 1), deduplicated with a canonical tree
//!   labeling ([`canonical`], Algorithm 2).
//! * **Phase 1** ([`binding`], [`prune`]): keywords are mapped to relations
//!   through an inverted index and bound to relation copies; lattice nodes
//!   containing unbound copies are pruned.
//! * **Phase 2** ([`mtn`]): identification of Minimal Total Nodes (MTNs) —
//!   the candidate networks — and restriction to MTNs plus descendants.
//! * **Phase 3** ([`traversal`]): classification of each MTN as alive
//!   (answer query) or dead (non-answer query) and discovery of each dead
//!   MTN's Maximal Partially Alive Nodes (MPANs) — the maximal non-empty
//!   sub-queries that explain the non-answer — while minimizing the number
//!   of SQL queries executed. Five strategies: bottom-up / top-down, both
//!   with and without cross-MTN reuse, and the score-based greedy heuristic
//!   of §2.5.3.
//!
//! The two baselines of §3.8 — *Return Nothing* and *Return Everything* —
//! live in [`baseline`]. The end-to-end system (the public entry point) is
//! [`debugger::NonAnswerDebugger`].
//!
//! ```
//! use kwdebug::debugger::{DebugConfig, NonAnswerDebugger};
//! use kwdebug::traversal::StrategyKind;
//! # use relengine::{DatabaseBuilder, DataType, Value};
//! # let mut b = DatabaseBuilder::new();
//! # b.table("color").column("id", DataType::Int).column("name", DataType::Text).primary_key("id");
//! # b.table("item").column("id", DataType::Int).column("name", DataType::Text)
//! #     .column("color_id", DataType::Int).primary_key("id");
//! # b.foreign_key("item", "color_id", "color", "id").unwrap();
//! # let mut db = b.finish().unwrap();
//! # db.insert_values("color", vec![Value::Int(1), Value::text("saffron")]).unwrap();
//! # db.insert_values("color", vec![Value::Int(2), Value::text("red")]).unwrap();
//! # db.insert_values("item", vec![Value::Int(1), Value::text("vanilla candle"), Value::Int(2)]).unwrap();
//! # db.finalize();
//! let debugger = NonAnswerDebugger::new(db, DebugConfig {
//!     max_joins: 2,
//!     strategy: StrategyKind::ScoreBasedHeuristic,
//!     ..DebugConfig::default()
//! }).unwrap();
//! let report = debugger.debug("saffron candle").unwrap();
//! // "saffron candle" has no answers, but its single-keyword sub-queries live:
//! assert!(report.answer_count() == 0);
//! assert!(report.non_answer_count() > 0);
//! ```

pub mod baseline;
pub mod binding;
pub mod canonical;
pub mod debugger;
pub mod diagnose;
pub mod error;
pub mod estimate;
pub mod filter;
pub mod jnts;
pub mod lattice;
pub mod lattice_io;
pub mod mtn;
pub mod oracle;
pub mod prune;
pub mod report;
pub mod schema_graph;
pub mod session;
pub mod traversal;

pub use debugger::{DebugConfig, NonAnswerDebugger};
pub use error::KwError;
pub use jnts::{CopyIdx, Jnts, TupleSet};
pub use report::DebugReport;
pub use schema_graph::SchemaGraph;
