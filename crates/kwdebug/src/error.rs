//! Error type for the kwdebug pipeline.

use std::fmt;

use relengine::EngineError;

use crate::budget::Exhausted;

/// Errors surfaced by lattice construction and query debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KwError {
    /// The underlying engine rejected a plan or catalog operation.
    Engine(EngineError),
    /// The keyword query was empty after tokenization.
    EmptyQuery,
    /// Configuration is out of range (e.g. `max_joins == 0` overflow bounds).
    BadConfig(String),
    /// The probe budget ran out mid-operation. Traversals catch this and
    /// degrade to a partial report; it only escapes to callers that demand a
    /// definite verdict (e.g. [`crate::oracle::AlivenessOracle::is_alive`]).
    BudgetExhausted(Exhausted),
    /// An interactive assertion contradicts what is already known (e.g.
    /// marking a node dead whose descendant was observed alive).
    ConflictingVerdict(String),
    /// An internal invariant was violated; indicates a bug, reported rather
    /// than panicking so callers can degrade gracefully.
    Internal(String),
}

impl fmt::Display for KwError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KwError::Engine(e) => write!(f, "engine error: {e}"),
            KwError::EmptyQuery => write!(f, "keyword query is empty"),
            KwError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
            KwError::BudgetExhausted(why) => write!(f, "probe budget exhausted: {why}"),
            KwError::ConflictingVerdict(msg) => write!(f, "conflicting verdict: {msg}"),
            KwError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for KwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KwError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for KwError {
    fn from(e: EngineError) -> Self {
        KwError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = KwError::from(EngineError::UnknownTable("t".into()));
        assert!(e.to_string().contains("unknown table"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&KwError::EmptyQuery).is_none());
        assert_eq!(KwError::EmptyQuery.to_string(), "keyword query is empty");
        assert_eq!(
            KwError::BudgetExhausted(Exhausted::Deadline).to_string(),
            "probe budget exhausted: deadline passed"
        );
    }
}
