//! Cross-session batched probing: merge concurrent sessions' frontiers into
//! shared dispatch waves.
//!
//! PR 8's process-wide [`crate::evalcache::SharedEvalCache`] deduplicates
//! overlapping probes *after* the first session has paid for the execution.
//! This module removes the other half of the redundancy: probes that are
//! simultaneously **in flight** across sessions. Concurrent sessions on the
//! same `(db_id, epoch)` park each wave in a shared [`WaveExchange`] for up
//! to a configured window; probes are canonicalized by the same
//! [`crate::evalcache::network_key`] the layer-3 verdict cache uses, equal
//! keys coalesce, and each distinct probe executes exactly once — on the
//! PR 3 work-stealing pool of the first session that submitted it (the
//! *owner*). Every other subscriber (a *follower*) receives the verdict in
//! flight and books it like a memo hit (`coalesced_probes`), never as an
//! execution.
//!
//! **Determinism** (DESIGN.md §14): the batched driver replays verdicts in
//! each session's original dispatch-slot order, so per-session reports are
//! identical to unbatched runs. Three properties make this sound:
//!
//! * *Wave independence* (§8) — no verdict in a wave can classify another
//!   member, so within a wave the apply order is the only order that
//!   matters, and the driver preserves it per session.
//! * *Ground-truth verdicts* — two probes with equal canonical keys on the
//!   same database snapshot are the same query; the owner's verdict is
//!   bit-for-bit the verdict the follower's own engine would have produced.
//! * *Deterministic budgets* — followers reserve their own
//!   [`crate::budget::BudgetGate`] slot at their original dispatch position
//!   *before* parking, so a `max_probes` budget trips at exactly the node
//!   where the unbatched run would have stopped.
//!
//! **Liveness**: a session always executes and publishes *all* probes it
//! owns before waiting on any follower cell, so two sessions can never wait
//! on each other. If an owner dies mid-wave (panic, hard failure), an RAII
//! guard orphans its unpublished cells and each follower re-executes the
//! probe on its own pool — the reservation it already holds makes that a
//! pure fallback to unbatched behavior. The exchange never outlives its
//! sessions: registrations are RAII (one `BatchTicket` per attached
//! debugger, for the debugger's lifetime), groups are removed when their
//! last session leaves, and the per-round cell map is cleared at every
//! flush. A session leaving mid-round re-checks the everyone-parked flush
//! condition, so parked peers never wait on a session that is gone.
//!
//! Single-session traffic (fewer than [`BatchConfig::min_sessions`]
//! *registered* sessions on the group) bypasses the exchange entirely — no
//! lock, no parking, gauges untouched — so the uncontended fast path costs
//! one atomic load per wave. Registration is session-lifetime rather than
//! call-lifetime deliberately: real requests are often far shorter than the
//! scheduling jitter between them, so "who is in a debug call *right now*"
//! would almost never overlap — what predicts a mergeable peer is "who is
//! attached and sending traffic". The price is that a wave parked while a
//! registered peer sits idle waits out the window; [`BatchConfig::window_us`]
//! is exactly that worst-case latency tax, and single-registration groups
//! never pay it.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use relengine::ExecStats;

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::{AlivenessOracle, Probe};
use crate::parallel::{Completion, Job, PoolState};
use crate::prune::PrunedLattice;
use crate::traversal::Frontier;

/// Tuning knobs for the cross-session wave exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchConfig {
    /// How long a parked wave waits for other sessions to join the round
    /// before a leader flushes it, in microseconds. The worst-case latency
    /// a batched wave can add to a session.
    pub window_us: u64,
    /// Probe count at which a round flushes immediately, without waiting
    /// out the window.
    pub max_wave: usize,
    /// Minimum registered sessions on a `(db_id, epoch)` group before waves
    /// park at all; below this the exchange is bypassed and traffic behaves
    /// exactly as if batching were off.
    pub min_sessions: usize,
}

impl Default for BatchConfig {
    fn default() -> BatchConfig {
        BatchConfig { window_us: 500, max_wave: 256, min_sessions: 2 }
    }
}

impl BatchConfig {
    /// Validates the knobs (a zero `max_wave` or `min_sessions` would make
    /// every round degenerate).
    pub fn validate(&self) -> Result<(), KwError> {
        if self.max_wave == 0 {
            return Err(KwError::BadConfig("batching max_wave must be at least 1".into()));
        }
        if self.min_sessions == 0 {
            return Err(KwError::BadConfig("batching min_sessions must be at least 1".into()));
        }
        Ok(())
    }
}

/// Outcome of one coalesced probe cell.
enum CellState {
    /// The owner has not delivered yet.
    Pending,
    /// The owner executed the probe; the ground-truth verdict.
    Done(bool),
    /// The owner gave up (fault, budget, death) — followers re-execute.
    Orphaned,
}

/// One coalesced probe in flight: the owner fulfills (or orphans) it,
/// followers block on it after finishing their own owned probes.
struct ProbeCell {
    state: Mutex<CellState>,
    done: Condvar,
}

impl ProbeCell {
    fn new() -> ProbeCell {
        ProbeCell { state: Mutex::new(CellState::Pending), done: Condvar::new() }
    }

    /// Publishes the owner's verdict (idempotent; verdicts never change).
    fn fulfill(&self, alive: bool) {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, CellState::Pending) {
            *st = CellState::Done(alive);
            self.done.notify_all();
        }
    }

    /// Marks the cell undeliverable; a no-op if a verdict already landed.
    fn orphan(&self) {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, CellState::Pending) {
            *st = CellState::Orphaned;
            self.done.notify_all();
        }
    }

    /// Blocks until the owner fulfills or orphans the cell.
    fn wait(&self) -> Option<bool> {
        let mut st = self.state.lock().unwrap();
        loop {
            match *st {
                CellState::Pending => st = self.done.wait(st).unwrap(),
                CellState::Done(alive) => return Some(alive),
                CellState::Orphaned => return None,
            }
        }
    }
}

/// Mutable state of one `(db_id, epoch)` group's current round.
struct GroupState {
    /// Monotonic round number; bumped at every flush so parked sessions can
    /// detect that their round closed.
    round: u64,
    /// Sessions parked in the current round.
    parked: usize,
    /// Probes submitted to the current round.
    total: usize,
    /// Wall-clock bound of the current round, set by its first parker.
    deadline: Option<Instant>,
    /// Canonical probe key → in-flight cell, for the current round only.
    /// Cleared at flush: the exchange deduplicates *in-flight* work; repeats
    /// across rounds belong to the verdict cache.
    cells: HashMap<Vec<u8>, Arc<ProbeCell>>,
}

/// One `(db_id, epoch)` batching domain: sessions pinned to different
/// epochs land in different groups and are never merged into one wave.
struct Group {
    state: Mutex<GroupState>,
    /// Signaled at every flush (and on session exit, which can complete the
    /// everyone-parked condition).
    flushed: Condvar,
    /// Sessions currently registered (holding a [`BatchTicket`]) on this
    /// group.
    members: AtomicUsize,
}

impl Group {
    fn new() -> Group {
        Group {
            state: Mutex::new(GroupState {
                round: 0,
                parked: 0,
                total: 0,
                deadline: None,
                cells: HashMap::new(),
            }),
            flushed: Condvar::new(),
            members: AtomicUsize::new(0),
        }
    }

    /// Closes the current round: parked sessions are released (they already
    /// hold their roles), the cell map is cleared so the next round starts
    /// fresh, and the merged-wave gauge counts rounds ≥ 2 sessions wide.
    fn flush(&self, st: &mut GroupState, exchange: &WaveExchange) {
        if st.parked >= 2 {
            exchange.merged_waves.fetch_add(1, Ordering::Relaxed);
        }
        st.round += 1;
        st.parked = 0;
        st.total = 0;
        st.deadline = None;
        st.cells.clear();
        self.flushed.notify_all();
    }
}

/// The process-wide meeting point where concurrent sessions' probe waves
/// merge (see the module docs). One exchange serves any number of
/// databases and epochs; sessions on different `(db_id, epoch)` snapshots
/// never share a wave. Created once (e.g. by `kwserve` from
/// `ServeConfig::batching`) and attached to each session's debugger via
/// [`crate::debugger::NonAnswerDebugger::set_wave_exchange`].
pub struct WaveExchange {
    config: BatchConfig,
    /// The exchange's own keyword interner: canonical keys must agree
    /// *across* sessions, so they cannot use any session cache's ids.
    interner: Mutex<HashMap<String, u64>>,
    groups: Mutex<HashMap<(u64, u64), Arc<Group>>>,
    /// Rounds that closed with ≥ 2 sessions parked.
    merged_waves: AtomicU64,
    /// Probes parked across all rounds (bypassed waves never count).
    submitted: AtomicU64,
    /// Parked probes answered by another session's in-flight execution.
    coalesced: AtomicU64,
}

impl WaveExchange {
    /// An empty exchange with the given knobs.
    pub fn new(config: BatchConfig) -> WaveExchange {
        WaveExchange {
            config,
            interner: Mutex::new(HashMap::new()),
            groups: Mutex::new(HashMap::new()),
            merged_waves: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
        }
    }

    /// The configured knobs.
    pub fn config(&self) -> BatchConfig {
        self.config
    }

    /// Rounds that actually merged ≥ 2 sessions' waves.
    pub fn merged_waves(&self) -> u64 {
        self.merged_waves.load(Ordering::Relaxed)
    }

    /// Probes parked in the exchange (owners + followers; bypassed waves
    /// never park).
    pub fn submitted_probes(&self) -> u64 {
        self.submitted.load(Ordering::Relaxed)
    }

    /// Parked probes answered by another session's execution.
    pub fn coalesced_probes(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Sessions currently registered, across all groups. Zero once every
    /// session has ended — the leak check of the equivalence suite.
    pub fn active_sessions(&self) -> usize {
        self.groups
            .lock()
            .unwrap()
            .values()
            .map(|g| g.members.load(Ordering::Relaxed))
            .sum()
    }

    /// In-flight cells of all current rounds. Zero whenever no wave is
    /// parked — flushed rounds always clear their cell map.
    pub fn pending_cells(&self) -> usize {
        self.groups.lock().unwrap().values().map(|g| g.state.lock().unwrap().cells.len()).sum()
    }

    /// The exchange-wide id of a keyword (stable for the exchange's
    /// lifetime, shared by every session).
    fn intern(&self, kw: &str) -> u64 {
        let mut map = self.interner.lock().unwrap();
        let next = map.len() as u64;
        *map.entry(kw.to_owned()).or_insert(next)
    }

    /// Registers a session on the `(db_id, epoch)` group for the session's
    /// lifetime. The returned RAII ticket deregisters on drop; a drop
    /// mid-round also re-checks the everyone-parked flush condition so
    /// parked peers never wait on a session that left.
    pub(crate) fn register(self: &Arc<Self>, db_id: u64, epoch: u64) -> BatchTicket {
        let group = {
            let mut groups = self.groups.lock().unwrap();
            let group = groups.entry((db_id, epoch)).or_insert_with(|| Arc::new(Group::new()));
            group.members.fetch_add(1, Ordering::Relaxed);
            group.clone()
        };
        BatchTicket { exchange: self.clone(), group, key: (db_id, epoch) }
    }
}

/// A session's registration on one `(db_id, epoch)` group — RAII, held by
/// the attached debugger for its lifetime (see the module docs for why
/// registration outlives individual debug calls).
pub(crate) struct BatchTicket {
    exchange: Arc<WaveExchange>,
    group: Arc<Group>,
    key: (u64, u64),
}

/// What the exchange assigned this session for one pending probe.
enum Role {
    /// First submitter of the key this round: executes and publishes.
    Owner(Arc<ProbeCell>),
    /// A later submitter: waits for the owner's verdict.
    Follower(Arc<ProbeCell>),
}

impl BatchTicket {
    /// The exchange this registration belongs to.
    pub(crate) fn exchange(&self) -> &Arc<WaveExchange> {
        &self.exchange
    }

    /// Parks one wave's pending probes (canonical keys, in dispatch-slot
    /// order) in the current round and blocks until the round flushes.
    /// Returns `None` — with nothing parked and no gauges touched — when
    /// fewer than `min_sessions` sessions are registered on the group.
    fn park(&self, keys: &[Vec<u8>]) -> Option<Vec<Role>> {
        if self.group.members.load(Ordering::Relaxed) < self.exchange.config.min_sessions {
            return None;
        }
        let window = Duration::from_micros(self.exchange.config.window_us);
        let mut st = self.group.state.lock().unwrap();
        let round = st.round;
        // Roles are fixed at park time; the flush only opens the barrier.
        let roles: Vec<Role> = keys
            .iter()
            .map(|k| match st.cells.entry(k.clone()) {
                Entry::Occupied(e) => Role::Follower(e.get().clone()),
                Entry::Vacant(v) => Role::Owner(v.insert(Arc::new(ProbeCell::new())).clone()),
            })
            .collect();
        st.parked += 1;
        st.total += keys.len();
        self.exchange.submitted.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let deadline = *st.deadline.get_or_insert_with(|| Instant::now() + window);
        if st.parked >= self.group.members.load(Ordering::Relaxed)
            || st.total >= self.exchange.config.max_wave
        {
            self.group.flush(&mut st, &self.exchange);
        } else {
            while st.round == round {
                let now = Instant::now();
                if now >= deadline {
                    self.group.flush(&mut st, &self.exchange);
                    break;
                }
                st = self.group.flushed.wait_timeout(st, deadline - now).unwrap().0;
            }
        }
        Some(roles)
    }
}

impl Drop for BatchTicket {
    fn drop(&mut self) {
        let mut groups = self.exchange.groups.lock().unwrap();
        let remaining = self.group.members.fetch_sub(1, Ordering::Relaxed) - 1;
        // Leaving can complete the everyone-parked condition for a round
        // that was waiting on this session.
        let mut st = self.group.state.lock().unwrap();
        if st.parked > 0 && st.parked >= remaining {
            self.group.flush(&mut st, &self.exchange);
        }
        drop(st);
        if remaining == 0 {
            groups.remove(&self.key);
        }
    }
}

/// RAII custody of the cells a session owns in one wave: any cell not yet
/// published when the guard drops (hard failure, panic unwinding through
/// the dispatcher) is orphaned so followers fall back to self-execution.
struct OwnedCells {
    cells: HashMap<usize, Arc<ProbeCell>>,
}

impl OwnedCells {
    fn new() -> OwnedCells {
        OwnedCells { cells: HashMap::new() }
    }

    fn insert(&mut self, slot: usize, cell: Arc<ProbeCell>) {
        self.cells.insert(slot, cell);
    }

    fn take(&mut self, slot: usize) -> Option<Arc<ProbeCell>> {
        self.cells.remove(&slot)
    }
}

impl Drop for OwnedCells {
    fn drop(&mut self) {
        for cell in self.cells.values() {
            cell.orphan();
        }
    }
}

/// Runs a strategy's probe waves through the exchange: the batched twin of
/// `crate::parallel::run_waves`, identical in classification, reservation
/// and apply order, with the execution set partitioned across sessions by
/// the exchange (see the module docs). Used for every worker count when a
/// ticket is held — a one-worker pool is the sequential driver with the
/// exchange spliced in.
pub(crate) fn run_batched_waves(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    frontier: &mut dyn Frontier,
    workers: usize,
    ticket: &BatchTicket,
) -> Result<(), KwError> {
    let workers = workers.max(1);
    if workers == 1 {
        // One worker means the pool buys nothing but a thread spawn per
        // interpretation — run the same protocol inline instead, so a
        // sequential session pays no overhead for the exchange it may never
        // need (the uncontended-p50 half of the E20 contract).
        return run_batched_waves_seq(lattice, pruned, oracle, frontier, ticket);
    }
    let core = oracle.core();
    core.metrics.workers.add(workers as u64);

    let pool = PoolState::new(workers);
    let (done_tx, done_rx) = mpsc::channel::<Completion>();

    let mut failure: Option<KwError> = None;
    let worker_stats: Vec<ExecStats> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let pool = &pool;
                let done = done_tx.clone();
                scope.spawn(move || {
                    let mut engine = core.make_engine(w as u64);
                    while let Some(job) = pool.take(w, &core.metrics) {
                        let node = pruned.lattice_id(job.dense);
                        let jnts = pruned.jnts(lattice, job.dense);
                        let probe = core.execute_reserved(&mut engine, node, jnts);
                        if done
                            .send(Completion { slot: job.slot, dense: job.dense, probe })
                            .is_err()
                        {
                            break;
                        }
                    }
                    engine.stats().clone()
                })
            })
            .collect();
        drop(done_tx);

        let mut wave = Vec::new();
        let mut next_worker = 0usize;
        'traversal: loop {
            wave.clear();
            frontier.next_wave(&mut wave);
            if wave.is_empty() {
                break;
            }
            // Classify and reserve in sequential visit order — byte-for-byte
            // the dispatch loop of `run_waves`, except that probes surviving
            // to dispatch are *collected* (slot = dispatch position) instead
            // of pushed to the pool immediately.
            let mut pending: Vec<usize> = Vec::new();
            let mut stop_after_wave = false;
            for &dense in wave.iter() {
                if !frontier.is_unknown(dense) {
                    core.metrics.reuse_hits.incr();
                    continue;
                }
                if let Some(alive) = core.verdict_if_known(pruned.lattice_id(dense)) {
                    core.metrics.memo_hits.incr();
                    frontier.apply(dense, alive, &core.metrics);
                    continue;
                }
                if let Some(alive) =
                    core.shortcut(pruned.lattice_id(dense), pruned.jnts(lattice, dense))
                {
                    frontier.apply(dense, alive, &core.metrics);
                    continue;
                }
                if core.try_reserve().is_err() {
                    stop_after_wave = true;
                    break;
                }
                pending.push(dense);
            }

            // Park the wave. `None` = bypass (too few sessions): every probe
            // is implicitly owned and the wave runs exactly like `run_waves`.
            let roles = if pending.is_empty() {
                None
            } else {
                let keys: Vec<Vec<u8>> = pending
                    .iter()
                    .map(|&dense| {
                        core.exchange_key(pruned.jnts(lattice, dense), &mut |kw| {
                            ticket.exchange.intern(kw)
                        })
                    })
                    .collect();
                let roles = ticket.park(&keys);
                if roles.is_some() {
                    core.metrics.batched_waves.incr();
                }
                roles
            };

            // Execute every probe this session owns on its own pool, then
            // publish each verdict to its cell as it completes — all before
            // waiting on any follower cell, which is what makes the
            // exchange deadlock-free.
            let mut outcomes: Vec<Option<(usize, Probe)>> = pending.iter().map(|_| None).collect();
            let mut owned = OwnedCells::new();
            let mut dispatched = 0usize;
            for (slot, &dense) in pending.iter().enumerate() {
                if let Some(r) = &roles {
                    match &r[slot] {
                        Role::Owner(cell) => owned.insert(slot, cell.clone()),
                        Role::Follower(_) => continue,
                    }
                }
                pool.push(next_worker, Job { slot, dense });
                next_worker = (next_worker + 1) % workers;
                dispatched += 1;
            }
            for _ in 0..dispatched {
                let c = done_rx.recv().expect("worker pool hung up mid-wave");
                if let Some(cell) = owned.take(c.slot) {
                    match &c.probe {
                        Probe::Verdict(alive) => cell.fulfill(*alive),
                        // Faults, hard failures and budget trips are
                        // session-local; followers re-execute on their own.
                        _ => cell.orphan(),
                    }
                }
                outcomes[c.slot] = Some((c.dense, c.probe));
            }

            // Collect follower verdicts; orphaned cells fall back to local
            // execution (the budget slot reserved above still stands).
            if let Some(roles) = &roles {
                let mut redispatched = 0usize;
                for (slot, role) in roles.iter().enumerate() {
                    let Role::Follower(cell) = role else { continue };
                    let dense = pending[slot];
                    match cell.wait() {
                        Some(alive) => {
                            core.record_coalesced(
                                pruned.lattice_id(dense),
                                pruned.jnts(lattice, dense),
                                alive,
                            );
                            ticket.exchange.coalesced.fetch_add(1, Ordering::Relaxed);
                            outcomes[slot] = Some((dense, Probe::Verdict(alive)));
                        }
                        None => {
                            pool.push(next_worker, Job { slot, dense });
                            next_worker = (next_worker + 1) % workers;
                            redispatched += 1;
                        }
                    }
                }
                for _ in 0..redispatched {
                    let c = done_rx.recv().expect("worker pool hung up mid-wave");
                    outcomes[c.slot] = Some((c.dense, c.probe));
                }
            }

            // Apply in dispatch (= sequential visit) order — identical to
            // `run_waves`.
            for outcome in outcomes.into_iter() {
                let (dense, probe) = outcome.expect("every pending slot completes");
                match probe {
                    Probe::Verdict(alive) => {
                        if frontier.is_unknown(dense) {
                            frontier.apply(dense, alive, &core.metrics);
                        } else {
                            core.metrics.inference_suppressed_probes.incr();
                        }
                    }
                    Probe::NodeFailed(e) if e.is_fault() => frontier.abandon(dense),
                    Probe::NodeFailed(e) => {
                        failure = Some(e.into());
                        break 'traversal;
                    }
                    Probe::Exhausted(_) => stop_after_wave = true,
                }
            }
            if stop_after_wave {
                frontier.exhaust();
                break;
            }
        }
        pool.shutdown();
        handles.into_iter().map(|h| h.join().expect("probe worker panicked")).collect()
    });

    for stats in &worker_stats {
        oracle.absorb_stats(stats);
    }
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// The single-worker twin of [`run_batched_waves`]: the identical wave
/// protocol (classify and reserve in visit order, park, register owned
/// cells, execute owned probes publishing each verdict, collect followers,
/// apply in slot order) with probes executed inline on the calling thread —
/// no pool, no channels, no thread spawn. A solo session that bypasses
/// every park therefore runs the same instruction path as the unbatched
/// sequential driver plus one atomic load per wave.
fn run_batched_waves_seq(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    frontier: &mut dyn Frontier,
    ticket: &BatchTicket,
) -> Result<(), KwError> {
    let core = oracle.core();
    core.metrics.workers.add(1);
    let mut engine = core.make_engine(0);

    let mut failure: Option<KwError> = None;
    let mut wave = Vec::new();
    'traversal: loop {
        wave.clear();
        frontier.next_wave(&mut wave);
        if wave.is_empty() {
            break;
        }
        let mut pending: Vec<usize> = Vec::new();
        let mut stop_after_wave = false;
        for &dense in wave.iter() {
            if !frontier.is_unknown(dense) {
                core.metrics.reuse_hits.incr();
                continue;
            }
            if let Some(alive) = core.verdict_if_known(pruned.lattice_id(dense)) {
                core.metrics.memo_hits.incr();
                frontier.apply(dense, alive, &core.metrics);
                continue;
            }
            if let Some(alive) =
                core.shortcut(pruned.lattice_id(dense), pruned.jnts(lattice, dense))
            {
                frontier.apply(dense, alive, &core.metrics);
                continue;
            }
            if core.try_reserve().is_err() {
                stop_after_wave = true;
                break;
            }
            pending.push(dense);
        }

        let roles = if pending.is_empty() {
            None
        } else {
            let keys: Vec<Vec<u8>> = pending
                .iter()
                .map(|&dense| {
                    core.exchange_key(pruned.jnts(lattice, dense), &mut |kw| {
                        ticket.exchange.intern(kw)
                    })
                })
                .collect();
            let roles = ticket.park(&keys);
            if roles.is_some() {
                core.metrics.batched_waves.incr();
            }
            roles
        };

        // Register every owned cell *before* the first execution, so an
        // unwind mid-wave orphans the not-yet-published remainder (the same
        // guarantee the pooled driver gets from dispatching first).
        let mut owned = OwnedCells::new();
        if let Some(r) = &roles {
            for (slot, role) in r.iter().enumerate() {
                if let Role::Owner(cell) = role {
                    owned.insert(slot, cell.clone());
                }
            }
        }
        let mut outcomes: Vec<Option<(usize, Probe)>> = pending.iter().map(|_| None).collect();
        for (slot, &dense) in pending.iter().enumerate() {
            if matches!(&roles, Some(r) if matches!(&r[slot], Role::Follower(_))) {
                continue;
            }
            let probe =
                core.execute_reserved(&mut engine, pruned.lattice_id(dense), pruned.jnts(lattice, dense));
            if let Some(cell) = owned.take(slot) {
                match &probe {
                    Probe::Verdict(alive) => cell.fulfill(*alive),
                    _ => cell.orphan(),
                }
            }
            outcomes[slot] = Some((dense, probe));
        }

        if let Some(roles) = &roles {
            for (slot, role) in roles.iter().enumerate() {
                let Role::Follower(cell) = role else { continue };
                let dense = pending[slot];
                match cell.wait() {
                    Some(alive) => {
                        core.record_coalesced(
                            pruned.lattice_id(dense),
                            pruned.jnts(lattice, dense),
                            alive,
                        );
                        ticket.exchange.coalesced.fetch_add(1, Ordering::Relaxed);
                        outcomes[slot] = Some((dense, Probe::Verdict(alive)));
                    }
                    None => {
                        let probe = core.execute_reserved(
                            &mut engine,
                            pruned.lattice_id(dense),
                            pruned.jnts(lattice, dense),
                        );
                        outcomes[slot] = Some((dense, probe));
                    }
                }
            }
        }

        for outcome in outcomes.into_iter() {
            let (dense, probe) = outcome.expect("every pending slot completes");
            match probe {
                Probe::Verdict(alive) => {
                    if frontier.is_unknown(dense) {
                        frontier.apply(dense, alive, &core.metrics);
                    } else {
                        core.metrics.inference_suppressed_probes.incr();
                    }
                }
                Probe::NodeFailed(e) if e.is_fault() => frontier.abandon(dense),
                Probe::NodeFailed(e) => {
                    failure = Some(e.into());
                    break 'traversal;
                }
                Probe::Exhausted(_) => stop_after_wave = true,
            }
        }
        if stop_after_wave {
            frontier.exhaust();
            break;
        }
    }

    let stats = engine.stats().clone();
    oracle.absorb_stats(&stats);
    match failure {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_deliver_and_orphan() {
        let cell = ProbeCell::new();
        cell.fulfill(true);
        cell.orphan(); // late orphan must not clobber a verdict
        assert_eq!(cell.wait(), Some(true));

        let cell = ProbeCell::new();
        cell.orphan();
        cell.fulfill(false); // late verdict must not resurrect an orphan
        assert_eq!(cell.wait(), None);
    }

    #[test]
    fn tickets_register_and_clean_up_groups() {
        let ex = Arc::new(WaveExchange::new(BatchConfig::default()));
        assert_eq!(ex.active_sessions(), 0);
        let t1 = ex.register(1, 0);
        let t2 = ex.register(1, 0);
        let t3 = ex.register(1, 1); // pinned to another epoch: separate group
        assert_eq!(ex.active_sessions(), 3);
        assert_eq!(ex.groups.lock().unwrap().len(), 2);
        drop(t2);
        drop(t3);
        assert_eq!(ex.active_sessions(), 1);
        assert_eq!(ex.groups.lock().unwrap().len(), 1, "empty groups are removed");
        drop(t1);
        assert_eq!(ex.active_sessions(), 0);
        assert!(ex.groups.lock().unwrap().is_empty());
    }

    #[test]
    fn solo_sessions_bypass_the_exchange() {
        let ex = Arc::new(WaveExchange::new(BatchConfig::default()));
        let t = ex.register(7, 0);
        assert!(t.park(&[vec![1, 2, 3]]).is_none(), "one session < min_sessions");
        assert_eq!(ex.submitted_probes(), 0, "bypassed waves touch no gauge");
        assert_eq!(ex.pending_cells(), 0);
    }

    #[test]
    fn overlapping_parks_coalesce_and_separate_epochs_never_merge() {
        let ex = Arc::new(WaveExchange::new(BatchConfig {
            window_us: 200_000,
            ..BatchConfig::default()
        }));
        let a = ex.register(1, 0);
        let b = ex.register(1, 0);
        let shared = vec![9, 9, 9];
        let roles = std::thread::scope(|s| {
            let ra = s.spawn(|| a.park(std::slice::from_ref(&shared)).unwrap());
            let rb = s.spawn(|| b.park(std::slice::from_ref(&shared)).unwrap());
            (ra.join().unwrap(), rb.join().unwrap())
        });
        let owners = usize::from(matches!(roles.0[0], Role::Owner(_)))
            + usize::from(matches!(roles.1[0], Role::Owner(_)));
        assert_eq!(owners, 1, "exactly one session owns a coalesced key");
        assert_eq!(ex.submitted_probes(), 2);
        assert_eq!(ex.merged_waves(), 1);
        assert_eq!(ex.pending_cells(), 0, "flushing clears the round's cells");

        // A session pinned to another epoch is alone on its group: bypass.
        let c = ex.register(1, 3);
        assert!(c.park(std::slice::from_ref(&shared)).is_none());
        assert_eq!(ex.submitted_probes(), 2);
    }

    #[test]
    fn config_validation_rejects_degenerate_knobs() {
        assert!(BatchConfig::default().validate().is_ok());
        assert!(BatchConfig { max_wave: 0, ..BatchConfig::default() }.validate().is_err());
        assert!(BatchConfig { min_sessions: 0, ..BatchConfig::default() }.validate().is_err());
    }
}
