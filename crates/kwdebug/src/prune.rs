//! Phase 1 + Phase 2: keyword-based pruning and the per-query sub-lattice.
//!
//! [`PrunedLattice`] is the runtime view of the offline lattice for one
//! interpretation of one keyword query: only the MTNs and their descendants
//! survive, re-indexed densely in level order, with materialized
//! ancestor/descendant closures. Everything Phase 3 needs — traversal orders,
//! R1/R2 propagation, MPAN extraction, SBH scoring — runs on this small
//! structure, matching the paper's observation that keyword pruning removes
//! ~98% of lattice nodes.

use std::collections::HashMap;

use crate::binding::Interpretation;
use crate::jnts::Jnts;
use crate::lattice::{Lattice, NodeId};
use crate::mtn::{is_mtn, is_retained, is_total};

/// Phase-1/2 statistics for one interpretation (reproduces §3.3 / Figure 10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Nodes in the full offline lattice.
    pub lattice_nodes: usize,
    /// Nodes surviving Phase 1 (keyword-based pruning).
    pub retained_phase1: usize,
    /// Total nodes among the retained ones.
    pub total_nodes: usize,
    /// Number of MTNs.
    pub mtn_count: usize,
    /// Nodes in the final sub-lattice (MTNs plus descendants).
    pub pruned_nodes: usize,
    /// Σ over MTNs of their descendant count (with cross-MTN duplicates) —
    /// the `N` of Figure 13's reuse percentage.
    pub mtn_descendants_total: usize,
    /// Distinct descendants of all MTNs — the `N_u` of Figure 13.
    pub mtn_descendants_unique: usize,
}

impl PruneStats {
    /// Figure 13's percentage of reuse: `100 * (1 - N_u / N)`.
    pub fn reuse_percentage(&self) -> f64 {
        if self.mtn_descendants_total == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.mtn_descendants_unique as f64 / self.mtn_descendants_total as f64)
        }
    }
}

/// The per-interpretation sub-lattice: MTNs and their descendants, densely
/// re-indexed in ascending level order (so iterating `0..len` is a bottom-up
/// sweep and the reverse is top-down).
#[derive(Debug, Clone)]
pub struct PrunedLattice {
    /// Dense index → offline lattice node id.
    nodes: Vec<NodeId>,
    /// Level of each dense node.
    levels: Vec<u32>,
    /// Children (dense) of each dense node.
    children: Vec<Vec<usize>>,
    /// Parents (dense) of each dense node, restricted to the pruned set.
    parents: Vec<Vec<usize>>,
    /// Descendant closure including self, sorted ascending.
    desc_plus: Vec<Vec<usize>>,
    /// Ancestor closure (within the pruned set) including self, sorted.
    asc_plus: Vec<Vec<usize>>,
    /// Dense indices of the MTNs, ascending.
    mtns: Vec<usize>,
    stats: PruneStats,
}

impl PrunedLattice {
    /// Runs Phases 1 and 2 for one interpretation.
    pub fn build(lattice: &Lattice, interp: &Interpretation) -> PrunedLattice {
        let mut stats =
            PruneStats { lattice_nodes: lattice.node_count(), ..PruneStats::default() };

        // Phase 1 + totality classification, in level order.
        let mut retained: Vec<NodeId> = Vec::new();
        let mut mtn_ids: Vec<NodeId> = Vec::new();
        for id in lattice.all_nodes() {
            let jnts = &lattice.node(id).jnts;
            if !is_retained(jnts, interp) {
                continue;
            }
            retained.push(id);
            if is_total(jnts, interp) {
                stats.total_nodes += 1;
                if is_mtn(jnts, interp) {
                    mtn_ids.push(id);
                }
            }
        }
        stats.retained_phase1 = retained.len();
        stats.mtn_count = mtn_ids.len();

        // Phase 2: keep MTNs ∪ descendants (children closure downward).
        let mut keep: HashMap<NodeId, bool> = HashMap::new();
        let mut stack: Vec<NodeId> = mtn_ids.clone();
        while let Some(id) = stack.pop() {
            if keep.insert(id, true).is_some() {
                continue;
            }
            for &c in &lattice.node(id).children {
                if !keep.contains_key(&c) {
                    stack.push(c);
                }
            }
        }

        // Dense indexing in level order (lattice.all_nodes is level-ordered).
        let nodes: Vec<NodeId> =
            lattice.all_nodes().filter(|id| keep.contains_key(id)).collect();
        stats.pruned_nodes = nodes.len();
        let dense: HashMap<NodeId, usize> =
            nodes.iter().enumerate().map(|(i, &id)| (id, i)).collect();
        let levels: Vec<u32> = nodes.iter().map(|&id| lattice.node(id).level).collect();

        let mut children: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut parents: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, &id) in nodes.iter().enumerate() {
            for &c in &lattice.node(id).children {
                if let Some(&ci) = dense.get(&c) {
                    children[i].push(ci);
                    parents[ci].push(i);
                }
            }
        }

        // Descendant closure bottom-up (children have smaller dense index).
        let mut desc_plus: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for i in 0..nodes.len() {
            let mut d: Vec<usize> = vec![i];
            for &c in &children[i] {
                d.extend_from_slice(&desc_plus[c]);
            }
            d.sort_unstable();
            d.dedup();
            desc_plus[i] = d;
        }
        // Ancestor closure by inversion.
        let mut asc_plus: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for (i, descs) in desc_plus.iter().enumerate() {
            for &d in descs {
                asc_plus[d].push(i);
            }
        }
        for a in &mut asc_plus {
            a.sort_unstable();
        }

        let mtns: Vec<usize> = mtn_ids.iter().map(|id| dense[id]).collect();
        let mut mtns = mtns;
        mtns.sort_unstable();

        for &m in &mtns {
            stats.mtn_descendants_total += desc_plus[m].len() - 1;
        }
        let mut uniq: Vec<usize> = mtns
            .iter()
            .flat_map(|&m| desc_plus[m].iter().copied().filter(move |&d| d != m))
            .collect();
        uniq.sort_unstable();
        uniq.dedup();
        stats.mtn_descendants_unique = uniq.len();

        PrunedLattice { nodes, levels, children, parents, desc_plus, asc_plus, mtns, stats }
    }

    /// Number of nodes in the sub-lattice.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sub-lattice is empty (no MTNs exist).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The offline lattice node id of dense node `i`.
    pub fn lattice_id(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// The network of dense node `i`.
    pub fn jnts<'a>(&self, lattice: &'a Lattice, i: usize) -> &'a Jnts {
        &lattice.node(self.nodes[i]).jnts
    }

    /// Level of dense node `i`.
    pub fn level(&self, i: usize) -> u32 {
        self.levels[i]
    }

    /// Children (dense) of node `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.children[i]
    }

    /// Parents (dense, within the pruned set) of node `i`.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parents[i]
    }

    /// Descendants of `i` including `i`, ascending.
    pub fn desc_plus(&self, i: usize) -> &[usize] {
        &self.desc_plus[i]
    }

    /// Ancestors of `i` (within the pruned set) including `i`, ascending.
    pub fn asc_plus(&self, i: usize) -> &[usize] {
        &self.asc_plus[i]
    }

    /// Whether `d` is a descendant of `a` (or equal).
    pub fn is_desc_or_self(&self, d: usize, a: usize) -> bool {
        self.desc_plus[a].binary_search(&d).is_ok()
    }

    /// Dense indices of the MTNs, ascending (= by level).
    pub fn mtns(&self) -> &[usize] {
        &self.mtns
    }

    /// Phase-1/2 statistics.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::schema_graph::SchemaGraph;
    use relengine::{DataType, DatabaseBuilder, Database, Value};
    use textindex::InvertedIndex;

    /// ptype(candle) <- item -> color(red): the paper's "red candle" example.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(1), Value::text("plain holder"), Value::Int(1), Value::Int(1)],
        )
        .unwrap();
        db.finalize();
        db
    }

    fn pruned(max_joins: usize) -> (Lattice, PrunedLattice) {
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("red candle").unwrap();
        let m = map_keywords(&q, &idx);
        assert_eq!(m.interpretations.len(), 1);
        let p = PrunedLattice::build(&lattice, &m.interpretations[0]);
        (lattice, p)
    }

    #[test]
    fn red_candle_has_single_mtn_at_level3() {
        let (lattice, p) = pruned(2);
        assert_eq!(p.mtns().len(), 1);
        let m = p.mtns()[0];
        assert_eq!(p.level(m), 3);
        let jnts = p.jnts(&lattice, m);
        // P1 - I0 - C1 (ptype copy 1, free item, color copy 1).
        let mut labels: Vec<(usize, u8)> =
            jnts.nodes().iter().map(|ts| (ts.table, ts.copy)).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![(0, 1), (1, 0), (2, 1)]);
    }

    #[test]
    fn pruning_reduces_node_count() {
        let (lattice, p) = pruned(2);
        assert!(p.stats().retained_phase1 < lattice.node_count());
        assert!(p.stats().pruned_nodes <= p.stats().retained_phase1);
        assert_eq!(p.stats().lattice_nodes, lattice.node_count());
        assert_eq!(p.len(), p.stats().pruned_nodes);
    }

    #[test]
    fn closures_are_consistent() {
        let (_, p) = pruned(2);
        for i in 0..p.len() {
            assert!(p.desc_plus(i).contains(&i));
            assert!(p.asc_plus(i).contains(&i));
            for &c in p.children(i) {
                assert!(c < i || p.level(c) < p.level(i));
                assert!(p.is_desc_or_self(c, i));
            }
            for &d in p.desc_plus(i) {
                assert!(p.asc_plus(d).contains(&i));
            }
        }
    }

    #[test]
    fn mtn_descendants_stats() {
        let (_, p) = pruned(2);
        let s = p.stats();
        assert_eq!(s.mtn_count, 1);
        // Single MTN: unique == total, zero reuse.
        assert_eq!(s.mtn_descendants_total, s.mtn_descendants_unique);
        assert_eq!(s.reuse_percentage(), 0.0);
    }

    #[test]
    fn dense_order_is_level_order() {
        let (_, p) = pruned(2);
        for i in 1..p.len() {
            assert!(p.level(i - 1) <= p.level(i));
        }
    }

    #[test]
    fn empty_when_no_mtn() {
        // One keyword that only matches ptype, but lattice limited to 0 joins:
        // MTN exists at level 1, so instead query two keywords in tables that
        // cannot connect within the join budget.
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 0); // single-table queries only
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("red candle").unwrap();
        let m = map_keywords(&q, &idx);
        let p = PrunedLattice::build(&lattice, &m.interpretations[0]);
        // "red" and "candle" live in different tables: no single-table total node.
        assert!(p.is_empty());
        assert_eq!(p.stats().mtn_count, 0);
    }

    #[test]
    fn reuse_when_multiple_mtns_share_descendants() {
        // Query "red" alone at maxJoins 2: MTN is C1 itself (level 1), the
        // only MTN; descendants empty.
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("red").unwrap();
        let m = map_keywords(&q, &idx);
        let p = PrunedLattice::build(&lattice, &m.interpretations[0]);
        assert_eq!(p.mtns().len(), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.stats().mtn_descendants_total, 0);
    }
}
