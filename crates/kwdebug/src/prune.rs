//! Phase 1 + Phase 2: keyword-based pruning and the per-query sub-lattice.
//!
//! [`PrunedLattice`] is the runtime view of the offline lattice for one
//! interpretation of one keyword query: only the MTNs and their descendants
//! survive, re-indexed densely in level order, with materialized
//! ancestor/descendant closures. Everything Phase 3 needs — traversal orders,
//! R1/R2 propagation, MPAN extraction, SBH scoring — runs on this small
//! structure, matching the paper's observation that keyword pruning removes
//! ~98% of lattice nodes.
//!
//! # Substrate (DESIGN.md §9)
//!
//! Both phases run on the compact arena indexes of [`crate::lattice`] instead
//! of scanning every node's network:
//!
//! * **Phase 1** is set algebra over the precomputed tuple-set postings. A
//!   node is *excluded* iff its network contains a keyword copy the
//!   interpretation leaves unbound, so the excluded set is the bitset union
//!   of the unbound copies' postings and `retained = lattice ∖ excluded`.
//!   A retained node is *total* iff it contains all `k` bound copies
//!   (interpretations bind distinct copies per keyword), found by
//!   intersecting the `k` bound postings lists; it is an MTN iff additionally
//!   its precomputed [`crate::lattice::Lattice::has_free_leaf`] bit is clear.
//! * **Phase 2** marks MTNs ∪ descendants in a keep-bitset via an explicit
//!   stack over the CSR children arrays, then packs the dense sub-lattice.
//! * The descendant closure is a per-node bitset over dense indices
//!   (`word_count` `u64`s per node), computed bottom-up by OR-ing child rows;
//!   the `desc_plus`/`asc_plus` slices are packed once from those rows, and
//!   [`PrunedLattice::is_desc_or_self`] is a single bit test.
//!
//! All transient state lives in a caller-provided
//! [`crate::workspace::QueryWorkspace`] ([`PrunedLattice::build_with`]), so a
//! warmed workspace makes Phases 1–2 allocation-light: only the dense output
//! arrays of the `PrunedLattice` itself are freshly allocated per query.

use crate::binding::Interpretation;
use crate::jnts::{CopyIdx, Jnts, TupleSet};
use crate::lattice::{Lattice, NodeId};
use crate::workspace::QueryWorkspace;

/// Label of the Phase 1–2 substrate implementation in effect. Benches record
/// it in their variant field so before/after rows in `results/` stay
/// distinguishable across substrate changes.
pub const SUBSTRATE: &str = "csr-bitset";

/// Phase-1/2 statistics for one interpretation (reproduces §3.3 / Figure 10).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PruneStats {
    /// Nodes in the full offline lattice.
    pub lattice_nodes: usize,
    /// Nodes surviving Phase 1 (keyword-based pruning).
    pub retained_phase1: usize,
    /// Total nodes among the retained ones.
    pub total_nodes: usize,
    /// Number of MTNs.
    pub mtn_count: usize,
    /// Nodes in the final sub-lattice (MTNs plus descendants).
    pub pruned_nodes: usize,
    /// Σ over MTNs of their descendant count (with cross-MTN duplicates) —
    /// the `N` of Figure 13's reuse percentage.
    pub mtn_descendants_total: usize,
    /// Distinct descendants of all MTNs — the `N_u` of Figure 13.
    pub mtn_descendants_unique: usize,
}

impl PruneStats {
    /// Figure 13's percentage of reuse: `100 * (1 - N_u / N)`.
    pub fn reuse_percentage(&self) -> f64 {
        if self.mtn_descendants_total == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.mtn_descendants_unique as f64 / self.mtn_descendants_total as f64)
        }
    }
}

/// The per-interpretation sub-lattice: MTNs and their descendants, densely
/// re-indexed in ascending level order (so iterating `0..len` is a bottom-up
/// sweep and the reverse is top-down).
///
/// Adjacency and both closures are CSR-packed slices over the dense indices;
/// the descendant closure is additionally kept as per-node bitsets, making
/// [`PrunedLattice::is_desc_or_self`] O(1). All fields are plain `Vec`s, so a
/// `&PrunedLattice` is freely shareable across the probe workers of
/// [`crate::parallel`].
#[derive(Debug, Clone)]
pub struct PrunedLattice {
    /// Dense index → offline lattice node id (ascending, level-ordered).
    nodes: Vec<NodeId>,
    /// Level of each dense node.
    levels: Vec<u32>,
    /// CSR offsets/payload: children (dense) of each dense node, ascending.
    child_off: Vec<usize>,
    child_items: Vec<usize>,
    /// CSR offsets/payload: parents (dense, within the pruned set), ascending.
    parent_off: Vec<usize>,
    parent_items: Vec<usize>,
    /// `u64` words per descendant-closure row.
    word_count: usize,
    /// Descendant closure incl. self as bitsets: row `i` is
    /// `desc_words[i*word_count..(i+1)*word_count]` over dense indices.
    desc_words: Vec<u64>,
    /// CSR offsets/payload: descendant closure incl. self, ascending.
    desc_off: Vec<usize>,
    desc_items: Vec<usize>,
    /// CSR offsets/payload: ancestor closure incl. self, ascending.
    asc_off: Vec<usize>,
    asc_items: Vec<usize>,
    /// Dense indices of the MTNs, ascending.
    mtns: Vec<usize>,
    stats: PruneStats,
    /// Posting-list entries scanned during Phase 1 (the work the postings
    /// index does in place of a full lattice scan).
    phase1_nodes_touched: u64,
}

/// Intersects two ascending id lists into `out` (cleared first).
fn intersect_sorted(a: &[NodeId], b: &[NodeId], out: &mut Vec<NodeId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[inline]
fn bit_set(words: &mut [u64], id: NodeId) {
    words[(id / 64) as usize] |= 1u64 << (id % 64);
}

#[inline]
fn bit_test(words: &[u64], id: NodeId) -> bool {
    words[(id / 64) as usize] & (1u64 << (id % 64)) != 0
}

fn popcount(words: &[u64]) -> usize {
    words.iter().map(|w| w.count_ones() as usize).sum()
}

impl PrunedLattice {
    /// Runs Phases 1 and 2 for one interpretation with a fresh scratch
    /// workspace. Sustained callers should hold a
    /// [`crate::workspace::QueryWorkspace`] (or borrow one from a
    /// [`crate::workspace::WorkspacePool`]) and use
    /// [`PrunedLattice::build_with`]; the result is identical either way.
    pub fn build(lattice: &Lattice, interp: &Interpretation) -> PrunedLattice {
        PrunedLattice::build_with(lattice, interp, &mut QueryWorkspace::new())
    }

    /// Runs Phases 1 and 2 for one interpretation, reusing `ws` for all
    /// transient state.
    pub fn build_with(
        lattice: &Lattice,
        interp: &Interpretation,
        ws: &mut QueryWorkspace,
    ) -> PrunedLattice {
        ws.note_build();
        let n = lattice.node_count();
        let words = n.div_ceil(64);
        let mut stats = PruneStats { lattice_nodes: n, ..PruneStats::default() };
        let mut touched: u64 = 0;

        // Phase 1: excluded = ∪ postings of keyword copies the interpretation
        // leaves unbound. retained = complement.
        ws.excluded.clear();
        ws.excluded.resize(words, 0);
        for table in 0..lattice.table_count() {
            for copy in 1..lattice.copies_per_table() {
                if interp.keyword_for(TupleSet::new(table, copy as CopyIdx)).is_some() {
                    continue;
                }
                let posted = lattice.postings(table, copy as CopyIdx);
                touched += posted.len() as u64;
                for &id in posted {
                    bit_set(&mut ws.excluded, id);
                }
            }
        }
        stats.retained_phase1 = n - popcount(&ws.excluded);

        // Totality: a retained node is total iff it contains every bound
        // copy, i.e. lies in the intersection of the k bound postings lists.
        let k = interp.keyword_count();
        ws.candidates.clear();
        if k > 0 {
            let ts = interp.tuple_set_of(0);
            let posted = lattice.postings(ts.table, ts.copy);
            touched += posted.len() as u64;
            ws.candidates.extend_from_slice(posted);
            for i in 1..k {
                if ws.candidates.is_empty() {
                    break;
                }
                let ts = interp.tuple_set_of(i);
                let posted = lattice.postings(ts.table, ts.copy);
                touched += posted.len() as u64;
                intersect_sorted(&ws.candidates, posted, &mut ws.candidates_next);
                std::mem::swap(&mut ws.candidates, &mut ws.candidates_next);
            }
        }
        // MTN classification over the (ascending) total candidates: the
        // minimality test is the precomputed free-leaf bit.
        ws.candidates_next.clear();
        for &id in &ws.candidates {
            if bit_test(&ws.excluded, id) {
                continue;
            }
            stats.total_nodes += 1;
            if !lattice.has_free_leaf(id) {
                ws.candidates_next.push(id);
            }
        }
        stats.mtn_count = ws.candidates_next.len();

        // Phase 2: keep = MTNs ∪ descendants (children closure downward).
        ws.keep.clear();
        ws.keep.resize(words, 0);
        ws.stack.clear();
        ws.stack.extend_from_slice(&ws.candidates_next);
        while let Some(id) = ws.stack.pop() {
            if bit_test(&ws.keep, id) {
                continue;
            }
            bit_set(&mut ws.keep, id);
            for &c in lattice.children(id) {
                if !bit_test(&ws.keep, c) {
                    ws.stack.push(c);
                }
            }
        }
        let len = popcount(&ws.keep);
        stats.pruned_nodes = len;

        // Dense re-index in ascending id (= level) order. `dense_of` entries
        // are only read under a keep-bit test, so stale ones need no reset.
        if ws.dense_of.len() < n {
            ws.dense_of.resize(n, 0);
        }
        let mut nodes: Vec<NodeId> = Vec::with_capacity(len);
        for (wi, &word) in ws.keep.iter().enumerate() {
            let mut w = word;
            while w != 0 {
                let id = (wi * 64) as NodeId + w.trailing_zeros();
                ws.dense_of[id as usize] = nodes.len() as u32;
                nodes.push(id);
                w &= w - 1;
            }
        }
        let levels: Vec<u32> = nodes.iter().map(|&id| lattice.level_of(id)).collect();

        // Children CSR (lattice child lists are ascending and the dense map
        // is monotone, so dense children stay ascending), parents inverted.
        let mut child_off = Vec::with_capacity(len + 1);
        child_off.push(0usize);
        let mut child_items: Vec<usize> = Vec::new();
        let mut parent_counts = vec![0usize; len];
        for &id in &nodes {
            for &c in lattice.children(id) {
                if bit_test(&ws.keep, c) {
                    let ci = ws.dense_of[c as usize] as usize;
                    child_items.push(ci);
                    parent_counts[ci] += 1;
                }
            }
            child_off.push(child_items.len());
        }
        let mut parent_off = Vec::with_capacity(len + 1);
        parent_off.push(0usize);
        for &c in &parent_counts {
            parent_off.push(parent_off.last().unwrap() + c);
        }
        let mut parent_items = vec![0usize; *parent_off.last().unwrap()];
        let mut parent_next = parent_off[..len].to_vec();
        for i in 0..len {
            for &ci in &child_items[child_off[i]..child_off[i + 1]] {
                parent_items[parent_next[ci]] = i;
                parent_next[ci] += 1;
            }
        }

        // Descendant closure bottom-up as bitset rows: children have smaller
        // dense index (strictly lower level), so row `i` only ORs finished
        // rows from the prefix.
        let word_count = len.div_ceil(64);
        let mut desc_words = vec![0u64; len * word_count];
        for i in 0..len {
            let (lower, rest) = desc_words.split_at_mut(i * word_count);
            let row = &mut rest[..word_count];
            row[i / 64] |= 1u64 << (i % 64);
            for &c in &child_items[child_off[i]..child_off[i + 1]] {
                let src = &lower[c * word_count..(c + 1) * word_count];
                for (d, s) in row.iter_mut().zip(src) {
                    *d |= *s;
                }
            }
        }

        // Pack the closure slices (ascending by construction of the bit
        // scan); ancestors by inversion, which preserves ascending order.
        let closure_len = popcount(&desc_words);
        let mut desc_off = Vec::with_capacity(len + 1);
        desc_off.push(0usize);
        let mut desc_items: Vec<usize> = Vec::with_capacity(closure_len);
        let mut asc_counts = vec![0usize; len];
        for i in 0..len {
            for (wi, &word) in
                desc_words[i * word_count..(i + 1) * word_count].iter().enumerate()
            {
                let mut w = word;
                while w != 0 {
                    let d = wi * 64 + w.trailing_zeros() as usize;
                    desc_items.push(d);
                    asc_counts[d] += 1;
                    w &= w - 1;
                }
            }
            desc_off.push(desc_items.len());
        }
        let mut asc_off = Vec::with_capacity(len + 1);
        asc_off.push(0usize);
        for &c in &asc_counts {
            asc_off.push(asc_off.last().unwrap() + c);
        }
        let mut asc_items = vec![0usize; closure_len];
        let mut asc_next = asc_off[..len].to_vec();
        for i in 0..len {
            for &d in &desc_items[desc_off[i]..desc_off[i + 1]] {
                asc_items[asc_next[d]] = i;
                asc_next[d] += 1;
            }
        }

        // MTNs in dense space (ascending: candidates were ascending and the
        // dense map is monotone).
        let mtns: Vec<usize> =
            ws.candidates_next.iter().map(|&id| ws.dense_of[id as usize] as usize).collect();
        debug_assert!(mtns.windows(2).all(|w| w[0] < w[1]));

        for &m in &mtns {
            let row = &desc_words[m * word_count..(m + 1) * word_count];
            stats.mtn_descendants_total += popcount(row) - 1;
        }
        // Minimality means no MTN descends from another, so each MTN's self
        // bit in the union was contributed only by its own row; clearing the
        // self bits leaves exactly the union of proper-descendant sets.
        #[cfg(debug_assertions)]
        for &m1 in &mtns {
            for &m2 in &mtns {
                if m1 != m2 {
                    debug_assert!(
                        desc_words[m1 * word_count + m2 / 64] & (1u64 << (m2 % 64)) == 0,
                        "MTN {m2} descends from MTN {m1}"
                    );
                }
            }
        }
        ws.scratch.clear();
        ws.scratch.resize(word_count, 0);
        for &m in &mtns {
            for (dst, s) in
                ws.scratch.iter_mut().zip(&desc_words[m * word_count..(m + 1) * word_count])
            {
                *dst |= *s;
            }
        }
        for &m in &mtns {
            ws.scratch[m / 64] &= !(1u64 << (m % 64));
        }
        stats.mtn_descendants_unique = popcount(&ws.scratch);

        PrunedLattice {
            nodes,
            levels,
            child_off,
            child_items,
            parent_off,
            parent_items,
            word_count,
            desc_words,
            desc_off,
            desc_items,
            asc_off,
            asc_items,
            mtns,
            stats,
            phase1_nodes_touched: touched,
        }
    }

    /// Number of nodes in the sub-lattice.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the sub-lattice is empty (no MTNs exist).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The offline lattice node id of dense node `i`.
    pub fn lattice_id(&self, i: usize) -> NodeId {
        self.nodes[i]
    }

    /// The network of dense node `i`.
    pub fn jnts<'a>(&self, lattice: &'a Lattice, i: usize) -> &'a Jnts {
        lattice.jnts(self.nodes[i])
    }

    /// Level of dense node `i`.
    pub fn level(&self, i: usize) -> u32 {
        self.levels[i]
    }

    /// Children (dense) of node `i`.
    pub fn children(&self, i: usize) -> &[usize] {
        &self.child_items[self.child_off[i]..self.child_off[i + 1]]
    }

    /// Parents (dense, within the pruned set) of node `i`.
    pub fn parents(&self, i: usize) -> &[usize] {
        &self.parent_items[self.parent_off[i]..self.parent_off[i + 1]]
    }

    /// Descendants of `i` including `i`, ascending.
    pub fn desc_plus(&self, i: usize) -> &[usize] {
        &self.desc_items[self.desc_off[i]..self.desc_off[i + 1]]
    }

    /// Ancestors of `i` (within the pruned set) including `i`, ascending.
    pub fn asc_plus(&self, i: usize) -> &[usize] {
        &self.asc_items[self.asc_off[i]..self.asc_off[i + 1]]
    }

    /// Whether `d` is a descendant of `a` (or equal). A single bit test on
    /// the closure row of `a`.
    pub fn is_desc_or_self(&self, d: usize, a: usize) -> bool {
        self.desc_words[a * self.word_count + d / 64] & (1u64 << (d % 64)) != 0
    }

    /// Dense indices of the MTNs, ascending (= by level).
    pub fn mtns(&self) -> &[usize] {
        &self.mtns
    }

    /// Phase-1/2 statistics.
    pub fn stats(&self) -> &PruneStats {
        &self.stats
    }

    /// Posting-list entries scanned by Phase 1 for this build (the
    /// `phase1_nodes_touched` metric; compare against
    /// [`PruneStats::lattice_nodes`], the cost of the old full scan).
    pub fn phase1_nodes_touched(&self) -> u64 {
        self.phase1_nodes_touched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::schema_graph::SchemaGraph;
    use relengine::{DataType, DatabaseBuilder, Database, Value};
    use textindex::InvertedIndex;

    /// ptype(candle) <- item -> color(red): the paper's "red candle" example.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").unwrap();
        b.foreign_key("item", "color_id", "color", "id").unwrap();
        let mut db = b.finish().unwrap();
        db.insert_values("ptype", vec![Value::Int(1), Value::text("candle")]).unwrap();
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).unwrap();
        db.insert_values(
            "item",
            vec![Value::Int(1), Value::text("plain holder"), Value::Int(1), Value::Int(1)],
        )
        .unwrap();
        db.finalize();
        db
    }

    fn pruned(max_joins: usize) -> (Lattice, PrunedLattice) {
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, max_joins);
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("red candle").unwrap();
        let m = map_keywords(&q, &idx);
        assert_eq!(m.interpretations.len(), 1);
        let p = PrunedLattice::build(&lattice, &m.interpretations[0]);
        (lattice, p)
    }

    #[test]
    fn red_candle_has_single_mtn_at_level3() {
        let (lattice, p) = pruned(2);
        assert_eq!(p.mtns().len(), 1);
        let m = p.mtns()[0];
        assert_eq!(p.level(m), 3);
        let jnts = p.jnts(&lattice, m);
        // P1 - I0 - C1 (ptype copy 1, free item, color copy 1).
        let mut labels: Vec<(usize, u8)> =
            jnts.nodes().iter().map(|ts| (ts.table, ts.copy)).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![(0, 1), (1, 0), (2, 1)]);
    }

    #[test]
    fn pruning_reduces_node_count() {
        let (lattice, p) = pruned(2);
        assert!(p.stats().retained_phase1 < lattice.node_count());
        assert!(p.stats().pruned_nodes <= p.stats().retained_phase1);
        assert_eq!(p.stats().lattice_nodes, lattice.node_count());
        assert_eq!(p.len(), p.stats().pruned_nodes);
    }

    #[test]
    fn closures_are_consistent() {
        let (_, p) = pruned(2);
        for i in 0..p.len() {
            assert!(p.desc_plus(i).contains(&i));
            assert!(p.asc_plus(i).contains(&i));
            for &c in p.children(i) {
                assert!(c < i || p.level(c) < p.level(i));
                assert!(p.is_desc_or_self(c, i));
            }
            for &d in p.desc_plus(i) {
                assert!(p.asc_plus(d).contains(&i));
            }
        }
    }

    #[test]
    fn mtn_descendants_stats() {
        let (_, p) = pruned(2);
        let s = p.stats();
        assert_eq!(s.mtn_count, 1);
        // Single MTN: unique == total, zero reuse.
        assert_eq!(s.mtn_descendants_total, s.mtn_descendants_unique);
        assert_eq!(s.reuse_percentage(), 0.0);
    }

    #[test]
    fn dense_order_is_level_order() {
        let (_, p) = pruned(2);
        for i in 1..p.len() {
            assert!(p.level(i - 1) <= p.level(i));
        }
    }

    #[test]
    fn empty_when_no_mtn() {
        // One keyword that only matches ptype, but lattice limited to 0 joins:
        // MTN exists at level 1, so instead query two keywords in tables that
        // cannot connect within the join budget.
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 0); // single-table queries only
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("red candle").unwrap();
        let m = map_keywords(&q, &idx);
        let p = PrunedLattice::build(&lattice, &m.interpretations[0]);
        // "red" and "candle" live in different tables: no single-table total node.
        assert!(p.is_empty());
        assert_eq!(p.stats().mtn_count, 0);
    }

    #[test]
    fn reuse_when_multiple_mtns_share_descendants() {
        // Query "red" alone at maxJoins 2: MTN is C1 itself (level 1), the
        // only MTN; descendants empty.
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let idx = InvertedIndex::build(&db);
        let q = KeywordQuery::parse("red").unwrap();
        let m = map_keywords(&q, &idx);
        let p = PrunedLattice::build(&lattice, &m.interpretations[0]);
        assert_eq!(p.mtns().len(), 1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.stats().mtn_descendants_total, 0);
    }

    #[test]
    fn phase1_touches_fewer_nodes_than_a_full_scan_would() {
        let (lattice, p) = pruned(2);
        assert!(p.phase1_nodes_touched() > 0);
        // The postings walk visits list entries, not every node's network.
        assert!(
            p.phase1_nodes_touched() < (lattice.node_count() * 3) as u64,
            "touched {} of {} nodes",
            p.phase1_nodes_touched(),
            lattice.node_count()
        );
    }

    #[test]
    fn reused_workspace_builds_identically() {
        let db = db();
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let idx = InvertedIndex::build(&db);
        let mut ws = QueryWorkspace::new();
        let mut builds = 0u64;
        // Alternate queries of different shapes through one workspace and
        // compare each against a fresh build.
        for q in ["red candle", "red", "candle", "red candle"] {
            let m = map_keywords(&KeywordQuery::parse(q).unwrap(), &idx);
            for interp in &m.interpretations {
                let fresh = PrunedLattice::build(&lattice, interp);
                let reused = PrunedLattice::build_with(&lattice, interp, &mut ws);
                builds += 1;
                assert_eq!(fresh.stats(), reused.stats(), "{q}");
                assert_eq!(fresh.mtns(), reused.mtns(), "{q}");
                assert_eq!(fresh.len(), reused.len(), "{q}");
                assert_eq!(fresh.phase1_nodes_touched(), reused.phase1_nodes_touched());
                for i in 0..fresh.len() {
                    assert_eq!(fresh.lattice_id(i), reused.lattice_id(i));
                    assert_eq!(fresh.children(i), reused.children(i));
                    assert_eq!(fresh.parents(i), reused.parents(i));
                    assert_eq!(fresh.desc_plus(i), reused.desc_plus(i));
                    assert_eq!(fresh.asc_plus(i), reused.asc_plus(i));
                }
            }
        }
        assert!(builds >= 4);
        assert_eq!(ws.builds(), builds);
    }
}
