//! The schema graph: tables as vertices, key/foreign-key edges.
//!
//! Lattice generation (Phase 0) walks this graph: a join-query tree may only
//! use joins "implicit in the schema graph" (no cross products). Each edge is
//! one declared foreign key; an edge is traversable in both directions (from
//! the referencing table to the referenced one and back), but its identity —
//! which side holds the foreign-key column — is preserved, which matters for
//! self-referencing relationships such as a citation table.

use relengine::{Database, FkId, TableId};

/// One direction-aware incidence entry of the schema graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Incidence {
    /// The foreign key realizing this edge.
    pub fk: FkId,
    /// The table on the other end.
    pub other: TableId,
    /// Whether the *local* table (the one whose incidence list this entry
    /// sits in) is the referencing (`from`) side of the foreign key.
    pub local_is_from: bool,
}

/// Adjacency view of the database's key/foreign-key graph.
#[derive(Debug, Clone)]
pub struct SchemaGraph {
    /// `incident[t]` lists the edges touching table `t`.
    incident: Vec<Vec<Incidence>>,
    /// Tables that contain at least one text attribute (keyword-bindable).
    text_tables: Vec<bool>,
    fk_count: usize,
}

impl SchemaGraph {
    /// Builds the schema graph of `db`.
    pub fn new(db: &Database) -> Self {
        let n = db.table_count();
        let mut incident = vec![Vec::new(); n];
        for (fk_id, fk) in db.foreign_keys().iter().enumerate() {
            incident[fk.from_table].push(Incidence {
                fk: fk_id,
                other: fk.to_table,
                local_is_from: true,
            });
            incident[fk.to_table].push(Incidence {
                fk: fk_id,
                other: fk.from_table,
                local_is_from: false,
            });
        }
        let text_tables = (0..n).map(|t| db.table(t).schema().has_text()).collect();
        SchemaGraph { incident, text_tables, fk_count: db.foreign_keys().len() }
    }

    /// Number of tables.
    pub fn table_count(&self) -> usize {
        self.incident.len()
    }

    /// Number of foreign keys (undirected edges).
    pub fn fk_count(&self) -> usize {
        self.fk_count
    }

    /// Edges incident to table `t`.
    pub fn incident(&self, t: TableId) -> &[Incidence] {
        &self.incident[t]
    }

    /// Whether table `t` has text attributes, i.e. keywords can bind to it.
    pub fn has_text(&self, t: TableId) -> bool {
        self.text_tables[t]
    }

    /// Degree of table `t` in the schema graph.
    pub fn degree(&self, t: TableId) -> usize {
        self.incident[t].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder};

    /// person, publication, writes(person, publication), cites(pub, pub)
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("person")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.table("publication")
            .column("id", DataType::Int)
            .column("title", DataType::Text)
            .primary_key("id");
        b.table("writes")
            .column("person_id", DataType::Int)
            .column("pub_id", DataType::Int);
        b.table("cites")
            .column("citing", DataType::Int)
            .column("cited", DataType::Int);
        b.foreign_key("writes", "person_id", "person", "id").unwrap();
        b.foreign_key("writes", "pub_id", "publication", "id").unwrap();
        b.foreign_key("cites", "citing", "publication", "id").unwrap();
        b.foreign_key("cites", "cited", "publication", "id").unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn incidences_both_directions() {
        let db = db();
        let g = SchemaGraph::new(&db);
        assert_eq!(g.table_count(), 4);
        assert_eq!(g.fk_count(), 4);
        let person = db.table_id("person").unwrap();
        let writes = db.table_id("writes").unwrap();
        assert_eq!(g.degree(person), 1);
        assert!(!g.incident(person)[0].local_is_from);
        assert_eq!(g.incident(person)[0].other, writes);
        assert_eq!(g.degree(writes), 2);
        assert!(g.incident(writes).iter().all(|i| i.local_is_from));
    }

    #[test]
    fn self_relationship_contributes_two_incidences() {
        let db = db();
        let g = SchemaGraph::new(&db);
        let publication = db.table_id("publication").unwrap();
        // publication touches: writes.pub_id, cites.citing, cites.cited.
        assert_eq!(g.degree(publication), 3);
    }

    #[test]
    fn text_tables() {
        let db = db();
        let g = SchemaGraph::new(&db);
        assert!(g.has_text(db.table_id("person").unwrap()));
        assert!(g.has_text(db.table_id("publication").unwrap()));
        assert!(!g.has_text(db.table_id("writes").unwrap()));
        assert!(!g.has_text(db.table_id("cites").unwrap()));
    }
}
