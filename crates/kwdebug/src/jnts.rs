//! Join networks of tuple sets (JNTS).
//!
//! A JNTS is the structural form of one lattice node: a tree whose vertices
//! are *relation copies* (`R_0` = the free tuple set carrying the empty
//! keyword, `R_1..R_{m+1}` = keyword-bindable copies) and whose edges are
//! key/foreign-key joins from the schema graph. The SQL query of a lattice
//! node is fully determined by its JNTS plus the runtime keyword binding.

use relengine::{FkId, TableId};

use crate::schema_graph::Incidence;

/// Copy index of a relation inside the lattice. Copy `0` is the free copy —
/// the tuple set bound to the empty keyword; copies `1..=maxJoins+1` are
/// keyword-bindable.
pub type CopyIdx = u8;

/// A relation copy: one vertex of a JNTS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TupleSet {
    /// Underlying table.
    pub table: TableId,
    /// Copy index; `0` means free.
    pub copy: CopyIdx,
}

impl TupleSet {
    /// Creates a tuple set.
    pub fn new(table: TableId, copy: CopyIdx) -> Self {
        TupleSet { table, copy }
    }

    /// Whether this is a free copy (bound to the empty keyword).
    pub fn is_free(&self) -> bool {
        self.copy == 0
    }
}

/// One join edge of a JNTS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JntsEdge {
    /// Endpoint vertex index.
    pub a: u8,
    /// Endpoint vertex index.
    pub b: u8,
    /// The foreign key realizing the join.
    pub fk: FkId,
    /// Whether vertex `a` is on the referencing (`from`) side of `fk`.
    /// Needed to distinguish the two orientations of a self-relationship
    /// (e.g. `cites.citing` vs `cites.cited`).
    pub a_is_from: bool,
}

/// A join network of tuple sets: a tree of relation copies.
///
/// Constructed via [`Jnts::single`] and [`Jnts::extend`], both of which
/// preserve tree-ness by construction, so no separate validation is needed on
/// the hot path ([`Jnts::validate`] exists for tests).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Jnts {
    nodes: Vec<TupleSet>,
    edges: Vec<JntsEdge>,
}

impl Jnts {
    /// A single-vertex network (a base-level lattice node).
    pub fn single(ts: TupleSet) -> Self {
        Jnts { nodes: vec![ts], edges: Vec::new() }
    }

    /// Extends the network by joining a new vertex `(incidence.other, copy)`
    /// to the existing vertex `at` along `incidence`.
    pub fn extend(&self, at: usize, incidence: Incidence, copy: CopyIdx) -> Self {
        debug_assert!(at < self.nodes.len());
        let mut nodes = self.nodes.clone();
        let mut edges = self.edges.clone();
        let new_idx = nodes.len() as u8;
        nodes.push(TupleSet::new(incidence.other, copy));
        edges.push(JntsEdge {
            a: at as u8,
            b: new_idx,
            fk: incidence.fk,
            a_is_from: incidence.local_is_from,
        });
        Jnts { nodes, edges }
    }

    /// Reassembles a network from raw vertices and edges (deserialization),
    /// returning `None` unless they form a valid tree.
    pub fn from_parts(nodes: Vec<TupleSet>, edges: Vec<JntsEdge>) -> Option<Self> {
        let j = Jnts { nodes, edges };
        j.validate().then_some(j)
    }

    /// The vertices.
    pub fn nodes(&self) -> &[TupleSet] {
        &self.nodes
    }

    /// The edges.
    pub fn edges(&self) -> &[JntsEdge] {
        &self.edges
    }

    /// Number of vertices. Equals the lattice level of this network.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of joins.
    pub fn join_count(&self) -> usize {
        self.edges.len()
    }

    /// Heap bytes held by this network's vertex and edge vectors (capacity,
    /// not length) — used by [`crate::lattice::Lattice::memory_footprint`].
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<TupleSet>()
            + self.edges.capacity() * std::mem::size_of::<JntsEdge>()
    }

    /// Degree of vertex `i`.
    pub fn degree(&self, i: usize) -> usize {
        self.edges
            .iter()
            .filter(|e| e.a as usize == i || e.b as usize == i)
            .count()
    }

    /// Whether the network contains the given relation copy.
    pub fn contains(&self, ts: TupleSet) -> bool {
        self.nodes.contains(&ts)
    }

    /// Whether vertex `at` already uses foreign key `fk` from its
    /// referencing side. Extending such a vertex with the same key again
    /// would force two neighbour tuples to be identical (the referencing
    /// column holds a single value), a degenerate network that DISCOVER-style
    /// candidate generation excludes.
    pub fn uses_fk_from(&self, at: usize, fk: FkId) -> bool {
        self.edges.iter().any(|e| {
            e.fk == fk
                && ((e.a as usize == at && e.a_is_from) || (e.b as usize == at && !e.a_is_from))
        })
    }

    /// Indices of vertices whose removal keeps the network connected
    /// (degree-1 vertices; all vertices for a single-vertex network).
    pub fn leaves(&self) -> Vec<usize> {
        if self.nodes.len() == 1 {
            return vec![0];
        }
        (0..self.nodes.len()).filter(|&i| self.degree(i) == 1).collect()
    }

    /// The network with leaf vertex `leaf` removed (indices re-packed).
    ///
    /// # Panics
    /// Panics if `leaf` is not a leaf or the network has a single vertex —
    /// both indicate internal misuse, not user input.
    pub fn remove_leaf(&self, leaf: usize) -> Self {
        assert!(self.nodes.len() > 1, "cannot remove the only vertex");
        assert_eq!(self.degree(leaf), 1, "vertex {leaf} is not a leaf");
        let mut nodes = Vec::with_capacity(self.nodes.len() - 1);
        let mut remap = vec![u8::MAX; self.nodes.len()];
        for (i, ts) in self.nodes.iter().enumerate() {
            if i != leaf {
                remap[i] = nodes.len() as u8;
                nodes.push(*ts);
            }
        }
        let edges = self
            .edges
            .iter()
            .filter(|e| e.a as usize != leaf && e.b as usize != leaf)
            .map(|e| JntsEdge {
                a: remap[e.a as usize],
                b: remap[e.b as usize],
                fk: e.fk,
                a_is_from: e.a_is_from,
            })
            .collect();
        Jnts { nodes, edges }
    }

    /// Checks tree invariants; used by tests and property checks.
    pub fn validate(&self) -> bool {
        if self.nodes.is_empty() || self.edges.len() != self.nodes.len() - 1 {
            return false;
        }
        let n = self.nodes.len();
        let mut adj = vec![Vec::new(); n];
        for e in &self.edges {
            let (a, b) = (e.a as usize, e.b as usize);
            if a >= n || b >= n || a == b {
                return false;
            }
            adj[a].push(b);
            adj[b].push(a);
        }
        let mut seen = vec![false; n];
        let mut stack = vec![0];
        seen[0] = true;
        let mut cnt = 1;
        while let Some(v) = stack.pop() {
            for &u in &adj[v] {
                if !seen[u] {
                    seen[u] = true;
                    cnt += 1;
                    stack.push(u);
                }
            }
        }
        cnt == n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inc(fk: FkId, other: TableId, local_is_from: bool) -> Incidence {
        Incidence { fk, other, local_is_from }
    }

    #[test]
    fn single_and_extend() {
        let j = Jnts::single(TupleSet::new(0, 1));
        assert_eq!(j.node_count(), 1);
        assert_eq!(j.join_count(), 0);
        assert!(j.validate());
        let j2 = j.extend(0, inc(0, 1, true), 0);
        assert_eq!(j2.node_count(), 2);
        assert_eq!(j2.join_count(), 1);
        assert!(j2.validate());
        assert!(j2.contains(TupleSet::new(1, 0)));
        assert!(!j2.contains(TupleSet::new(1, 1)));
    }

    #[test]
    fn leaves_and_degree() {
        // path: v0 - v1 - v2
        let j = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, true), 0)
            .extend(1, inc(1, 2, true), 1);
        assert_eq!(j.degree(0), 1);
        assert_eq!(j.degree(1), 2);
        assert_eq!(j.leaves(), vec![0, 2]);
        // star: v0 center
        let s = Jnts::single(TupleSet::new(0, 0))
            .extend(0, inc(0, 1, true), 1)
            .extend(0, inc(1, 2, true), 1);
        assert_eq!(s.leaves(), vec![1, 2]);
    }

    #[test]
    fn single_vertex_is_its_own_leaf() {
        assert_eq!(Jnts::single(TupleSet::new(3, 0)).leaves(), vec![0]);
    }

    #[test]
    fn remove_leaf_repacks_indices() {
        let j = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, true), 0)
            .extend(1, inc(1, 2, true), 1);
        let r = j.remove_leaf(0);
        assert_eq!(r.node_count(), 2);
        assert!(r.validate());
        assert_eq!(r.nodes()[0], TupleSet::new(1, 0));
        assert_eq!(r.nodes()[1], TupleSet::new(2, 1));
        assert_eq!(r.edges()[0].a, 0);
        assert_eq!(r.edges()[0].b, 1);
    }

    #[test]
    #[should_panic(expected = "not a leaf")]
    fn remove_non_leaf_panics() {
        let j = Jnts::single(TupleSet::new(0, 1))
            .extend(0, inc(0, 1, true), 0)
            .extend(1, inc(1, 2, true), 1);
        let _ = j.remove_leaf(1);
    }

    #[test]
    fn uses_fk_from_detects_degenerate_extension() {
        // writes(person_id, pub_id): vertex W joined to person via fk 0 where
        // W is the from side.
        let j = Jnts::single(TupleSet::new(2, 0)).extend(0, inc(0, 0, true), 1);
        assert!(j.uses_fk_from(0, 0)); // W already references person via fk 0
        assert!(!j.uses_fk_from(0, 1)); // different fk is fine
        assert!(!j.uses_fk_from(1, 0)); // person side is the "to" side
    }

    #[test]
    fn free_copy_flag() {
        assert!(TupleSet::new(0, 0).is_free());
        assert!(!TupleSet::new(0, 1).is_free());
    }

    #[test]
    fn validate_rejects_broken_graphs() {
        let good = Jnts::single(TupleSet::new(0, 0)).extend(0, inc(0, 1, true), 0);
        assert!(good.validate());
        // Forge a self-loop.
        let bad = Jnts {
            nodes: vec![TupleSet::new(0, 0), TupleSet::new(1, 0)],
            edges: vec![JntsEdge { a: 0, b: 0, fk: 0, a_is_from: true }],
        };
        assert!(!bad.validate());
        // Wrong edge count.
        let bad = Jnts { nodes: vec![TupleSet::new(0, 0), TupleSet::new(1, 0)], edges: vec![] };
        assert!(!bad.validate());
    }
}
