//! Bottom-up with reuse (BUWR, the paper's Algorithm 3).
//!
//! All MTNs and their descendants are processed *simultaneously* in one
//! bottom-up sweep with a single shared status map: a sub-query common to
//! several MTNs is executed at most once, removing the redundancy of BU.
//! Rule R2 still prunes upward — a dead node kills its entire ancestor cone
//! across every MTN's search space at once.
//!
//! Metrics recorded (see [`crate::metrics`]): each visit skipped because the
//! shared status map already classified the node is one `reuse_hits` — the
//! cross-MTN sharing Figure 13 quantifies — and each ancestor newly killed by
//! R2 is one `r2_inferences`. Like BU, the ascending order never fires R1.
//!
//! Degraded mode: memoized verdicts are consulted first
//! ([`AlivenessOracle::verdict_if_known`]) so cached nodes never touch the
//! budget; abandoned probes stay unknown and the sweep continues; budget
//! exhaustion stops the sweep and the partial status map yields the MTN
//! classification and MPAN bounds.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, probe, Classified, ProbeOutcome, Status};

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut status = vec![Status::Unknown; pruned.len()];
    // Dense order is level-ascending: one sweep is the level-by-level climb
    // of Algorithm 3, with "next level = parents of alive nodes" realized by
    // R2 having already marked the ancestors of dead nodes.
    for n in 0..pruned.len() {
        if status[n] != Status::Unknown {
            oracle.metrics().reuse_hits.incr();
            continue;
        }
        let outcome = match oracle.verdict_if_known(pruned.lattice_id(n)) {
            Some(alive) => {
                oracle.metrics().memo_hits.incr();
                ProbeOutcome::Verdict(alive)
            }
            None => probe(lattice, pruned, oracle, n)?,
        };
        match outcome {
            ProbeOutcome::Verdict(true) => status[n] = Status::Alive,
            ProbeOutcome::Verdict(false) => {
                let mut inferred = 0;
                for &a in pruned.asc_plus(n) {
                    if a != n && status[a] == Status::Unknown {
                        inferred += 1;
                    }
                    status[a] = Status::Dead;
                }
                oracle.metrics().r2_inferences.add(inferred);
            }
            ProbeOutcome::Abandoned => continue,
            ProbeOutcome::Exhausted => break,
        }
    }
    Ok(outcome_from_global_status(pruned, &status))
}
