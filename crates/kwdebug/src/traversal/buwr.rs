//! Bottom-up with reuse (BUWR, the paper's Algorithm 3).
//!
//! All MTNs and their descendants are processed *simultaneously* in one
//! bottom-up sweep with a single shared status map: a sub-query common to
//! several MTNs is executed at most once, removing the redundancy of BU.
//! Rule R2 still prunes upward — a dead node kills its entire ancestor cone
//! across every MTN's search space at once.
//!
//! As a [`Frontier`], BUWR emits one wave per global lattice level,
//! ascending: dense order *is* level order, so the waves are the maximal
//! equal-level runs of `0..len`. The sweep is the level-by-level climb of
//! Algorithm 3, with "next level = parents of alive nodes" realized by R2
//! having already marked the ancestors of dead nodes.
//!
//! Metrics recorded (see [`crate::metrics`]): each visit skipped because the
//! shared status map already classified the node is one `reuse_hits` — the
//! cross-MTN sharing Figure 13 quantifies — and each ancestor newly killed by
//! R2 is one `r2_inferences`. The driver consults memoized verdicts before
//! the budget ([`crate::oracle::AlivenessOracle::verdict_if_known`]), so
//! cached nodes never touch it. Like BU, the ascending order never fires R1.
//!
//! Degraded mode: abandoned probes stay unknown and the sweep continues;
//! budget exhaustion stops the sweep and the partial status map yields the
//! MTN classification and MPAN bounds.

use crate::metrics::Metrics;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, Classified, Frontier, Status};

pub(super) struct BuwrFrontier<'p> {
    pruned: &'p PrunedLattice,
    /// Next unemitted dense node (dense order = level-ascending order).
    pos: usize,
    status: Vec<Status>,
}

impl<'p> BuwrFrontier<'p> {
    pub(super) fn new(pruned: &'p PrunedLattice) -> Self {
        BuwrFrontier { pruned, pos: 0, status: vec![Status::Unknown; pruned.len()] }
    }
}

impl Frontier for BuwrFrontier<'_> {
    fn next_wave(&mut self, out: &mut Vec<usize>) {
        if self.pos >= self.pruned.len() {
            return;
        }
        let lvl = self.pruned.level(self.pos);
        while self.pos < self.pruned.len() && self.pruned.level(self.pos) == lvl {
            out.push(self.pos);
            self.pos += 1;
        }
    }

    fn is_unknown(&self, n: usize) -> bool {
        self.status[n] == Status::Unknown
    }

    fn apply(&mut self, n: usize, alive: bool, metrics: &Metrics) {
        if alive {
            self.status[n] = Status::Alive;
        } else {
            let mut inferred = 0;
            for &a in self.pruned.asc_plus(n) {
                if a != n && self.status[a] == Status::Unknown {
                    inferred += 1;
                }
                self.status[a] = Status::Dead;
            }
            metrics.r2_inferences.add(inferred);
        }
    }

    fn abandon(&mut self, _n: usize) {}

    fn exhaust(&mut self) {
        // The partial status map already holds everything we know.
        self.pos = self.pruned.len();
    }

    fn finish(self: Box<Self>) -> Classified {
        outcome_from_global_status(self.pruned, &self.status)
    }
}
