//! Top-down with reuse (TDWR, §2.5.2).
//!
//! The top-down analogue of Algorithm 3: one shared status map, one sweep
//! from the highest lattice level down. Alive nodes propagate rule R1 over
//! the descendant cones of *all* MTNs at once. On workloads where answers
//! concentrate at high levels (the DBLife behaviour in §3.5), this is the
//! strongest of the four order-based strategies.
//!
//! Metrics recorded (see [`crate::metrics`]): each visit skipped because the
//! shared status map already classified the node is one `reuse_hits`
//! (cross-MTN sharing, Figure 13); each descendant newly revived by R1 is one
//! `r1_inferences`. Like TD, the descending order never fires R2.
//!
//! Degraded mode: memoized verdicts are consulted first
//! ([`AlivenessOracle::verdict_if_known`]) so cached nodes never touch the
//! budget; abandoned probes stay unknown and the sweep continues; budget
//! exhaustion stops the sweep and the partial status map yields the MTN
//! classification and MPAN bounds.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, probe, Classified, ProbeOutcome, Status};

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut status = vec![Status::Unknown; pruned.len()];
    for n in (0..pruned.len()).rev() {
        if status[n] != Status::Unknown {
            oracle.metrics().reuse_hits.incr();
            continue;
        }
        let outcome = match oracle.verdict_if_known(pruned.lattice_id(n)) {
            Some(alive) => {
                oracle.metrics().memo_hits.incr();
                ProbeOutcome::Verdict(alive)
            }
            None => probe(lattice, pruned, oracle, n)?,
        };
        match outcome {
            ProbeOutcome::Verdict(true) => {
                let mut inferred = 0;
                for &d in pruned.desc_plus(n) {
                    if d != n && status[d] == Status::Unknown {
                        inferred += 1;
                    }
                    status[d] = Status::Alive;
                }
                oracle.metrics().r1_inferences.add(inferred);
            }
            ProbeOutcome::Verdict(false) => status[n] = Status::Dead,
            ProbeOutcome::Abandoned => continue,
            ProbeOutcome::Exhausted => break,
        }
    }
    Ok(outcome_from_global_status(pruned, &status))
}
