//! Top-down with reuse (TDWR, §2.5.2).
//!
//! The top-down analogue of Algorithm 3: one shared status map, one sweep
//! from the highest lattice level down. Alive nodes propagate rule R1 over
//! the descendant cones of *all* MTNs at once. On workloads where answers
//! concentrate at high levels (the DBLife behaviour in §3.5), this is the
//! strongest of the four order-based strategies.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{execute, outcome_from_global_status, Status};

type Classified = (Vec<usize>, Vec<usize>, Vec<Vec<usize>>);

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut status = vec![Status::Unknown; pruned.len()];
    for n in (0..pruned.len()).rev() {
        if status[n] != Status::Unknown {
            continue;
        }
        if execute(lattice, pruned, oracle, n)? {
            for &d in pruned.desc_plus(n) {
                status[d] = Status::Alive;
            }
        } else {
            status[n] = Status::Dead;
        }
    }
    Ok(outcome_from_global_status(pruned, &status))
}
