//! Top-down with reuse (TDWR, §2.5.2).
//!
//! The top-down analogue of Algorithm 3: one shared status map, one sweep
//! from the highest lattice level down. Alive nodes propagate rule R1 over
//! the descendant cones of *all* MTNs at once. On workloads where answers
//! concentrate at high levels (the DBLife behaviour in §3.5), this is the
//! strongest of the four order-based strategies.
//!
//! As a [`Frontier`], TDWR emits one wave per global lattice level,
//! descending: the maximal equal-level runs of `(0..len).rev()`. Same-level
//! nodes are never descendants of each other, so R1 from one wave member
//! can never classify another.
//!
//! Metrics recorded (see [`crate::metrics`]): each visit skipped because the
//! shared status map already classified the node is one `reuse_hits`
//! (cross-MTN sharing, Figure 13); each descendant newly revived by R1 is one
//! `r1_inferences`. The driver consults memoized verdicts before the budget
//! ([`crate::oracle::AlivenessOracle::verdict_if_known`]), so cached nodes
//! never touch it. Like TD, the descending order never fires R2.
//!
//! Degraded mode: abandoned probes stay unknown and the sweep continues;
//! budget exhaustion stops the sweep and the partial status map yields the
//! MTN classification and MPAN bounds.

use crate::metrics::Metrics;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, Classified, Frontier, Status};

pub(super) struct TdwrFrontier<'p> {
    pruned: &'p PrunedLattice,
    /// Number of dense nodes already emitted, walking `0..len` in reverse.
    emitted: usize,
    status: Vec<Status>,
}

impl<'p> TdwrFrontier<'p> {
    pub(super) fn new(pruned: &'p PrunedLattice) -> Self {
        TdwrFrontier { pruned, emitted: 0, status: vec![Status::Unknown; pruned.len()] }
    }

    /// The dense node at reverse-walk position `pos`.
    fn at(&self, pos: usize) -> usize {
        self.pruned.len() - 1 - pos
    }
}

impl Frontier for TdwrFrontier<'_> {
    fn next_wave(&mut self, out: &mut Vec<usize>) {
        let len = self.pruned.len();
        if self.emitted >= len {
            return;
        }
        let lvl = self.pruned.level(self.at(self.emitted));
        while self.emitted < len && self.pruned.level(self.at(self.emitted)) == lvl {
            out.push(self.at(self.emitted));
            self.emitted += 1;
        }
    }

    fn is_unknown(&self, n: usize) -> bool {
        self.status[n] == Status::Unknown
    }

    fn apply(&mut self, n: usize, alive: bool, metrics: &Metrics) {
        if alive {
            let mut inferred = 0;
            for &d in self.pruned.desc_plus(n) {
                if d != n && self.status[d] == Status::Unknown {
                    inferred += 1;
                }
                self.status[d] = Status::Alive;
            }
            metrics.r1_inferences.add(inferred);
        } else {
            self.status[n] = Status::Dead;
        }
    }

    fn abandon(&mut self, _n: usize) {}

    fn exhaust(&mut self) {
        self.emitted = self.pruned.len();
    }

    fn finish(self: Box<Self>) -> Classified {
        outcome_from_global_status(self.pruned, &self.status)
    }
}
