//! Bottom-up traversal without reuse (BU, §2.5.1).
//!
//! Each MTN is classified independently: its sub-lattice is swept from the
//! single-table level upward, executing every node whose status is still
//! unknown. A dead node marks all of its ancestors dead (rule R2), which is
//! where bottom-up saves queries — whole upper regions of the sub-lattice are
//! skipped once a low-level sub-query comes back empty. Nothing is shared
//! between MTNs: a sub-query common to two MTNs is executed twice, which is
//! exactly the redundancy the paper's reuse variants remove.
//!
//! As a [`Frontier`], BU emits one wave per *level run* of the current
//! MTN's cone: `Desc+(m)` is ascending in dense index, hence ascending in
//! level, so each maximal run of equal-level nodes is a wave. Same-level
//! nodes are never ancestors of each other, so R2 from one wave member can
//! never classify another — the wave-independence invariant the parallel
//! driver needs. When a cone's last wave drains, the MTN is classified and
//! the next cone starts with a fresh status map.
//!
//! Metrics recorded (see [`crate::metrics`]): each skipped visit of an
//! already-classified node is one `reuse_hits` (within-MTN only — BU shares
//! nothing across MTNs, counted by the driver); each ancestor newly killed
//! by R2 is one `r2_inferences`. BU never fires R1: ascending order
//! classifies every descendant before its ancestor.
//!
//! Degraded mode: an abandoned probe leaves its node unknown and the sweep
//! continues (R2 may still classify the MTN from other nodes); budget
//! exhaustion finishes the current MTN from whatever statuses it has, then
//! files all remaining MTNs as unknown.

use crate::metrics::Metrics;
use crate::prune::PrunedLattice;

use super::{Classified, Frontier, Status};

pub(super) struct BuFrontier<'p> {
    pruned: &'p PrunedLattice,
    /// Index into `pruned.mtns()` of the cone being swept.
    mtn_idx: usize,
    /// Position of the next unemitted node within the current cone.
    pos: usize,
    status: Vec<Status>,
    classified: Classified,
    done: bool,
}

impl<'p> BuFrontier<'p> {
    pub(super) fn new(pruned: &'p PrunedLattice) -> Self {
        BuFrontier {
            pruned,
            mtn_idx: 0,
            pos: 0,
            status: vec![Status::Unknown; pruned.len()],
            classified: Classified::default(),
            done: pruned.mtns().is_empty(),
        }
    }

    /// The current MTN's cone in visit order (ascending = level-ascending).
    fn cone(&self) -> &'p [usize] {
        self.pruned.desc_plus(self.pruned.mtns()[self.mtn_idx])
    }
}

impl Frontier for BuFrontier<'_> {
    fn next_wave(&mut self, out: &mut Vec<usize>) {
        while !self.done {
            let cone = self.cone();
            if self.pos >= cone.len() {
                // Cone complete: classify this MTN, move to the next.
                let m = self.pruned.mtns()[self.mtn_idx];
                self.classified.classify_mtn(self.pruned, &self.status, m);
                self.mtn_idx += 1;
                self.pos = 0;
                if self.mtn_idx >= self.pruned.mtns().len() {
                    self.done = true;
                    return;
                }
                self.status.fill(Status::Unknown);
                continue;
            }
            // Emit the maximal run of equal-level nodes starting at pos.
            let lvl = self.pruned.level(cone[self.pos]);
            while self.pos < cone.len() && self.pruned.level(cone[self.pos]) == lvl {
                out.push(cone[self.pos]);
                self.pos += 1;
            }
            return;
        }
    }

    fn is_unknown(&self, n: usize) -> bool {
        self.status[n] == Status::Unknown
    }

    fn apply(&mut self, n: usize, alive: bool, metrics: &Metrics) {
        if alive {
            self.status[n] = Status::Alive;
        } else {
            // R2: every ancestor of a dead node is dead.
            let mut inferred = 0;
            for &a in self.pruned.asc_plus(n) {
                if a != n && self.status[a] == Status::Unknown {
                    inferred += 1;
                }
                self.status[a] = Status::Dead;
            }
            metrics.r2_inferences.add(inferred);
        }
    }

    fn abandon(&mut self, _n: usize) {}

    fn exhaust(&mut self) {
        if self.done {
            return;
        }
        // Classify the in-progress MTN from its partial statuses; every
        // later MTN is unknown.
        let m = self.pruned.mtns()[self.mtn_idx];
        self.classified.classify_mtn(self.pruned, &self.status, m);
        self.classified
            .unknown_mtns
            .extend(self.pruned.mtns()[self.mtn_idx + 1..].iter().copied());
        self.done = true;
    }

    fn finish(self: Box<Self>) -> Classified {
        self.classified
    }
}
