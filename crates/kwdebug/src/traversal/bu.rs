//! Bottom-up traversal without reuse (BU, §2.5.1).
//!
//! Each MTN is classified independently: its sub-lattice is swept from the
//! single-table level upward, executing every node whose status is still
//! unknown. A dead node marks all of its ancestors dead (rule R2), which is
//! where bottom-up saves queries — whole upper regions of the sub-lattice are
//! skipped once a low-level sub-query comes back empty. Nothing is shared
//! between MTNs: a sub-query common to two MTNs is executed twice, which is
//! exactly the redundancy the paper's reuse variants remove.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{execute, extract_mpans, Status};

type Classified = (Vec<usize>, Vec<usize>, Vec<Vec<usize>>);

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut alive_mtns = Vec::new();
    let mut dead_mtns = Vec::new();
    let mut mpans = Vec::new();
    for &m in pruned.mtns() {
        let mut status = vec![Status::Unknown; pruned.len()];
        // desc_plus is ascending in dense index = ascending in level.
        for &n in pruned.desc_plus(m) {
            if status[n] != Status::Unknown {
                continue;
            }
            if execute(lattice, pruned, oracle, n)? {
                status[n] = Status::Alive;
            } else {
                // R2: every ancestor of a dead node is dead.
                for &a in pruned.asc_plus(n) {
                    status[a] = Status::Dead;
                }
            }
        }
        match status[m] {
            Status::Alive => alive_mtns.push(m),
            Status::Dead => {
                dead_mtns.push(m);
                mpans.push(extract_mpans(pruned, &status, m));
            }
            Status::Unknown => {
                return Err(KwError::Internal("BU left its MTN unclassified".into()))
            }
        }
    }
    Ok((alive_mtns, dead_mtns, mpans))
}
