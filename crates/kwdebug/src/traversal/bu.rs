//! Bottom-up traversal without reuse (BU, §2.5.1).
//!
//! Each MTN is classified independently: its sub-lattice is swept from the
//! single-table level upward, executing every node whose status is still
//! unknown. A dead node marks all of its ancestors dead (rule R2), which is
//! where bottom-up saves queries — whole upper regions of the sub-lattice are
//! skipped once a low-level sub-query comes back empty. Nothing is shared
//! between MTNs: a sub-query common to two MTNs is executed twice, which is
//! exactly the redundancy the paper's reuse variants remove.
//!
//! Metrics recorded (see [`crate::metrics`]): each skipped visit of an
//! already-classified node is one `reuse_hits` (within-MTN only — BU shares
//! nothing across MTNs); each ancestor newly killed by R2 is one
//! `r2_inferences`. BU never fires R1: ascending order classifies every
//! descendant before its ancestor.
//!
//! Degraded mode: an abandoned probe leaves its node unknown and the sweep
//! continues (R2 may still classify the MTN from other nodes); budget
//! exhaustion finishes the current MTN from whatever statuses it has, then
//! files all remaining MTNs as unknown.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{probe, Classified, ProbeOutcome, Status};

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut classified = Classified::default();
    let mut exhausted = false;
    for (i, &m) in pruned.mtns().iter().enumerate() {
        if exhausted {
            classified.unknown_mtns.extend(pruned.mtns()[i..].iter().copied());
            break;
        }
        let mut status = vec![Status::Unknown; pruned.len()];
        // desc_plus is ascending in dense index = ascending in level.
        for &n in pruned.desc_plus(m) {
            if status[n] != Status::Unknown {
                oracle.metrics().reuse_hits.incr();
                continue;
            }
            match probe(lattice, pruned, oracle, n)? {
                ProbeOutcome::Verdict(true) => status[n] = Status::Alive,
                ProbeOutcome::Verdict(false) => {
                    // R2: every ancestor of a dead node is dead.
                    let mut inferred = 0;
                    for &a in pruned.asc_plus(n) {
                        if a != n && status[a] == Status::Unknown {
                            inferred += 1;
                        }
                        status[a] = Status::Dead;
                    }
                    oracle.metrics().r2_inferences.add(inferred);
                }
                ProbeOutcome::Abandoned => continue,
                ProbeOutcome::Exhausted => {
                    exhausted = true;
                    break;
                }
            }
        }
        classified.classify_mtn(pruned, &status, m);
    }
    Ok(classified)
}
