//! Brute-force reference traversal.
//!
//! Executes the SQL query of *every* node in the pruned sub-lattice, never
//! using R1/R2 inference. It is the most expensive strategy and exists as
//! ground truth: every other strategy must produce exactly the same MTN
//! classification and MPAN sets (asserted by the integration and property
//! tests), differing only in query count. Accordingly it records no
//! `r1_inferences`, `r2_inferences` or `reuse_hits` — its probe count *is*
//! the pruned sub-lattice size.
//!
//! As a [`Frontier`], brute force emits one single wave holding every dense
//! node in order: with no inference rules, every node is independent of
//! every other, making it the best-case workload for the parallel driver.
//!
//! Degraded mode: an abandoned node simply stays unknown; budget exhaustion
//! stops the scan and everything unvisited stays unknown.

use crate::metrics::Metrics;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, Classified, Frontier, Status};

pub(super) struct BruteFrontier<'p> {
    pruned: &'p PrunedLattice,
    emitted: bool,
    status: Vec<Status>,
}

impl<'p> BruteFrontier<'p> {
    pub(super) fn new(pruned: &'p PrunedLattice) -> Self {
        BruteFrontier { pruned, emitted: false, status: vec![Status::Unknown; pruned.len()] }
    }
}

impl Frontier for BruteFrontier<'_> {
    fn next_wave(&mut self, out: &mut Vec<usize>) {
        if !self.emitted {
            out.extend(0..self.pruned.len());
            self.emitted = true;
        }
    }

    fn is_unknown(&self, n: usize) -> bool {
        // No inference: a node is only classified by its own probe, so every
        // node is still unknown when the driver reaches it.
        self.status[n] == Status::Unknown
    }

    fn apply(&mut self, n: usize, alive: bool, _metrics: &Metrics) {
        self.status[n] = if alive { Status::Alive } else { Status::Dead };
    }

    fn abandon(&mut self, _n: usize) {}

    fn exhaust(&mut self) {}

    fn finish(self: Box<Self>) -> Classified {
        outcome_from_global_status(self.pruned, &self.status)
    }
}
