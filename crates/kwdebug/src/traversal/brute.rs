//! Brute-force reference traversal.
//!
//! Executes the SQL query of *every* node in the pruned sub-lattice, never
//! using R1/R2 inference. It is the most expensive strategy and exists as
//! ground truth: every other strategy must produce exactly the same MTN
//! classification and MPAN sets (asserted by the integration and property
//! tests), differing only in query count. Accordingly it records no
//! `r1_inferences`, `r2_inferences` or `reuse_hits` — its probe count *is*
//! the pruned sub-lattice size.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{execute, outcome_from_global_status, Status};

type Classified = (Vec<usize>, Vec<usize>, Vec<Vec<usize>>);

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut status = vec![Status::Unknown; pruned.len()];
    for (n, s) in status.iter_mut().enumerate() {
        *s = if execute(lattice, pruned, oracle, n)? { Status::Alive } else { Status::Dead };
    }
    Ok(outcome_from_global_status(pruned, &status))
}
