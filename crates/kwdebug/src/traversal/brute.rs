//! Brute-force reference traversal.
//!
//! Executes the SQL query of *every* node in the pruned sub-lattice, never
//! using R1/R2 inference. It is the most expensive strategy and exists as
//! ground truth: every other strategy must produce exactly the same MTN
//! classification and MPAN sets (asserted by the integration and property
//! tests), differing only in query count. Accordingly it records no
//! `r1_inferences`, `r2_inferences` or `reuse_hits` — its probe count *is*
//! the pruned sub-lattice size.
//!
//! Degraded mode: an abandoned node simply stays unknown; budget exhaustion
//! stops the scan and everything unvisited stays unknown.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, probe, Classified, ProbeOutcome, Status};

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut status = vec![Status::Unknown; pruned.len()];
    for (n, s) in status.iter_mut().enumerate() {
        match probe(lattice, pruned, oracle, n)? {
            ProbeOutcome::Verdict(alive) => {
                *s = if alive { Status::Alive } else { Status::Dead };
            }
            ProbeOutcome::Abandoned => continue,
            ProbeOutcome::Exhausted => break,
        }
    }
    Ok(outcome_from_global_status(pruned, &status))
}
