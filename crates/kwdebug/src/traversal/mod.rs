//! Phase 3: lattice traversal strategies.
//!
//! Given the pruned sub-lattice (MTNs and their descendants), Phase 3 must
//! classify every MTN as **alive** (answer query) or **dead** (non-answer
//! query) and, for every dead MTN, find its **MPANs** — the maximal partially
//! alive nodes, i.e. alive descendants none of whose ancestors within the
//! MTN's sub-lattice is alive. The classification rules
//!
//! * **R1**: a node is alive ⇒ all of its descendants are alive,
//! * **R2**: a node has a dead descendant ⇒ it is dead,
//!
//! let a traversal *infer* the status of many nodes instead of executing
//! their SQL queries; strategies differ in the order they pick nodes and in
//! whether executions are shared across MTNs:
//!
//! | strategy | order | sharing |
//! |---|---|---|
//! | [`StrategyKind::BottomUp`] (BU) | per MTN, level ascending | none |
//! | [`StrategyKind::TopDown`] (TD) | per MTN, level descending | none |
//! | [`StrategyKind::BottomUpWithReuse`] (BUWR, Algorithm 3) | level ascending | global |
//! | [`StrategyKind::TopDownWithReuse`] (TDWR) | level descending | global |
//! | [`StrategyKind::ScoreBasedHeuristic`] (SBH, §2.5.3) | greedy by score | global |
//! | [`StrategyKind::BruteForce`] | every node | global (oracle only) |
//!
//! All strategies return identical classifications and MPAN sets — they only
//! differ in the number of SQL queries executed, which is exactly what the
//! paper measures (Figures 11–12, Table 4).
//!
//! Every traversal is instrumented through the oracle's
//! [`crate::metrics::Metrics`] block: [`run`] snapshots the counters before
//! and after the strategy and attributes the delta to the returned
//! [`TraversalOutcome::probes`] — probes executed, R1/R2 inferences fired,
//! and visits skipped on already-classified nodes (`reuse_hits`, the
//! quantity Figure 13's reuse percentage predicts).

mod brute;
mod bu;
mod buwr;
mod sbh;
mod td;
mod tdwr;

use std::time::Duration;

pub use sbh::DEFAULT_PA;

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::metrics::ProbeCounters;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

/// Selects a Phase-3 traversal strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Per-MTN bottom-up traversal (BU).
    BottomUp,
    /// Per-MTN top-down traversal (TD).
    TopDown,
    /// Bottom-up over all MTNs simultaneously (BUWR, the paper's Algorithm 3).
    BottomUpWithReuse,
    /// Top-down over all MTNs simultaneously (TDWR).
    TopDownWithReuse,
    /// Greedy score-based heuristic (SBH, §2.5.3) with `p_a = 0.5`.
    ScoreBasedHeuristic,
    /// Executes every node; the ground-truth reference.
    BruteForce,
}

impl StrategyKind {
    /// All strategies in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::BottomUp,
        StrategyKind::BottomUpWithReuse,
        StrategyKind::TopDown,
        StrategyKind::TopDownWithReuse,
        StrategyKind::ScoreBasedHeuristic,
    ];

    /// Short display name matching the paper's abbreviations.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::BottomUp => "BU",
            StrategyKind::TopDown => "TD",
            StrategyKind::BottomUpWithReuse => "BUWR",
            StrategyKind::TopDownWithReuse => "TDWR",
            StrategyKind::ScoreBasedHeuristic => "SBH",
            StrategyKind::BruteForce => "BRUTE",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classification state of a node during traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Not yet classified ("possibly alive" in the paper).
    Unknown,
    /// Returns at least one tuple.
    Alive,
    /// Returns no tuples.
    Dead,
}

/// Result of a Phase-3 traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalOutcome {
    /// Dense indices of MTNs classified alive (answer queries), ascending.
    pub alive_mtns: Vec<usize>,
    /// Dense indices of MTNs classified dead (non-answer queries), ascending.
    pub dead_mtns: Vec<usize>,
    /// For each dead MTN (aligned with `dead_mtns`), its MPANs ascending.
    pub mpans: Vec<Vec<usize>>,
    /// SQL queries executed by this traversal.
    pub sql_queries: u64,
    /// Wall-clock time spent executing SQL.
    pub sql_time: Duration,
    /// Full probe/inference counters for this traversal (delta of the
    /// oracle's metrics over the run); `probes.probes_executed` always equals
    /// `sql_queries`.
    pub probes: ProbeCounters,
}

impl TraversalOutcome {
    /// Total number of MPANs across all dead MTNs (with duplicates, as each
    /// dead MTN reports its own frontier).
    pub fn mpan_total(&self) -> usize {
        self.mpans.iter().map(Vec::len).sum()
    }

    /// Number of distinct MPAN nodes across all dead MTNs.
    pub fn mpan_unique(&self) -> usize {
        let mut all: Vec<usize> = self.mpans.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }
}

/// Runs a traversal strategy over a pruned lattice.
///
/// `pa` is the aliveness prior used by [`StrategyKind::ScoreBasedHeuristic`]
/// (ignored by the others); the paper finds `p_a = 0.5` works well.
pub fn run(
    kind: StrategyKind,
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    pa: f64,
) -> Result<TraversalOutcome, KwError> {
    let q0 = oracle.stats().queries;
    let t0 = oracle.stats().total_time;
    let m0 = oracle.metrics().snapshot();
    let (alive_mtns, dead_mtns, mpans) = match kind {
        StrategyKind::BottomUp => bu::run(lattice, pruned, oracle)?,
        StrategyKind::TopDown => td::run(lattice, pruned, oracle)?,
        StrategyKind::BottomUpWithReuse => buwr::run(lattice, pruned, oracle)?,
        StrategyKind::TopDownWithReuse => tdwr::run(lattice, pruned, oracle)?,
        StrategyKind::ScoreBasedHeuristic => sbh::run(lattice, pruned, oracle, pa)?,
        StrategyKind::BruteForce => brute::run(lattice, pruned, oracle)?,
    };
    Ok(TraversalOutcome {
        alive_mtns,
        dead_mtns,
        mpans,
        sql_queries: oracle.stats().queries - q0,
        sql_time: oracle.stats().total_time.saturating_sub(t0),
        probes: oracle.metrics().snapshot().delta(m0),
    })
}

/// Executes the SQL query of dense node `n` through the oracle.
pub(crate) fn execute(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    n: usize,
) -> Result<bool, KwError> {
    oracle.is_alive(pruned.lattice_id(n), pruned.jnts(lattice, n))
}

/// Extracts the MPANs of dead MTN `m` from complete statuses: alive strict
/// descendants of `m` with no alive parent inside `Desc+(m)`.
///
/// A parent-level check suffices: if any strict ancestor inside `Desc+(m)`
/// were alive, rule R1 would make some parent on the connecting chain alive
/// as well.
pub(crate) fn extract_mpans(pruned: &PrunedLattice, status: &[Status], m: usize) -> Vec<usize> {
    debug_assert_eq!(status[m], Status::Dead);
    pruned
        .desc_plus(m)
        .iter()
        .copied()
        .filter(|&n| {
            n != m
                && status[n] == Status::Alive
                && pruned
                    .parents(n)
                    .iter()
                    .all(|&p| !pruned.is_desc_or_self(p, m) || status[p] == Status::Dead)
        })
        .collect()
}

/// Splits the MTNs by status and extracts MPANs for the dead ones; shared by
/// the global-status strategies.
pub(crate) fn outcome_from_global_status(
    pruned: &PrunedLattice,
    status: &[Status],
) -> (Vec<usize>, Vec<usize>, Vec<Vec<usize>>) {
    let mut alive_mtns = Vec::new();
    let mut dead_mtns = Vec::new();
    let mut mpans = Vec::new();
    for &m in pruned.mtns() {
        match status[m] {
            Status::Alive => alive_mtns.push(m),
            Status::Dead => {
                dead_mtns.push(m);
                mpans.push(extract_mpans(pruned, status, m));
            }
            Status::Unknown => unreachable!("traversal left MTN unclassified"),
        }
    }
    (alive_mtns, dead_mtns, mpans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::oracle::AlivenessOracle;
    use crate::schema_graph::SchemaGraph;
    use relengine::{DataType, Database, DatabaseBuilder, Value};
    use textindex::InvertedIndex;

    /// ptype <- item -> color store where "blue candle" is dead ("blue" only
    /// colors an oil) while "red candle" is alive.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        for (id, n) in [(1, "candle"), (2, "oil")] {
            db.insert_values("ptype", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n) in [(1, "red"), (2, "blue")] {
            db.insert_values("color", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n, p, c) in [(1, "wick", 1, 1), (2, "drop", 2, 2)] {
            db.insert_values(
                "item",
                vec![Value::Int(id), Value::text(n), Value::Int(p), Value::Int(c)],
            )
            .expect("row");
        }
        db.finalize();
        db
    }

    struct Fixture {
        db: Database,
        index: InvertedIndex,
        lattice: Lattice,
    }

    fn fixture() -> Fixture {
        let db = db();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        Fixture { db, index, lattice }
    }

    fn run_on(f: &Fixture, text: &str, kind: StrategyKind) -> TraversalOutcome {
        let query = KeywordQuery::parse(text).expect("parses");
        let mapping = map_keywords(&query, &f.index);
        assert_eq!(mapping.interpretations.len(), 1, "fixture keywords are unambiguous");
        let interp = &mapping.interpretations[0];
        let pruned = PrunedLattice::build(&f.lattice, interp);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), interp, &mapping.keywords, false);
        run(kind, &f.lattice, &pruned, &mut oracle, DEFAULT_PA).expect("traversal runs")
    }

    #[test]
    fn dead_mtn_detected_by_every_strategy() {
        let f = fixture();
        for kind in StrategyKind::ALL.into_iter().chain([StrategyKind::BruteForce]) {
            let out = run_on(&f, "blue candle", kind);
            assert_eq!(out.alive_mtns.len(), 0, "{kind}");
            assert_eq!(out.dead_mtns.len(), 1, "{kind}");
            // MPANs: candles exist, blue items exist.
            assert_eq!(out.mpans[0].len(), 2, "{kind}");
        }
    }

    #[test]
    fn alive_mtn_detected_by_every_strategy() {
        let f = fixture();
        for kind in StrategyKind::ALL {
            let out = run_on(&f, "red candle", kind);
            assert_eq!(out.alive_mtns.len(), 1, "{kind}");
            assert!(out.dead_mtns.is_empty(), "{kind}");
            assert_eq!(out.mpan_total(), 0, "{kind}");
        }
    }

    #[test]
    fn td_executes_one_query_for_alive_mtn() {
        let f = fixture();
        let td = run_on(&f, "red candle", StrategyKind::TopDown);
        assert_eq!(td.sql_queries, 1, "TD hits the alive MTN first and infers the rest");
        let bu = run_on(&f, "red candle", StrategyKind::BottomUp);
        assert!(bu.sql_queries > td.sql_queries, "BU must climb the whole cone");
    }

    #[test]
    fn bu_benefits_from_dead_low_nodes() {
        // "green candle": green occurs nowhere -> unknown keyword, no MTNs.
        // Use "blue oil" instead: alive (the drop item is a blue oil).
        let f = fixture();
        let out = run_on(&f, "blue oil", StrategyKind::BottomUpWithReuse);
        assert_eq!(out.alive_mtns.len(), 1);
    }

    #[test]
    fn outcome_counters() {
        let f = fixture();
        let out = run_on(&f, "blue candle", StrategyKind::BruteForce);
        assert_eq!(out.mpan_total(), 2);
        assert_eq!(out.mpan_unique(), 2);
        assert!(out.sql_queries >= 6, "brute executes every pruned node");
        // Strategy display names.
        assert_eq!(StrategyKind::BottomUp.to_string(), "BU");
        assert_eq!(StrategyKind::ScoreBasedHeuristic.name(), "SBH");
    }

    #[test]
    fn sbh_extreme_priors_still_correct() {
        let f = fixture();
        let query = KeywordQuery::parse("blue candle").expect("parses");
        let mapping = map_keywords(&query, &f.index);
        let interp = &mapping.interpretations[0];
        let pruned = PrunedLattice::build(&f.lattice, interp);
        for pa in [0.0, 0.25, 0.75, 1.0] {
            let mut oracle =
                AlivenessOracle::new(&f.db, Some(&f.index), interp, &mapping.keywords, false);
            let out = run(
                StrategyKind::ScoreBasedHeuristic, &f.lattice, &pruned, &mut oracle, pa,
            )
            .expect("SBH runs");
            assert_eq!(out.dead_mtns.len(), 1, "pa={pa}");
            assert_eq!(out.mpans[0].len(), 2, "pa={pa}");
        }
    }
}
