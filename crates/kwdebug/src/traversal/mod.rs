//! Phase 3: lattice traversal strategies.
//!
//! Given the pruned sub-lattice (MTNs and their descendants), Phase 3 must
//! classify every MTN as **alive** (answer query) or **dead** (non-answer
//! query) and, for every dead MTN, find its **MPANs** — the maximal partially
//! alive nodes, i.e. alive descendants none of whose ancestors within the
//! MTN's sub-lattice is alive. The classification rules
//!
//! * **R1**: a node is alive ⇒ all of its descendants are alive,
//! * **R2**: a node has a dead descendant ⇒ it is dead,
//!
//! let a traversal *infer* the status of many nodes instead of executing
//! their SQL queries; strategies differ in the order they pick nodes and in
//! whether executions are shared across MTNs:
//!
//! | strategy | order | sharing |
//! |---|---|---|
//! | [`StrategyKind::BottomUp`] (BU) | per MTN, level ascending | none |
//! | [`StrategyKind::TopDown`] (TD) | per MTN, level descending | none |
//! | [`StrategyKind::BottomUpWithReuse`] (BUWR, Algorithm 3) | level ascending | global |
//! | [`StrategyKind::TopDownWithReuse`] (TDWR) | level descending | global |
//! | [`StrategyKind::ScoreBasedHeuristic`] (SBH, §2.5.3) | greedy by score | global |
//! | [`StrategyKind::BruteForce`] | every node | global (oracle only) |
//!
//! All strategies return identical classifications and MPAN sets — they only
//! differ in the number of SQL queries executed, which is exactly what the
//! paper measures (Figures 11–12, Table 4).
//!
//! Every traversal is instrumented through the oracle's
//! [`crate::metrics::Metrics`] block: [`run`] snapshots the counters before
//! and after the strategy and attributes the delta to the returned
//! [`TraversalOutcome::probes`] — probes executed, R1/R2 inferences fired,
//! and visits skipped on already-classified nodes (`reuse_hits`, the
//! quantity Figure 13's reuse percentage predicts).
//!
//! ## Degraded mode
//!
//! When the oracle runs under a [`crate::budget::ProbeBudget`] or a fault
//! injector, a probe can come back without a verdict: *abandoned* (this
//! node failed permanently — skip it, keep traversing) or *exhausted* (the
//! budget tripped — stop probing altogether). Strategies never error out in
//! either case; they classify what they can and return a **partial**
//! [`TraversalOutcome`]: unclassified MTNs land in
//! [`TraversalOutcome::unknown_mtns`], and each dead MTN's MPAN frontier is
//! reported as sound lower/upper bounds —
//! [`TraversalOutcome::mpans`] holds *confirmed* MPANs (alive, every parent
//! inside the cone known dead) while [`TraversalOutcome::possible_mpans`]
//! holds the remaining candidates (not known dead, no in-cone parent known
//! alive) that unresolved statuses kept from being confirmed or ruled out.
//! On a complete run both `unknown_mtns` and every `possible_mpans` entry
//! are empty and the outcome is exactly the happy-path one.
//!
//! ## Wave emission and the parallel scheduler
//!
//! Every strategy is implemented as a `Frontier`: a state machine that
//! *emits* batches ("waves") of dense nodes to probe instead of probing
//! them itself. A wave's nodes are mutually independent — no verdict inside
//! the wave can classify another wave member through R1/R2 (for the
//! order-based strategies this falls out of level structure: same-level
//! nodes are never ancestor/descendant of each other). One driver loop
//! walks each wave in the strategy's visit order and handles the per-node
//! protocol (reuse check → memo check → budget → probe → apply); the
//! sequential driver lives here ([`run`]), the multi-threaded one in
//! [`crate::parallel`] ([`run_with_workers`] with `workers > 1`). Because
//! both drivers share the per-node protocol and the wave order, the
//! parallel traversal produces bit-identical classifications, MPAN sets
//! *and probe counters* — strategies stay single-threaded state machines
//! and never need locks.

mod brute;
mod bu;
mod buwr;
mod sbh;
mod td;
mod tdwr;

use std::time::Duration;

pub use sbh::DEFAULT_PA;

use crate::budget::Exhausted;
use crate::error::KwError;
use crate::lattice::Lattice;
use crate::metrics::{Metrics, ProbeCounters};
use crate::oracle::{AlivenessOracle, Probe};
use crate::prune::PrunedLattice;

/// Selects a Phase-3 traversal strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StrategyKind {
    /// Per-MTN bottom-up traversal (BU).
    BottomUp,
    /// Per-MTN top-down traversal (TD).
    TopDown,
    /// Bottom-up over all MTNs simultaneously (BUWR, the paper's Algorithm 3).
    BottomUpWithReuse,
    /// Top-down over all MTNs simultaneously (TDWR).
    TopDownWithReuse,
    /// Greedy score-based heuristic (SBH, §2.5.3) with `p_a = 0.5`.
    ScoreBasedHeuristic,
    /// Executes every node; the ground-truth reference.
    BruteForce,
}

impl StrategyKind {
    /// All strategies in the paper's presentation order.
    pub const ALL: [StrategyKind; 5] = [
        StrategyKind::BottomUp,
        StrategyKind::BottomUpWithReuse,
        StrategyKind::TopDown,
        StrategyKind::TopDownWithReuse,
        StrategyKind::ScoreBasedHeuristic,
    ];

    /// Short display name matching the paper's abbreviations.
    pub fn name(&self) -> &'static str {
        match self {
            StrategyKind::BottomUp => "BU",
            StrategyKind::TopDown => "TD",
            StrategyKind::BottomUpWithReuse => "BUWR",
            StrategyKind::TopDownWithReuse => "TDWR",
            StrategyKind::ScoreBasedHeuristic => "SBH",
            StrategyKind::BruteForce => "BRUTE",
        }
    }
}

impl std::fmt::Display for StrategyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Classification state of a node during traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Not yet classified ("possibly alive" in the paper).
    Unknown,
    /// Returns at least one tuple.
    Alive,
    /// Returns no tuples.
    Dead,
}

/// Result of a Phase-3 traversal; partial when probing was cut short.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraversalOutcome {
    /// Dense indices of MTNs classified alive (answer queries), ascending.
    pub alive_mtns: Vec<usize>,
    /// Dense indices of MTNs classified dead (non-answer queries), ascending.
    pub dead_mtns: Vec<usize>,
    /// For each dead MTN (aligned with `dead_mtns`), its *confirmed* MPANs
    /// ascending: alive nodes all of whose parents inside the MTN's cone are
    /// known dead. On a complete run this is the exact MPAN set (the sound
    /// lower bound equals the truth).
    pub mpans: Vec<Vec<usize>>,
    /// For each dead MTN (aligned with `dead_mtns`), *additional* possible
    /// MPANs beyond [`TraversalOutcome::mpans`]: nodes not known dead with
    /// no in-cone parent known alive, whose frontier membership could not be
    /// settled. `mpans[i] ∪ possible_mpans[i]` is a sound upper bound on the
    /// true frontier; every entry is empty on a complete run.
    pub possible_mpans: Vec<Vec<usize>>,
    /// MTNs left unclassified by budget exhaustion or abandoned probes,
    /// ascending; empty on a complete run.
    pub unknown_mtns: Vec<usize>,
    /// Why probing stopped early, if a budget cap tripped.
    pub exhausted: Option<Exhausted>,
    /// SQL queries executed by this traversal.
    pub sql_queries: u64,
    /// Wall-clock time spent executing SQL.
    pub sql_time: Duration,
    /// Full probe/inference counters for this traversal (delta of the
    /// oracle's metrics over the run); `probes.probes_executed` always equals
    /// `sql_queries`.
    pub probes: ProbeCounters,
}

impl TraversalOutcome {
    /// Total number of confirmed MPANs across all dead MTNs (with
    /// duplicates, as each dead MTN reports its own frontier).
    pub fn mpan_total(&self) -> usize {
        self.mpans.iter().map(Vec::len).sum()
    }

    /// Number of distinct confirmed MPAN nodes across all dead MTNs.
    pub fn mpan_unique(&self) -> usize {
        let mut all: Vec<usize> = self.mpans.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all.len()
    }

    /// Whether every MTN was classified and every MPAN frontier is exact
    /// (always true on the happy path).
    pub fn complete(&self) -> bool {
        self.unknown_mtns.is_empty() && self.possible_mpans.iter().all(Vec::is_empty)
    }
}

/// Runs a traversal strategy over a pruned lattice, sequentially.
///
/// `pa` is the aliveness prior used by [`StrategyKind::ScoreBasedHeuristic`]
/// (ignored by the others); the paper finds `p_a = 0.5` works well.
pub fn run(
    kind: StrategyKind,
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    pa: f64,
) -> Result<TraversalOutcome, KwError> {
    run_with_workers(kind, lattice, pruned, oracle, pa, 1)
}

/// Runs a traversal strategy over a pruned lattice, fanning each probe wave
/// over `workers` threads when `workers > 1` (see [`crate::parallel`]).
/// `workers <= 1` is the sequential driver; either way the outcome —
/// classification, MPAN sets, probe counters — is identical, only
/// wall-clock changes.
pub fn run_with_workers(
    kind: StrategyKind,
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    pa: f64,
    workers: usize,
) -> Result<TraversalOutcome, KwError> {
    run_with_ticket(kind, lattice, pruned, oracle, pa, workers, None)
}

/// [`run_with_workers`] with an optional cross-session batching ticket:
/// when one is held, every wave goes through the batched driver
/// (`crate::batch::run_batched_waves`) so overlapping probes of concurrent
/// sessions coalesce in flight. The classification outcome is identical
/// either way; see the `crate::batch` module docs for the argument.
pub(crate) fn run_with_ticket(
    kind: StrategyKind,
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    pa: f64,
    workers: usize,
    ticket: Option<&crate::batch::BatchTicket>,
) -> Result<TraversalOutcome, KwError> {
    let q0 = oracle.stats().queries;
    let t0 = oracle.stats().total_time;
    let m0 = oracle.metrics().snapshot();
    let mut frontier: Box<dyn Frontier + '_> = match kind {
        StrategyKind::BottomUp => Box::new(bu::BuFrontier::new(pruned)),
        StrategyKind::TopDown => Box::new(td::TdFrontier::new(pruned)),
        StrategyKind::BottomUpWithReuse => Box::new(buwr::BuwrFrontier::new(pruned)),
        StrategyKind::TopDownWithReuse => Box::new(tdwr::TdwrFrontier::new(pruned)),
        StrategyKind::ScoreBasedHeuristic => Box::new(sbh::SbhFrontier::new(pruned, pa)),
        StrategyKind::BruteForce => Box::new(brute::BruteFrontier::new(pruned)),
    };
    if let Some(ticket) = ticket {
        crate::batch::run_batched_waves(lattice, pruned, oracle, frontier.as_mut(), workers, ticket)?;
    } else if workers > 1 {
        crate::parallel::run_waves(lattice, pruned, oracle, frontier.as_mut(), workers)?;
    } else {
        drive_sequential(lattice, pruned, oracle, frontier.as_mut())?;
    }
    let classified = frontier.finish();
    Ok(TraversalOutcome {
        alive_mtns: classified.alive_mtns,
        dead_mtns: classified.dead_mtns,
        mpans: classified.mpans,
        possible_mpans: classified.possible_mpans,
        unknown_mtns: classified.unknown_mtns,
        exhausted: oracle.exhausted(),
        sql_queries: oracle.stats().queries - q0,
        sql_time: oracle.stats().total_time.saturating_sub(t0),
        probes: oracle.metrics().snapshot().delta(m0),
    })
}

/// A traversal strategy as a wave-emitting state machine.
///
/// The strategy owns its status bookkeeping and inference rules; a *driver*
/// (sequential below, multi-threaded in [`crate::parallel`]) owns probing.
/// Per wave the driver walks the emitted nodes **in emission order** and,
/// for each node: already classified → count `reuse_hits`; memoized →
/// count `memo_hits` and [`Frontier::apply`]; otherwise reserve a budget
/// slot and probe, then [`Frontier::apply`] the verdict. A budget refusal
/// calls [`Frontier::exhaust`] and ends the traversal.
///
/// Implementations must uphold the **wave-independence invariant**: no
/// verdict applied for one wave member may classify another member of the
/// same wave (R1/R2 reach only other levels, so emitting runs of equal
/// lattice level satisfies this). The drivers rely on it for `reuse_hits`
/// determinism; DESIGN.md §8 states it formally.
pub(crate) trait Frontier {
    /// Emits the next wave of nodes in visit order into `out` (cleared by
    /// the driver). An empty wave means the traversal is complete. Nodes
    /// already classified at emission time are included — the driver counts
    /// them as `reuse_hits` exactly like the sequential sweeps did.
    fn next_wave(&mut self, out: &mut Vec<usize>);
    /// Whether dense node `n` is still unclassified in this strategy's view.
    fn is_unknown(&self, n: usize) -> bool;
    /// Records a verdict for `n` and fires the strategy's inference rules,
    /// counting `r1_inferences`/`r2_inferences` on `metrics`.
    fn apply(&mut self, n: usize, alive: bool, metrics: &Metrics);
    /// Marks `n` permanently failed (degraded mode); it stays unclassified.
    fn abandon(&mut self, n: usize);
    /// The budget tripped: settle partial state (e.g. classify the
    /// in-progress MTN, file the rest as unknown). No more waves follow.
    fn exhaust(&mut self);
    /// Consumes the frontier into the final MTN classification.
    fn finish(self: Box<Self>) -> Classified;
}

/// The sequential wave driver: one probe at a time through the oracle's own
/// engine, per-node protocol identical to [`crate::parallel::run_waves`].
fn drive_sequential(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    frontier: &mut dyn Frontier,
) -> Result<(), KwError> {
    let mut wave = Vec::new();
    loop {
        wave.clear();
        frontier.next_wave(&mut wave);
        if wave.is_empty() {
            return Ok(());
        }
        let mut stop = false;
        for &n in &wave {
            if !frontier.is_unknown(n) {
                oracle.metrics().reuse_hits.incr();
                continue;
            }
            // probe() consults the memo before the budget, so memoized
            // nodes are answered (and counted) even under a tripped cap.
            match probe(lattice, pruned, oracle, n)? {
                ProbeOutcome::Verdict(alive) => frontier.apply(n, alive, oracle.metrics()),
                ProbeOutcome::Abandoned => frontier.abandon(n),
                ProbeOutcome::Exhausted => {
                    stop = true;
                    break;
                }
            }
        }
        if stop {
            frontier.exhaust();
            return Ok(());
        }
    }
}

/// The outcome of probing one dense node, as seen by a strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProbeOutcome {
    /// The node's aliveness is known.
    Verdict(bool),
    /// This node's probe failed permanently; skip it and keep traversing.
    Abandoned,
    /// The probe budget tripped; stop probing altogether.
    Exhausted,
}

/// Probes the aliveness of dense node `n` through the oracle, translating
/// degraded-mode outcomes for strategies. Injected faults degrade; any other
/// engine error (an invalid plan — a bug) still propagates hard.
pub(crate) fn probe(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    n: usize,
) -> Result<ProbeOutcome, KwError> {
    match oracle.probe(pruned.lattice_id(n), pruned.jnts(lattice, n)) {
        Probe::Verdict(alive) => Ok(ProbeOutcome::Verdict(alive)),
        Probe::NodeFailed(e) if e.is_fault() => Ok(ProbeOutcome::Abandoned),
        Probe::NodeFailed(e) => Err(e.into()),
        Probe::Exhausted(_) => Ok(ProbeOutcome::Exhausted),
    }
}

/// MTN classification collected by a strategy, including degraded-mode
/// unknowns and MPAN bounds. [`run`] turns it into a [`TraversalOutcome`].
#[derive(Debug, Default)]
pub(crate) struct Classified {
    pub alive_mtns: Vec<usize>,
    pub dead_mtns: Vec<usize>,
    pub mpans: Vec<Vec<usize>>,
    pub possible_mpans: Vec<Vec<usize>>,
    pub unknown_mtns: Vec<usize>,
}

impl Classified {
    /// Files MTN `m` under its status, extracting MPAN bounds when dead.
    pub(crate) fn classify_mtn(&mut self, pruned: &PrunedLattice, status: &[Status], m: usize) {
        match status[m] {
            Status::Alive => self.alive_mtns.push(m),
            Status::Dead => {
                let (confirmed, possible) = extract_mpan_bounds(pruned, status, m);
                self.dead_mtns.push(m);
                self.mpans.push(confirmed);
                self.possible_mpans.push(possible);
            }
            Status::Unknown => self.unknown_mtns.push(m),
        }
    }
}

/// Extracts the MPANs of dead MTN `m` from complete statuses: alive strict
/// descendants of `m` with no alive parent inside `Desc+(m)`.
///
/// A parent-level check suffices: if any strict ancestor inside `Desc+(m)`
/// were alive, rule R1 would make some parent on the connecting chain alive
/// as well.
pub(crate) fn extract_mpans(pruned: &PrunedLattice, status: &[Status], m: usize) -> Vec<usize> {
    extract_mpan_bounds(pruned, status, m).0
}

/// Extracts MPAN bounds of dead MTN `m` from possibly-partial statuses:
/// `(confirmed, possible)` where *confirmed* MPANs are known alive with
/// every in-cone parent known dead (a sound lower bound — each one is a
/// true MPAN) and *possible* MPANs are the further not-known-dead nodes
/// with no in-cone parent known alive. The union is a sound upper bound:
/// a true MPAN is truly alive (so never classified dead) and its in-cone
/// strict ancestors are truly dead (so never classified alive), hence it
/// always lands in one of the two lists. On complete statuses `possible`
/// is empty and `confirmed` is the exact frontier.
pub(crate) fn extract_mpan_bounds(
    pruned: &PrunedLattice,
    status: &[Status],
    m: usize,
) -> (Vec<usize>, Vec<usize>) {
    debug_assert_eq!(status[m], Status::Dead);
    let mut confirmed = Vec::new();
    let mut possible = Vec::new();
    for &n in pruned.desc_plus(m) {
        if n == m || status[n] == Status::Dead {
            continue;
        }
        let mut all_dead = true;
        let mut any_alive = false;
        for &p in pruned.parents(n) {
            if !pruned.is_desc_or_self(p, m) {
                continue;
            }
            match status[p] {
                Status::Dead => {}
                Status::Alive => {
                    any_alive = true;
                    all_dead = false;
                }
                Status::Unknown => all_dead = false,
            }
        }
        if status[n] == Status::Alive && all_dead {
            confirmed.push(n);
        } else if !any_alive {
            possible.push(n);
        }
    }
    (confirmed, possible)
}

/// Splits the MTNs by status and extracts MPAN bounds for the dead ones;
/// shared by the global-status strategies. Unknown MTNs are reported, not
/// an error — a traversal cut short by the budget leaves some behind.
pub(crate) fn outcome_from_global_status(pruned: &PrunedLattice, status: &[Status]) -> Classified {
    let mut classified = Classified::default();
    for &m in pruned.mtns() {
        classified.classify_mtn(pruned, status, m);
    }
    classified
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::oracle::AlivenessOracle;
    use crate::schema_graph::SchemaGraph;
    use relengine::{DataType, Database, DatabaseBuilder, Value};
    use textindex::InvertedIndex;

    /// ptype <- item -> color store where "blue candle" is dead ("blue" only
    /// colors an oil) while "red candle" is alive.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        for (id, n) in [(1, "candle"), (2, "oil")] {
            db.insert_values("ptype", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n) in [(1, "red"), (2, "blue")] {
            db.insert_values("color", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n, p, c) in [(1, "wick", 1, 1), (2, "drop", 2, 2)] {
            db.insert_values(
                "item",
                vec![Value::Int(id), Value::text(n), Value::Int(p), Value::Int(c)],
            )
            .expect("row");
        }
        db.finalize();
        db
    }

    struct Fixture {
        db: Database,
        index: InvertedIndex,
        lattice: Lattice,
    }

    fn fixture() -> Fixture {
        let db = db();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        Fixture { db, index, lattice }
    }

    fn run_on(f: &Fixture, text: &str, kind: StrategyKind) -> TraversalOutcome {
        let query = KeywordQuery::parse(text).expect("parses");
        let mapping = map_keywords(&query, &f.index);
        assert_eq!(mapping.interpretations.len(), 1, "fixture keywords are unambiguous");
        let interp = &mapping.interpretations[0];
        let pruned = PrunedLattice::build(&f.lattice, interp);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), interp, &mapping.keywords, false);
        run(kind, &f.lattice, &pruned, &mut oracle, DEFAULT_PA).expect("traversal runs")
    }

    #[test]
    fn dead_mtn_detected_by_every_strategy() {
        let f = fixture();
        for kind in StrategyKind::ALL.into_iter().chain([StrategyKind::BruteForce]) {
            let out = run_on(&f, "blue candle", kind);
            assert_eq!(out.alive_mtns.len(), 0, "{kind}");
            assert_eq!(out.dead_mtns.len(), 1, "{kind}");
            // MPANs: candles exist, blue items exist.
            assert_eq!(out.mpans[0].len(), 2, "{kind}");
        }
    }

    #[test]
    fn alive_mtn_detected_by_every_strategy() {
        let f = fixture();
        for kind in StrategyKind::ALL {
            let out = run_on(&f, "red candle", kind);
            assert_eq!(out.alive_mtns.len(), 1, "{kind}");
            assert!(out.dead_mtns.is_empty(), "{kind}");
            assert_eq!(out.mpan_total(), 0, "{kind}");
        }
    }

    #[test]
    fn td_executes_one_query_for_alive_mtn() {
        let f = fixture();
        let td = run_on(&f, "red candle", StrategyKind::TopDown);
        assert_eq!(td.sql_queries, 1, "TD hits the alive MTN first and infers the rest");
        let bu = run_on(&f, "red candle", StrategyKind::BottomUp);
        assert!(bu.sql_queries > td.sql_queries, "BU must climb the whole cone");
    }

    #[test]
    fn bu_benefits_from_dead_low_nodes() {
        // "green candle": green occurs nowhere -> unknown keyword, no MTNs.
        // Use "blue oil" instead: alive (the drop item is a blue oil).
        let f = fixture();
        let out = run_on(&f, "blue oil", StrategyKind::BottomUpWithReuse);
        assert_eq!(out.alive_mtns.len(), 1);
    }

    #[test]
    fn outcome_counters() {
        let f = fixture();
        let out = run_on(&f, "blue candle", StrategyKind::BruteForce);
        assert_eq!(out.mpan_total(), 2);
        assert_eq!(out.mpan_unique(), 2);
        assert!(out.sql_queries >= 6, "brute executes every pruned node");
        // Strategy display names.
        assert_eq!(StrategyKind::BottomUp.to_string(), "BU");
        assert_eq!(StrategyKind::ScoreBasedHeuristic.name(), "SBH");
    }

    #[test]
    fn sbh_extreme_priors_still_correct() {
        let f = fixture();
        let query = KeywordQuery::parse("blue candle").expect("parses");
        let mapping = map_keywords(&query, &f.index);
        let interp = &mapping.interpretations[0];
        let pruned = PrunedLattice::build(&f.lattice, interp);
        for pa in [0.0, 0.25, 0.75, 1.0] {
            let mut oracle =
                AlivenessOracle::new(&f.db, Some(&f.index), interp, &mapping.keywords, false);
            let out = run(
                StrategyKind::ScoreBasedHeuristic, &f.lattice, &pruned, &mut oracle, pa,
            )
            .expect("SBH runs");
            assert_eq!(out.dead_mtns.len(), 1, "pa={pa}");
            assert_eq!(out.mpans[0].len(), 2, "pa={pa}");
        }
    }
}
