//! Score-based greedy heuristic (SBH, §2.5.3).
//!
//! BU suffers when answers sit high in the lattice, TD when they sit low.
//! SBH avoids both worst cases by greedily executing, at every step, the
//! unclassified node whose outcome is expected to shrink the remaining
//! search space the most. The paper's score (Equation 1) for node `n`,
//!
//! ```text
//! Score(n) = Σ_m  p_a · |S_exp^a(m)| + (1 − p_a) · |S_exp^d(m)|
//! ```
//!
//! measures the expected number of still-unknown nodes across every MTN's
//! search space `S(m)` after executing `n`, under the prior `p_a` that a node
//! is alive. Using `S(m) = unknown ∩ Desc+(m)` and the identity
//! `|S − X| = |S| − |S ∩ X|`, minimizing the score is equivalent to
//! maximizing
//!
//! ```text
//! p_a · A(n) + (1 − p_a) · B(n)
//! A(n) = Σ_{x ∈ Desc+(n) ∩ unknown} w(x)      (resolved if n is alive, R1)
//! B(n) = Σ_{x ∈ Asc+(n)  ∩ unknown} w(x)      (resolved if n is dead,  R2)
//! w(x) = |{m : x ∈ Desc+(m)}|                 (static MTN coverage weight)
//! ```
//!
//! which this implementation maintains incrementally: when a node's status
//! becomes known its weight is subtracted from `A` of all its ancestors and
//! `B` of all its descendants — total update work proportional to the sum of
//! closure sizes, paid once over the whole traversal.
//!
//! As a [`Frontier`], SBH emits singleton waves: each greedy pick depends on
//! every verdict so far, so there is no independent batch to fan out — the
//! parallel driver degenerates to sequential probing here (correct, just
//! not faster), which is the honest reading of the heuristic.
//!
//! Metrics recorded (see [`crate::metrics`]): every node resolved alongside
//! an execution (the `resolved` set minus the executed node itself) counts as
//! `r1_inferences` when the verdict was alive and `r2_inferences` when dead.
//! SBH never revisits classified nodes — the greedy pick only considers
//! unknowns — so its `reuse_hits` is always zero.
//!
//! Degraded mode: an abandoned node is flagged and excluded from the greedy
//! pick (it stays unknown but is never re-probed, or the loop would spin);
//! the traversal ends when the budget trips or no pickable node remains.

use crate::metrics::Metrics;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, Classified, Frontier, Status};

/// The aliveness prior the paper found to work well without estimation.
pub const DEFAULT_PA: f64 = 0.5;

pub(super) struct SbhFrontier<'p> {
    pruned: &'p PrunedLattice,
    pa: f64,
    status: Vec<Status>,
    abandoned: Vec<bool>,
    /// Static MTN-coverage weight of every node.
    w: Vec<i64>,
    /// A(n)/B(n) over the current unknown set, maintained incrementally.
    a: Vec<i64>,
    b: Vec<i64>,
    exhausted: bool,
}

impl<'p> SbhFrontier<'p> {
    pub(super) fn new(pruned: &'p PrunedLattice, pa: f64) -> Self {
        let len = pruned.len();
        let mut w = vec![0i64; len];
        for &m in pruned.mtns() {
            for &x in pruned.desc_plus(m) {
                w[x] += 1;
            }
        }
        let mut a = vec![0i64; len];
        let mut b = vec![0i64; len];
        for n in 0..len {
            a[n] = pruned.desc_plus(n).iter().map(|&x| w[x]).sum();
            b[n] = pruned.asc_plus(n).iter().map(|&x| w[x]).sum();
        }
        SbhFrontier {
            pruned,
            pa,
            status: vec![Status::Unknown; len],
            abandoned: vec![false; len],
            w,
            a,
            b,
            exhausted: false,
        }
    }
}

impl Frontier for SbhFrontier<'_> {
    fn next_wave(&mut self, out: &mut Vec<usize>) {
        if self.exhausted {
            return;
        }
        // Greedy pick: maximal expected resolution among the pickable
        // unknowns. Ties break toward the lowest dense index (lowest level)
        // for determinism.
        let mut best: Option<(f64, usize)> = None;
        for n in 0..self.pruned.len() {
            if self.status[n] != Status::Unknown || self.abandoned[n] {
                continue;
            }
            let gain = self.pa * self.a[n] as f64 + (1.0 - self.pa) * self.b[n] as f64;
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, n));
            }
        }
        if let Some((_, n)) = best {
            out.push(n);
        }
    }

    fn is_unknown(&self, n: usize) -> bool {
        self.status[n] == Status::Unknown
    }

    fn apply(&mut self, n: usize, alive: bool, metrics: &Metrics) {
        // Nodes resolved by this outcome (R1 downward or R2 upward).
        let resolved: Vec<usize> = if alive {
            self.pruned.desc_plus(n).iter().copied()
                .filter(|&x| self.status[x] == Status::Unknown)
                .collect()
        } else {
            self.pruned.asc_plus(n).iter().copied()
                .filter(|&x| self.status[x] == Status::Unknown)
                .collect()
        };
        let inferred = (resolved.len() as u64).saturating_sub(1);
        if alive {
            metrics.r1_inferences.add(inferred);
        } else {
            metrics.r2_inferences.add(inferred);
        }
        let new_status = if alive { Status::Alive } else { Status::Dead };
        for &x in &resolved {
            self.status[x] = new_status;
            // x leaves the unknown set: its weight no longer counts toward
            // any A (ancestors see x in their Desc+) or B (descendants see x
            // in their Asc+).
            for &p in self.pruned.asc_plus(x) {
                self.a[p] -= self.w[x];
            }
            for &d in self.pruned.desc_plus(x) {
                self.b[d] -= self.w[x];
            }
        }
    }

    fn abandon(&mut self, n: usize) {
        self.abandoned[n] = true;
    }

    fn exhaust(&mut self) {
        self.exhausted = true;
    }

    fn finish(self: Box<Self>) -> Classified {
        outcome_from_global_status(self.pruned, &self.status)
    }
}
