//! Score-based greedy heuristic (SBH, §2.5.3).
//!
//! BU suffers when answers sit high in the lattice, TD when they sit low.
//! SBH avoids both worst cases by greedily executing, at every step, the
//! unclassified node whose outcome is expected to shrink the remaining
//! search space the most. The paper's score (Equation 1) for node `n`,
//!
//! ```text
//! Score(n) = Σ_m  p_a · |S_exp^a(m)| + (1 − p_a) · |S_exp^d(m)|
//! ```
//!
//! measures the expected number of still-unknown nodes across every MTN's
//! search space `S(m)` after executing `n`, under the prior `p_a` that a node
//! is alive. Using `S(m) = unknown ∩ Desc+(m)` and the identity
//! `|S − X| = |S| − |S ∩ X|`, minimizing the score is equivalent to
//! maximizing
//!
//! ```text
//! p_a · A(n) + (1 − p_a) · B(n)
//! A(n) = Σ_{x ∈ Desc+(n) ∩ unknown} w(x)      (resolved if n is alive, R1)
//! B(n) = Σ_{x ∈ Asc+(n)  ∩ unknown} w(x)      (resolved if n is dead,  R2)
//! w(x) = |{m : x ∈ Desc+(m)}|                 (static MTN coverage weight)
//! ```
//!
//! which this implementation maintains incrementally: when a node's status
//! becomes known its weight is subtracted from `A` of all its ancestors and
//! `B` of all its descendants — total update work proportional to the sum of
//! closure sizes, paid once over the whole traversal.
//!
//! Metrics recorded (see [`crate::metrics`]): every node resolved alongside
//! an execution (the `resolved` set minus the executed node itself) counts as
//! `r1_inferences` when the verdict was alive and `r2_inferences` when dead.
//! SBH never revisits classified nodes — the greedy pick only considers
//! unknowns — so its `reuse_hits` is always zero.
//!
//! Degraded mode: an abandoned node is flagged and excluded from the greedy
//! pick (it stays unknown but is never re-probed, or the loop would spin);
//! the traversal ends when the budget trips or no pickable node remains.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{outcome_from_global_status, probe, Classified, ProbeOutcome, Status};

/// The aliveness prior the paper found to work well without estimation.
pub const DEFAULT_PA: f64 = 0.5;

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
    pa: f64,
) -> Result<Classified, KwError> {
    let len = pruned.len();
    let mut status = vec![Status::Unknown; len];
    let mut abandoned = vec![false; len];

    // Static MTN-coverage weight of every node.
    let mut w = vec![0i64; len];
    for &m in pruned.mtns() {
        for &x in pruned.desc_plus(m) {
            w[x] += 1;
        }
    }

    // A(n) / B(n) over the all-unknown initial state.
    let mut a = vec![0i64; len];
    let mut b = vec![0i64; len];
    for n in 0..len {
        a[n] = pruned.desc_plus(n).iter().map(|&x| w[x]).sum();
        b[n] = pruned.asc_plus(n).iter().map(|&x| w[x]).sum();
    }

    loop {
        // Greedy pick: maximal expected resolution among the pickable
        // unknowns. Ties break toward the lowest dense index (lowest level)
        // for determinism.
        let mut best: Option<(f64, usize)> = None;
        for n in 0..len {
            if status[n] != Status::Unknown || abandoned[n] {
                continue;
            }
            let gain = pa * a[n] as f64 + (1.0 - pa) * b[n] as f64;
            if best.is_none_or(|(g, _)| gain > g) {
                best = Some((gain, n));
            }
        }
        let Some((_, n)) = best else { break };

        let alive = match probe(lattice, pruned, oracle, n)? {
            ProbeOutcome::Verdict(alive) => alive,
            ProbeOutcome::Abandoned => {
                abandoned[n] = true;
                continue;
            }
            ProbeOutcome::Exhausted => break,
        };
        // Nodes resolved by this outcome (R1 downward or R2 upward).
        let resolved: Vec<usize> = if alive {
            pruned.desc_plus(n).iter().copied()
                .filter(|&x| status[x] == Status::Unknown)
                .collect()
        } else {
            pruned.asc_plus(n).iter().copied()
                .filter(|&x| status[x] == Status::Unknown)
                .collect()
        };
        let inferred = (resolved.len() as u64).saturating_sub(1);
        if alive {
            oracle.metrics().r1_inferences.add(inferred);
        } else {
            oracle.metrics().r2_inferences.add(inferred);
        }
        let new_status = if alive { Status::Alive } else { Status::Dead };
        for &x in &resolved {
            status[x] = new_status;
            // x leaves the unknown set: its weight no longer counts toward
            // any A (ancestors see x in their Desc+) or B (descendants see x
            // in their Asc+).
            for &p in pruned.asc_plus(x) {
                a[p] -= w[x];
            }
            for &d in pruned.desc_plus(x) {
                b[d] -= w[x];
            }
        }
    }

    Ok(outcome_from_global_status(pruned, &status))
}
