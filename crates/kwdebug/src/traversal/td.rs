//! Top-down traversal without reuse (TD, §2.5.1).
//!
//! Each MTN's sub-lattice is swept from the MTN down to the single-table
//! level. An alive node marks its whole descendant cone alive (rule R1), so
//! when answers sit high in the lattice, large lower regions are never
//! executed. A pleasant property of top-down order: every node found alive
//! *by execution* (rather than by R1 inference) has no alive ancestor — for a
//! dead MTN these are exactly its MPANs, though we extract them uniformly
//! from the final statuses.
//!
//! Metrics recorded (see [`crate::metrics`]): each skipped visit of an
//! already-classified node is one `reuse_hits` (within-MTN only); each
//! descendant newly revived by R1 is one `r1_inferences`. TD never fires R2:
//! descending order classifies every ancestor before its descendant.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{execute, extract_mpans, Status};

type Classified = (Vec<usize>, Vec<usize>, Vec<Vec<usize>>);

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut alive_mtns = Vec::new();
    let mut dead_mtns = Vec::new();
    let mut mpans = Vec::new();
    for &m in pruned.mtns() {
        let mut status = vec![Status::Unknown; pruned.len()];
        for &n in pruned.desc_plus(m).iter().rev() {
            if status[n] != Status::Unknown {
                oracle.metrics().reuse_hits.incr();
                continue;
            }
            if execute(lattice, pruned, oracle, n)? {
                // R1: every descendant of an alive node is alive.
                let mut inferred = 0;
                for &d in pruned.desc_plus(n) {
                    if d != n && status[d] == Status::Unknown {
                        inferred += 1;
                    }
                    status[d] = Status::Alive;
                }
                oracle.metrics().r1_inferences.add(inferred);
            } else {
                status[n] = Status::Dead;
            }
        }
        match status[m] {
            Status::Alive => alive_mtns.push(m),
            Status::Dead => {
                dead_mtns.push(m);
                mpans.push(extract_mpans(pruned, &status, m));
            }
            Status::Unknown => {
                return Err(KwError::Internal("TD left its MTN unclassified".into()))
            }
        }
    }
    Ok((alive_mtns, dead_mtns, mpans))
}
