//! Top-down traversal without reuse (TD, §2.5.1).
//!
//! Each MTN's sub-lattice is swept from the MTN down to the single-table
//! level. An alive node marks its whole descendant cone alive (rule R1), so
//! when answers sit high in the lattice, large lower regions are never
//! executed. A pleasant property of top-down order: every node found alive
//! *by execution* (rather than by R1 inference) has no alive ancestor — for a
//! dead MTN these are exactly its MPANs, though we extract them uniformly
//! from the final statuses.
//!
//! Metrics recorded (see [`crate::metrics`]): each skipped visit of an
//! already-classified node is one `reuse_hits` (within-MTN only); each
//! descendant newly revived by R1 is one `r1_inferences`. TD never fires R2:
//! descending order classifies every ancestor before its descendant.
//!
//! Degraded mode: an abandoned probe leaves its node unknown and the sweep
//! continues; budget exhaustion finishes the current MTN from whatever
//! statuses it has, then files all remaining MTNs as unknown.

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

use super::{probe, Classified, ProbeOutcome, Status};

pub(super) fn run(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<Classified, KwError> {
    let mut classified = Classified::default();
    let mut exhausted = false;
    for (i, &m) in pruned.mtns().iter().enumerate() {
        if exhausted {
            classified.unknown_mtns.extend(pruned.mtns()[i..].iter().copied());
            break;
        }
        let mut status = vec![Status::Unknown; pruned.len()];
        for &n in pruned.desc_plus(m).iter().rev() {
            if status[n] != Status::Unknown {
                oracle.metrics().reuse_hits.incr();
                continue;
            }
            match probe(lattice, pruned, oracle, n)? {
                ProbeOutcome::Verdict(true) => {
                    // R1: every descendant of an alive node is alive.
                    let mut inferred = 0;
                    for &d in pruned.desc_plus(n) {
                        if d != n && status[d] == Status::Unknown {
                            inferred += 1;
                        }
                        status[d] = Status::Alive;
                    }
                    oracle.metrics().r1_inferences.add(inferred);
                }
                ProbeOutcome::Verdict(false) => status[n] = Status::Dead,
                ProbeOutcome::Abandoned => continue,
                ProbeOutcome::Exhausted => {
                    exhausted = true;
                    break;
                }
            }
        }
        classified.classify_mtn(pruned, &status, m);
    }
    Ok(classified)
}
