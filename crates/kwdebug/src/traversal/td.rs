//! Top-down traversal without reuse (TD, §2.5.1).
//!
//! Each MTN's sub-lattice is swept from the MTN down to the single-table
//! level. An alive node marks its whole descendant cone alive (rule R1), so
//! when answers sit high in the lattice, large lower regions are never
//! executed. A pleasant property of top-down order: every node found alive
//! *by execution* (rather than by R1 inference) has no alive ancestor — for a
//! dead MTN these are exactly its MPANs, though we extract them uniformly
//! from the final statuses.
//!
//! As a [`Frontier`], TD emits one wave per *level run* of the current
//! MTN's cone walked in reverse (`Desc+(m)` descending = level-descending).
//! Same-level nodes are never descendants of each other, so R1 from one
//! wave member can never classify another — the wave-independence invariant
//! the parallel driver needs.
//!
//! Metrics recorded (see [`crate::metrics`]): each skipped visit of an
//! already-classified node is one `reuse_hits` (within-MTN only, counted by
//! the driver); each descendant newly revived by R1 is one `r1_inferences`.
//! TD never fires R2: descending order classifies every ancestor before its
//! descendant.
//!
//! Degraded mode: an abandoned probe leaves its node unknown and the sweep
//! continues; budget exhaustion finishes the current MTN from whatever
//! statuses it has, then files all remaining MTNs as unknown.

use crate::metrics::Metrics;
use crate::prune::PrunedLattice;

use super::{Classified, Frontier, Status};

pub(super) struct TdFrontier<'p> {
    pruned: &'p PrunedLattice,
    /// Index into `pruned.mtns()` of the cone being swept.
    mtn_idx: usize,
    /// Number of cone nodes already emitted (walking the cone in reverse).
    pos: usize,
    status: Vec<Status>,
    classified: Classified,
    done: bool,
}

impl<'p> TdFrontier<'p> {
    pub(super) fn new(pruned: &'p PrunedLattice) -> Self {
        TdFrontier {
            pruned,
            mtn_idx: 0,
            pos: 0,
            status: vec![Status::Unknown; pruned.len()],
            classified: Classified::default(),
            done: pruned.mtns().is_empty(),
        }
    }

    fn cone(&self) -> &'p [usize] {
        self.pruned.desc_plus(self.pruned.mtns()[self.mtn_idx])
    }

    /// The cone node at reverse-walk position `pos`.
    fn at(&self, pos: usize) -> usize {
        let cone = self.cone();
        cone[cone.len() - 1 - pos]
    }
}

impl Frontier for TdFrontier<'_> {
    fn next_wave(&mut self, out: &mut Vec<usize>) {
        while !self.done {
            let len = self.cone().len();
            if self.pos >= len {
                let m = self.pruned.mtns()[self.mtn_idx];
                self.classified.classify_mtn(self.pruned, &self.status, m);
                self.mtn_idx += 1;
                self.pos = 0;
                if self.mtn_idx >= self.pruned.mtns().len() {
                    self.done = true;
                    return;
                }
                self.status.fill(Status::Unknown);
                continue;
            }
            // Emit the maximal run of equal-level nodes, walking downward.
            let lvl = self.pruned.level(self.at(self.pos));
            while self.pos < len && self.pruned.level(self.at(self.pos)) == lvl {
                out.push(self.at(self.pos));
                self.pos += 1;
            }
            return;
        }
    }

    fn is_unknown(&self, n: usize) -> bool {
        self.status[n] == Status::Unknown
    }

    fn apply(&mut self, n: usize, alive: bool, metrics: &Metrics) {
        if alive {
            // R1: every descendant of an alive node is alive.
            let mut inferred = 0;
            for &d in self.pruned.desc_plus(n) {
                if d != n && self.status[d] == Status::Unknown {
                    inferred += 1;
                }
                self.status[d] = Status::Alive;
            }
            metrics.r1_inferences.add(inferred);
        } else {
            self.status[n] = Status::Dead;
        }
    }

    fn abandon(&mut self, _n: usize) {}

    fn exhaust(&mut self) {
        if self.done {
            return;
        }
        let m = self.pruned.mtns()[self.mtn_idx];
        self.classified.classify_mtn(self.pruned, &self.status, m);
        self.classified
            .unknown_mtns
            .extend(self.pruned.mtns()[self.mtn_idx + 1..].iter().copied());
        self.done = true;
    }

    fn finish(self: Box<Self>) -> Classified {
        self.classified
    }
}
