//! Cross-probe evaluation cache: session-scoped by default, optionally
//! promoted to a process-wide [`SharedEvalCache`].
//!
//! Every aliveness probe of a debug session runs against one epoch-stamped
//! snapshot of the database, and the probed networks are subtrees of the same
//! MTNs — so most of the work of one probe is a verbatim replay of another's.
//! This module caches that work at three levels, below the node-id
//! memo/R1/R2 reuse:
//!
//! * **Selection cache** — `(table, keyword)` → the sorted row ids satisfying
//!   the keyword's containment predicate. Computed once per epoch; every
//!   later probe attaches the shared selection to its plan node and the
//!   executor skips predicate evaluation for that node entirely.
//! * **Subtree semi-join cache** — canonical *binding* label of a cut subtree
//!   (vertices labeled `table + bound keyword`, so copy numbers don't split
//!   entries) plus the subtree's outgoing join column → the sorted set of
//!   join values surviving that subtree's Yannakakis reduction. A parent
//!   probe semi-joins against the cached value-set instead of re-reducing the
//!   subtree; an *empty* cached set proves any network joining through that
//!   cut dead without touching the engine at all.
//! * **Verdict cache** — canonical binding key of a *whole* network
//!   ([`network_key`]) → its completed semi-join verdict. The memo answers
//!   repeats by lattice node id within one traversal; this layer answers
//!   them structurally, across traversals and (shared) across sessions: a
//!   probe whose exact bound network was ever fully reduced is answered —
//!   alive or dead — without touching the engine
//!   (`verdict_cache_hits`).
//!
//! All maps are lock-striped like `parallel::ShardedMemo` so the parallel
//! scheduler's workers share them without a global lock. Entries are only
//! ever written from *completed* reductions (chaos faults fire before
//! execution and abort the probe, so a failed probe contributes nothing).
//!
//! ## The epoch contract (DESIGN.md §13, CACHING.md)
//!
//! The cache is keyed by **database identity**: the substrate's
//! [`Database::db_id`] (process-unique per build — a fresh database can never
//! alias a stale store) plus its monotonic write **epoch**. Every entry is
//! stamped with the epoch of the snapshot it was computed from, every lookup
//! and insert carries the calling session's *pin* epoch, and three rules keep
//! sharing sound under mutation:
//!
//! 1. **Read fence** — a lookup pinned at epoch `E` ignores entries stamped
//!    `E' > E`: a session attached before a write never observes state from
//!    after it mid-traversal.
//! 2. **Write fence** — an insert pinned at `E < ` the cache's current epoch
//!    is dropped (checked under the shard lock, after [`EvalCache::invalidate`]
//!    has published the new epoch): a straggler session cannot poison the
//!    store with results computed from superseded data.
//! 3. **Selective invalidation** — [`EvalCache::invalidate`] advances the
//!    cache to the database's current epoch and evicts exactly the entries the
//!    intervening [`relengine::EpochDelta`]s can have changed: selections
//!    whose keyword occurs (as a case-insensitive substring, matching the
//!    predicate) in any touched text value of their table; postings whose
//!    selection is dirty or whose column was written; subtree value-sets and
//!    verdicts whose `tables_mask` intersects a written table (re-validation
//!    by recomputation — a dead network can come alive after an append, so a
//!    cached verdict over a written table proves nothing). Surviving entries
//!    keep their stamps and stay valid for both old-pin and new-pin readers.
//!
//! If the database's delta log no longer covers the cache's epoch (the log
//! was truncated), nothing can be proven clean and the store is purged.
//!
//! ## Process-wide sharing (DESIGN.md §12, CACHING.md)
//!
//! Under the serving layer most redundant probe work is *across* sessions —
//! tenants hitting overlapping keywords recompute each other's selections
//! and subtree reductions. [`SharedEvalCache`] promotes one `EvalCache` to a
//! process-wide store handed to every session through
//! [`crate::debugger::SharedParts`], bounded by a **byte-budget LRU** so one
//! tenant's working set cannot blow out process memory for all. Every lookup
//! stamps the entry with a logical clock; when an insert pushes
//! [`EvalCache::bytes`] past the budget, least-recently-used entries are
//! evicted (and their bytes *returned* to the accounting — `bytes()` always
//! equals the sum of resident entry footprints, see
//! [`EvalCache::accounted_bytes`]) until the store fits again. Invalidation
//! rides the same removal path, so an entry the LRU already evicted is never
//! double-subtracted. Hits, misses, evictions and invalidations are counted
//! on the store itself, surfaced by the serving layer's `shared_cache_*`
//! metrics.
//!
//! Sharing never changes answers: the differential suites
//! (`tests/probe_cache_equivalence.rs`, `tests/shared_cache_equivalence.rs`,
//! `tests/mutation_equivalence.rs`) pin reports bit-identical with the cache
//! off, session-scoped, or shared — including across seeded mutations.

use std::collections::{HashMap, HashSet};
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use relengine::sortedvals::ValuePostings;
use relengine::{ColId, Database, DataType, DeltaKind, RowId, TableId};

use crate::canonical::{direction_aware_adjacency, rooted_subtree_key};
use crate::jnts::Jnts;

/// Number of lock stripes per map (same as `parallel::MEMO_SHARDS`).
const SHARDS: usize = 16;

/// Key of one cached selection: table, interned keyword id, and whether the
/// session restricts candidates through the inverted index (the cached rows
/// must equal what the uncached path would have produced, and that path
/// differs with index availability).
type SelectionKey = (TableId, u64, bool);

/// The table-set bit of one table in a `tables_mask`: tables `0..63` get
/// their own bit, everything above shares bit 63 (a sound catch-all — masks
/// only ever *over*-approximate reachability).
pub fn table_mask_bit(table: TableId) -> u64 {
    1u64 << (table as u64).min(63)
}

/// The `tables_mask` of a whole network: the union of its vertices' table
/// bits. Stamped on verdict-cache entries so invalidation can evict exactly
/// the verdicts reachable from written tables.
pub fn network_mask(j: &Jnts) -> u64 {
    j.nodes().iter().fold(0, |m, ts| m | table_mask_bit(ts.table))
}

/// One resident cache entry: the shared value, its accounted footprint, the
/// logical-clock stamp of its last touch (insert or hit) driving LRU
/// eviction, the epoch of the snapshot it was computed from (read fence), and
/// the set of tables it was computed over (invalidation reachability).
struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    stamp: u64,
    epoch: u64,
    mask: u64,
}

/// One lock-striped map: `SHARDS` independently locked hash maps.
type Striped<K, V> = Vec<Mutex<HashMap<K, Entry<V>>>>;

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Which striped map a victim entry lives in (internal to eviction).
enum Victim {
    Selection(SelectionKey),
    Postings((SelectionKey, ColId)),
    Subtree(Vec<u8>),
    Verdict(Vec<u8>),
}

/// The cross-probe evaluation cache shared by all probes (and all parallel
/// workers) of one debug session — or, wrapped in a [`SharedEvalCache`], by
/// every session of a serving process. See the module docs for the layers,
/// the epoch contract and the LRU byte budget.
pub struct EvalCache {
    selections: Striped<SelectionKey, Vec<RowId>>,
    /// Per-column value→rows postings of a cached selection — the derived
    /// sets probes attach as `PlanNode::col_postings`, extracted once per
    /// (selection, column) per epoch.
    sel_postings: Striped<(SelectionKey, ColId), ValuePostings>,
    subtrees: Striped<Vec<u8>, Vec<i64>>,
    /// Completed whole-network verdicts by canonical binding key (see
    /// [`network_key`]); `true` = alive.
    verdicts: Striped<Vec<u8>, bool>,
    interner: Mutex<HashMap<String, u64>>,
    /// Sum of resident entry footprints. Incremented on insert, decremented
    /// on eviction and invalidation — `bytes() == accounted_bytes()` is the
    /// accounting identity the shared-cache suite asserts.
    bytes: AtomicU64,
    /// Logical LRU clock; every touch (insert or hit) takes the next tick.
    clock: AtomicU64,
    /// Byte budget (`None` = unbounded, the session-scoped default). When an
    /// insert pushes `bytes` past it, least-recently-stamped entries are
    /// evicted until the store fits.
    budget: Option<u64>,
    /// [`Database::db_id`] this cache was built for (0 = session-private
    /// caches built before the substrate existed; real builds always stamp).
    db_id: u64,
    /// Database epoch the resident entries are valid at. Advanced by
    /// [`EvalCache::invalidate`] *before* the eviction scan, so stale-pinned
    /// writers are fenced out while the scan runs.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Entries evicted by [`EvalCache::invalidate`] (distinct from LRU
    /// `evictions`).
    invalidated: AtomicU64,
    /// Serializes evictors so concurrent over-budget inserts don't stampede
    /// the shard scan; held only during eviction, never during lookups.
    evict_lock: Mutex<()>,
}

impl EvalCache {
    /// Creates an empty, unbounded cache with the null identity
    /// `(db_id 0, epoch 0)` — fine for session-private use against an
    /// unwritten database.
    pub fn new() -> EvalCache {
        EvalCache::with_identity(0, 0, None)
    }

    /// Creates an empty cache for database `db_id` at write epoch `epoch`,
    /// bounded by `budget` payload bytes (`None` = unbounded).
    pub fn with_identity(db_id: u64, epoch: u64, budget: Option<u64>) -> EvalCache {
        EvalCache {
            selections: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            sel_postings: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            subtrees: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            verdicts: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            interner: Mutex::new(HashMap::new()),
            bytes: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            budget,
            db_id,
            epoch: AtomicU64::new(epoch),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
        }
    }

    /// The next logical-clock tick (monotone across threads).
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stable per-cache id of a keyword string (used in binding labels and
    /// selection keys, so entries survive across queries sharing keywords).
    pub fn intern(&self, keyword: &str) -> u64 {
        let mut map = self.interner.lock().expect("interner poisoned");
        let next = map.len() as u64;
        *map.entry(keyword.to_owned()).or_insert(next)
    }

    /// Whether an entry stamped `entry_epoch` may be served to a reader
    /// pinned at `pin`: the entry must not come from a future snapshot.
    /// (Entries from *past* epochs are safe — invalidation removed every
    /// entry a later write dirtied, so a surviving old entry is bitwise what
    /// the reader's snapshot would compute.)
    fn visible(entry_epoch: u64, pin: u64) -> bool {
        entry_epoch <= pin
    }

    /// Whether an insert pinned at `pin` may populate the store: only when
    /// the pin is the cache's current epoch. Checked under the shard lock so
    /// it races cleanly with [`EvalCache::invalidate`] publishing a new
    /// epoch (either the insert lands before the invalidation scan reaches
    /// the shard — and the scan removes it if dirty — or the inserter
    /// observes the new epoch and drops the write).
    fn admissible(&self, pin: u64) -> bool {
        pin == self.epoch.load(Ordering::SeqCst)
    }

    /// Looks up a cached selection as seen from epoch `pin`, stamping it
    /// most-recently-used.
    pub fn selection(
        &self,
        pin: u64,
        table: TableId,
        kw: u64,
        indexed: bool,
    ) -> Option<Arc<Vec<RowId>>> {
        let key = (table, kw, indexed);
        let mut shard =
            self.selections[shard_of(&key)].lock().expect("selection shard poisoned");
        match shard.get_mut(&key) {
            Some(entry) if Self::visible(entry.epoch, pin) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a selection computed at epoch `pin`, keeping the existing
    /// entry on a race and dropping the write when the cache has moved past
    /// `pin`. Returns the canonical shared vector plus the bytes newly added
    /// to the cache (0 when it lost the race or was fenced out — the caller
    /// still gets a usable `Arc` either way).
    pub fn insert_selection(
        &self,
        pin: u64,
        table: TableId,
        kw: u64,
        indexed: bool,
        rows: Vec<RowId>,
    ) -> (Arc<Vec<RowId>>, u64) {
        let key = (table, kw, indexed);
        let stamp = self.tick();
        let mut shard =
            self.selections[shard_of(&key)].lock().expect("selection shard poisoned");
        if !self.admissible(pin) {
            return (Arc::new(rows), 0);
        }
        if let Some(existing) = shard.get(&key) {
            if Self::visible(existing.epoch, pin) {
                return (Arc::clone(&existing.value), 0);
            }
            return (Arc::new(rows), 0);
        }
        let bytes = std::mem::size_of_val(rows.as_slice()) as u64;
        let arc = Arc::new(rows);
        let mask = table_mask_bit(table);
        shard.insert(key, Entry { value: Arc::clone(&arc), bytes, stamp, epoch: pin, mask });
        drop(shard);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        (arc, bytes)
    }

    /// Looks up the cached value→rows postings of selection
    /// `(table, kw, indexed)` in column `col` as seen from epoch `pin`,
    /// stamping them most-recently-used.
    pub fn selection_postings(
        &self,
        pin: u64,
        table: TableId,
        kw: u64,
        indexed: bool,
        col: ColId,
    ) -> Option<Arc<ValuePostings>> {
        let key = ((table, kw, indexed), col);
        let mut shard =
            self.sel_postings[shard_of(&key)].lock().expect("selection-postings shard poisoned");
        match shard.get_mut(&key) {
            Some(entry) if Self::visible(entry.epoch, pin) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts the value→rows postings of a selection in one column, keeping
    /// the existing entry on a race and dropping fenced-out writes. Returns
    /// the canonical shared postings plus the bytes newly added (0 when it
    /// lost the race or was fenced).
    pub fn insert_selection_postings(
        &self,
        pin: u64,
        table: TableId,
        kw: u64,
        indexed: bool,
        col: ColId,
        postings: ValuePostings,
    ) -> (Arc<ValuePostings>, u64) {
        let key = ((table, kw, indexed), col);
        let stamp = self.tick();
        let mut shard =
            self.sel_postings[shard_of(&key)].lock().expect("selection-postings shard poisoned");
        if !self.admissible(pin) {
            return (Arc::new(postings), 0);
        }
        if let Some(existing) = shard.get(&key) {
            if Self::visible(existing.epoch, pin) {
                return (Arc::clone(&existing.value), 0);
            }
            return (Arc::new(postings), 0);
        }
        let bytes = postings.payload_bytes();
        let arc = Arc::new(postings);
        let mask = table_mask_bit(table);
        shard.insert(key, Entry { value: Arc::clone(&arc), bytes, stamp, epoch: pin, mask });
        drop(shard);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        (arc, bytes)
    }

    /// Looks up a cached subtree value-set by its binding key as seen from
    /// epoch `pin`, stamping it most-recently-used.
    pub fn subtree(&self, pin: u64, key: &[u8]) -> Option<Arc<Vec<i64>>> {
        let mut shard = self.subtrees[shard_of(&key)].lock().expect("subtree shard poisoned");
        match shard.get_mut(key) {
            Some(entry) if Self::visible(entry.epoch, pin) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a subtree value-set computed at epoch `pin` over the tables in
    /// `tables_mask`, keeping the existing entry on a race and dropping
    /// fenced-out writes. Returns the bytes newly added to the cache (0 when
    /// it lost the race or was fenced).
    pub fn insert_subtree(
        &self,
        pin: u64,
        key: Vec<u8>,
        tables_mask: u64,
        values: Vec<i64>,
    ) -> u64 {
        let stamp = self.tick();
        let shard = shard_of(&key.as_slice());
        let mut map = self.subtrees[shard].lock().expect("subtree shard poisoned");
        if !self.admissible(pin) {
            return 0;
        }
        if map.contains_key(key.as_slice()) {
            return 0;
        }
        let bytes = (key.len() + std::mem::size_of_val(values.as_slice())) as u64;
        map.insert(
            key,
            Entry { value: Arc::new(values), bytes, stamp, epoch: pin, mask: tables_mask },
        );
        drop(map);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        bytes
    }

    /// Looks up a completed whole-network verdict by canonical binding key as
    /// seen from epoch `pin`, stamping it most-recently-used.
    pub fn verdict(&self, pin: u64, key: &[u8]) -> Option<bool> {
        let mut shard = self.verdicts[shard_of(&key)].lock().expect("verdict shard poisoned");
        match shard.get_mut(key) {
            Some(entry) if Self::visible(entry.epoch, pin) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(*entry.value)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a completed whole-network verdict computed at epoch `pin` over
    /// the tables in `tables_mask`, keeping the existing entry on a race and
    /// dropping fenced-out writes. Returns the bytes newly added (0 when it
    /// lost the race or was fenced).
    pub fn insert_verdict(&self, pin: u64, key: Vec<u8>, tables_mask: u64, alive: bool) -> u64 {
        let stamp = self.tick();
        let shard = shard_of(&key.as_slice());
        let mut map = self.verdicts[shard].lock().expect("verdict shard poisoned");
        if !self.admissible(pin) {
            return 0;
        }
        if map.contains_key(key.as_slice()) {
            return 0;
        }
        let bytes = (key.len() + 1) as u64;
        map.insert(
            key,
            Entry { value: Arc::new(alive), bytes, stamp, epoch: pin, mask: tables_mask },
        );
        drop(map);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        bytes
    }

    /// Advances the cache to `db`'s current epoch, evicting exactly the
    /// entries the intervening write deltas can have changed (module docs,
    /// rule 3). Returns the number of entries invalidated.
    ///
    /// The new epoch is published *before* the eviction scan, so writers
    /// still pinned at the old epoch are fenced out of every shard the scan
    /// has yet to reach (and any stale entry that slips into a shard before
    /// the scan gets there is removed by the scan itself if dirty —
    /// see `EvalCache::admissible`).
    ///
    /// When the database's delta log no longer covers this cache's epoch,
    /// nothing can be proven clean and the whole store is purged.
    pub fn invalidate(&self, db: &Database) -> u64 {
        if db.db_id() != self.db_id {
            return 0;
        }
        let from = self.epoch.load(Ordering::SeqCst);
        let to = db.epoch();
        if to <= from {
            return 0;
        }
        self.epoch.store(to, Ordering::SeqCst);
        let deltas = db.deltas_since(from);
        // One delta per epoch bump: a shorter slice means the log was
        // truncated past `from` and the gap is unauditable.
        if deltas.len() as u64 != to - from {
            return self.purge_all();
        }

        // Per-table dirt gathered from the deltas: the changed text values
        // (ASCII-lowercased, matching the containment predicate), the set of
        // written columns, and the union bitmask for subtree/verdict
        // reachability.
        let mut dirty_text: HashMap<TableId, Vec<String>> = HashMap::new();
        let mut dirty_cols: HashMap<TableId, HashSet<ColId>> = HashMap::new();
        let mut dirty_mask = 0u64;
        for d in deltas {
            dirty_mask |= table_mask_bit(d.table);
            let t = db.table(d.table);
            let text_cols: Vec<ColId> = t
                .schema()
                .columns
                .iter()
                .enumerate()
                .filter(|(_, c)| c.ty == DataType::Text)
                .map(|(i, _)| i)
                .collect();
            let texts = dirty_text.entry(d.table).or_default();
            match d.kind {
                DeltaKind::Append => {
                    for &rid in &d.rows {
                        let row = t.row(rid);
                        for &c in &text_cols {
                            if let Some(s) = row[c].as_text() {
                                texts.push(s.to_ascii_lowercase());
                            }
                        }
                    }
                }
                DeltaKind::Update => {
                    dirty_cols.entry(d.table).or_default().extend(d.cols.iter().copied());
                    for (rid, old) in &d.old {
                        let new_row = t.row(*rid);
                        for &c in &d.cols {
                            if !text_cols.contains(&c) {
                                continue;
                            }
                            if let Some(s) = old[c].as_text() {
                                texts.push(s.to_ascii_lowercase());
                            }
                            if let Some(s) = new_row[c].as_text() {
                                texts.push(s.to_ascii_lowercase());
                            }
                        }
                    }
                }
                DeltaKind::Delete => {
                    for (_, old) in &d.old {
                        for &c in &text_cols {
                            if let Some(s) = old[c].as_text() {
                                texts.push(s.to_ascii_lowercase());
                            }
                        }
                    }
                }
            }
        }

        // A selection (table, kw) is dirty iff some changed text value of its
        // table contains the keyword — the exact condition under which a row
        // enters, leaves, or re-enters the predicate's answer.
        let dirty_kws: HashSet<(TableId, u64)> = {
            let interner = self.interner.lock().expect("interner poisoned");
            let mut dirty = HashSet::new();
            for (kw, &id) in interner.iter() {
                let kw_lower = kw.to_ascii_lowercase();
                for (&table, texts) in &dirty_text {
                    if texts.iter().any(|t| t.contains(&kw_lower)) {
                        dirty.insert((table, id));
                    }
                }
            }
            dirty
        };

        let mut removed = 0u64;
        let mut freed = 0u64;
        for shard in &self.selections {
            let mut map = shard.lock().expect("selection shard poisoned");
            map.retain(|k, e| {
                let dirty = dirty_kws.contains(&(k.0, k.1));
                if dirty {
                    freed += e.bytes;
                    removed += 1;
                }
                !dirty
            });
        }
        // Postings are derived from (selection rows, column values): dirty
        // when the selection is, or when the column itself was updated under
        // a surviving selection. Appends and deletes need no extra test —
        // they change a selection's postings only by changing the selection,
        // and a row joining or leaving a selection always carries the keyword
        // in its text, which the selection test above already catches.
        for shard in &self.sel_postings {
            let mut map = shard.lock().expect("selection-postings shard poisoned");
            map.retain(|(sel, col), e| {
                let dirty = dirty_kws.contains(&(sel.0, sel.1))
                    || dirty_cols.get(&sel.0).is_some_and(|cols| cols.contains(col));
                if dirty {
                    freed += e.bytes;
                    removed += 1;
                }
                !dirty
            });
        }
        for shard in &self.subtrees {
            let mut map = shard.lock().expect("subtree shard poisoned");
            map.retain(|_, e| {
                let dirty = e.mask & dirty_mask != 0;
                if dirty {
                    freed += e.bytes;
                    removed += 1;
                }
                !dirty
            });
        }
        for shard in &self.verdicts {
            let mut map = shard.lock().expect("verdict shard poisoned");
            map.retain(|_, e| {
                let dirty = e.mask & dirty_mask != 0;
                if dirty {
                    freed += e.bytes;
                    removed += 1;
                }
                !dirty
            });
        }
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        self.invalidated.fetch_add(removed, Ordering::Relaxed);
        removed
    }

    /// Removes every resident entry (delta log truncated past this cache's
    /// epoch — nothing can be proven clean). Returns the entry count.
    fn purge_all(&self) -> u64 {
        let mut removed = 0u64;
        let mut freed = 0u64;
        let drain = |freed: &mut u64, removed: &mut u64, bytes: u64, n: usize| {
            *freed += bytes;
            *removed += n as u64;
        };
        for shard in &self.selections {
            let mut map = shard.lock().expect("selection shard poisoned");
            drain(&mut freed, &mut removed, map.values().map(|e| e.bytes).sum(), map.len());
            map.clear();
        }
        for shard in &self.sel_postings {
            let mut map = shard.lock().expect("selection-postings shard poisoned");
            drain(&mut freed, &mut removed, map.values().map(|e| e.bytes).sum(), map.len());
            map.clear();
        }
        for shard in &self.subtrees {
            let mut map = shard.lock().expect("subtree shard poisoned");
            drain(&mut freed, &mut removed, map.values().map(|e| e.bytes).sum(), map.len());
            map.clear();
        }
        for shard in &self.verdicts {
            let mut map = shard.lock().expect("verdict shard poisoned");
            drain(&mut freed, &mut removed, map.values().map(|e| e.bytes).sum(), map.len());
            map.clear();
        }
        self.bytes.fetch_sub(freed, Ordering::Relaxed);
        self.invalidated.fetch_add(removed, Ordering::Relaxed);
        removed
    }

    /// Evicts least-recently-used entries until the store fits its budget.
    /// Eviction is approximate LRU (the global minimum stamp at scan time);
    /// losing a race with a concurrent touch merely evicts a slightly-stale
    /// victim, never corrupts accounting. Each removed entry returns its
    /// footprint to [`EvalCache::bytes`] and counts one eviction.
    fn maybe_evict(&self) {
        let Some(budget) = self.budget else { return };
        if self.bytes.load(Ordering::Relaxed) <= budget {
            return;
        }
        let _guard = self.evict_lock.lock().expect("evict lock poisoned");
        while self.bytes.load(Ordering::Relaxed) > budget {
            // Find the globally oldest entry across all three maps.
            let mut best: Option<(u64, Victim)> = None;
            let better = |best: &Option<(u64, Victim)>, stamp: u64| {
                best.as_ref().is_none_or(|(s, _)| stamp < *s)
            };
            for shard in &self.selections {
                for (k, e) in shard.lock().expect("selection shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Selection(*k)));
                    }
                }
            }
            for shard in &self.sel_postings {
                for (k, e) in shard.lock().expect("selection-postings shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Postings(*k)));
                    }
                }
            }
            for shard in &self.subtrees {
                for (k, e) in shard.lock().expect("subtree shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Subtree(k.clone())));
                    }
                }
            }
            for shard in &self.verdicts {
                for (k, e) in shard.lock().expect("verdict shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Verdict(k.clone())));
                    }
                }
            }
            let Some((_, victim)) = best else { break };
            let freed = match victim {
                Victim::Selection(k) => self.selections[shard_of(&k)]
                    .lock()
                    .expect("selection shard poisoned")
                    .remove(&k)
                    .map(|e| e.bytes),
                Victim::Postings(k) => self.sel_postings[shard_of(&k)]
                    .lock()
                    .expect("selection-postings shard poisoned")
                    .remove(&k)
                    .map(|e| e.bytes),
                Victim::Subtree(k) => self.subtrees[shard_of(&k.as_slice())]
                    .lock()
                    .expect("subtree shard poisoned")
                    .remove(k.as_slice())
                    .map(|e| e.bytes),
                Victim::Verdict(k) => self.verdicts[shard_of(&k.as_slice())]
                    .lock()
                    .expect("verdict shard poisoned")
                    .remove(k.as_slice())
                    .map(|e| e.bytes),
            };
            if let Some(freed) = freed {
                self.bytes.fetch_sub(freed, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total payload bytes currently resident (selections + postings +
    /// subtree sets + verdicts). Decremented on eviction and invalidation;
    /// always equals [`EvalCache::accounted_bytes`].
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Recomputes the resident footprint by walking every shard — the slow
    /// ground truth for the `bytes()` accounting identity, used by the
    /// shared-cache differential suite.
    pub fn accounted_bytes(&self) -> u64 {
        let sel: u64 = self
            .selections
            .iter()
            .map(|s| {
                s.lock().expect("selection shard poisoned").values().map(|e| e.bytes).sum::<u64>()
            })
            .sum();
        let post: u64 = self
            .sel_postings
            .iter()
            .map(|s| {
                s.lock()
                    .expect("selection-postings shard poisoned")
                    .values()
                    .map(|e| e.bytes)
                    .sum::<u64>()
            })
            .sum();
        let sub: u64 = self
            .subtrees
            .iter()
            .map(|s| {
                s.lock().expect("subtree shard poisoned").values().map(|e| e.bytes).sum::<u64>()
            })
            .sum();
        let ver: u64 = self
            .verdicts
            .iter()
            .map(|s| {
                s.lock().expect("verdict shard poisoned").values().map(|e| e.bytes).sum::<u64>()
            })
            .sum();
        sel + post + sub + ver
    }

    /// The byte budget, if this cache is bounded.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// [`Database::db_id`] this cache serves (0 = null identity).
    pub fn db_id(&self) -> u64 {
        self.db_id
    }

    /// Database epoch the resident entries are valid at.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::SeqCst)
    }

    /// Lookups answered from the cache (all three layers).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (all three layers).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to keep the store within its byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Entries evicted by write-delta invalidation.
    pub fn invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Number of cached selections.
    pub fn selection_entries(&self) -> usize {
        self.selections.iter().map(|s| s.lock().expect("selection shard poisoned").len()).sum()
    }

    /// Number of cached per-column selection postings.
    pub fn postings_entries(&self) -> usize {
        self.sel_postings
            .iter()
            .map(|s| s.lock().expect("selection-postings shard poisoned").len())
            .sum()
    }

    /// Number of cached subtree value-sets.
    pub fn subtree_entries(&self) -> usize {
        self.subtrees.iter().map(|s| s.lock().expect("subtree shard poisoned").len()).sum()
    }

    /// Number of cached whole-network verdicts.
    pub fn verdict_entries(&self) -> usize {
        self.verdicts.iter().map(|s| s.lock().expect("verdict shard poisoned").len()).sum()
    }

    /// Number of interned keywords.
    pub fn interned_keywords(&self) -> usize {
        self.interner.lock().expect("interner poisoned").len()
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

/// A process-wide evaluation cache handle, shared by every session of a
/// serving process (DESIGN.md §12–§13, CACHING.md).
///
/// Wraps one [`EvalCache`] keyed by **database identity** `(db_id, epoch)`
/// and bounded by a **byte-budget LRU**: sessions built over the same
/// [`crate::debugger::SharedParts`] reuse each other's keyword selections and
/// subtree semi-join value-sets, so a keyword one tenant warmed is free for
/// the next. Cloning shares the store (reference-count bump). Attach with
/// [`crate::debugger::SharedParts::share_eval_cache`] (which stamps the
/// matching identity) or [`crate::debugger::SharedParts::adopt_eval_cache`]
/// (which validates it); the serving layer's `ServeConfig::shared_cache` knob
/// does this per server. After writes, [`SharedEvalCache::invalidate`]
/// advances the store to the database's new epoch in place — sessions pinned
/// at older epochs keep reading their entries through the epoch fence.
#[derive(Clone)]
pub struct SharedEvalCache {
    inner: Arc<EvalCache>,
}

impl SharedEvalCache {
    /// Creates a process-wide store for database `db_id` at write epoch
    /// `epoch`, bounded by `budget_bytes` (`None` = unbounded).
    pub fn new(db_id: u64, epoch: u64, budget_bytes: Option<u64>) -> SharedEvalCache {
        SharedEvalCache { inner: Arc::new(EvalCache::with_identity(db_id, epoch, budget_bytes)) }
    }

    /// The shared store, in the form sessions attach to their oracles.
    pub fn handle(&self) -> Arc<EvalCache> {
        Arc::clone(&self.inner)
    }

    /// [`Database::db_id`] the store was built for.
    pub fn db_id(&self) -> u64 {
        self.inner.db_id()
    }

    /// Database epoch the store currently serves.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch()
    }

    /// Advances the store to `db`'s current epoch, selectively evicting
    /// entries the intervening write deltas dirtied. Returns the number of
    /// entries invalidated. See [`EvalCache::invalidate`].
    pub fn invalidate(&self, db: &Database) -> u64 {
        self.inner.invalidate(db)
    }

    /// The byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.inner.budget()
    }

    /// Resident payload bytes (≤ budget after any insert returns).
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    /// Lookups answered from the store, across all sessions and layers.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Entries evicted by the LRU byte budget.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// Entries evicted by write-delta invalidation.
    pub fn invalidated(&self) -> u64 {
        self.inner.invalidated()
    }

    /// Number of resident selections (dashboards; see `kws_repl :cache`).
    pub fn selection_entries(&self) -> usize {
        self.inner.selection_entries()
    }

    /// Number of resident subtree value-sets.
    pub fn subtree_entries(&self) -> usize {
        self.inner.subtree_entries()
    }

    /// Number of resident whole-network verdicts.
    pub fn verdict_entries(&self) -> usize {
        self.inner.verdict_entries()
    }
}

impl std::fmt::Debug for SharedEvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEvalCache")
            .field("db_id", &self.db_id())
            .field("epoch", &self.epoch())
            .field("bytes", &self.bytes())
            .field("budget", &self.budget())
            .field("evictions", &self.evictions())
            .field("invalidated", &self.invalidated())
            .finish()
    }
}

/// One cut subtree of a network, as seen from the tree rooted at vertex 0:
/// removing the edge `parent — vertex` leaves the component containing
/// `vertex`, whose canonical binding key (plus the component's outgoing join
/// column) addresses the subtree cache.
pub struct SubtreeRef {
    /// Root of the cut component (jnts vertex index).
    pub vertex: usize,
    /// The vertex on the root-0 side of the cut edge.
    pub parent: usize,
    /// `vertex`-side join column of the cut edge — the column the cached
    /// value-set is projected on.
    pub child_col: ColId,
    /// `parent`-side join column of the cut edge — the column a reusing probe
    /// constrains.
    pub parent_col: ColId,
    /// Cache key: rooted binding key of the component ++ `child_col`.
    pub key: Vec<u8>,
    /// Union of [`table_mask_bit`]s of the component's tables — stamped on
    /// the cache entry so invalidation can evict subtrees reachable from
    /// written tables.
    pub tables_mask: u64,
}

/// Canonical binding key of a *whole* network: the rooted byte code of the
/// full tree (rooted at vertex 0, matching the executor's reduction root),
/// with vertices labeled by binding like the cut-subtree keys. Two probes
/// with this key equal ask the engine the exact same question, so the
/// verdict-cache layer ([`EvalCache::verdict`]) answers the second from the
/// first's completed reduction — within a session or, through
/// [`SharedEvalCache`], across every session of the epoch.
pub fn network_key(j: &Jnts, vid: &dyn Fn(usize) -> u64) -> Vec<u8> {
    rooted_subtree_key(0, usize::MAX, &direction_aware_adjacency(j), vid)
}

/// Computes the [`SubtreeRef`] of every non-root vertex of `j` (rooted at
/// vertex 0, matching the executor's reduction root), in DFS pre-order.
/// `vid` labels vertices by binding — see
/// [`crate::oracle::AlivenessOracle::with_eval_cache`] for how labels are
/// built from an interpretation.
pub fn subtree_refs(j: &Jnts, db: &Database, vid: &dyn Fn(usize) -> u64) -> Vec<SubtreeRef> {
    let n = j.node_count();
    let dadj = direction_aware_adjacency(j);
    // Plain adjacency with edge indices, for join columns.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (ei, e) in j.edges().iter().enumerate() {
        adj[e.a as usize].push((ei, e.b as usize));
        adj[e.b as usize].push((ei, e.a as usize));
    }
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    let mut stack = vec![(0usize, usize::MAX)];
    let mut visited = vec![false; n];
    while let Some((u, parent)) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        for &(ei, v) in &adj[u] {
            if v == parent || visited[v] {
                continue;
            }
            let e = &j.edges()[ei];
            let fk = db.foreign_key(e.fk);
            let (a_col, b_col) = if e.a_is_from {
                (fk.from_col, fk.to_col)
            } else {
                (fk.to_col, fk.from_col)
            };
            let (child_col, parent_col) =
                if e.a as usize == v { (a_col, b_col) } else { (b_col, a_col) };
            let mut key = rooted_subtree_key(v, u, &dadj, vid);
            key.extend_from_slice(&(child_col as u64).to_le_bytes());
            let tables_mask = component_mask(j, &adj, v, u);
            out.push(SubtreeRef { vertex: v, parent: u, child_col, parent_col, key, tables_mask });
            stack.push((v, u));
        }
    }
    out
}

/// Union of table bits of the component containing `root` after cutting the
/// edge to `banned` (the networks are tiny trees, so a fresh DFS per cut is
/// cheaper than bookkeeping).
fn component_mask(j: &Jnts, adj: &[Vec<(usize, usize)>], root: usize, banned: usize) -> u64 {
    let mut mask = 0u64;
    let mut stack = vec![(root, banned)];
    let mut visited = vec![false; j.node_count()];
    while let Some((u, parent)) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        mask |= table_mask_bit(j.nodes()[u].table);
        for &(_, v) in &adj[u] {
            if v != parent && !visited[v] {
                stack.push((v, u));
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DatabaseBuilder, Value};

    #[test]
    fn interner_is_stable() {
        let c = EvalCache::new();
        let a = c.intern("saffron");
        let b = c.intern("candle");
        assert_ne!(a, b);
        assert_eq!(c.intern("saffron"), a);
        assert_eq!(c.interned_keywords(), 2);
    }

    #[test]
    fn selection_roundtrip_and_race() {
        let c = EvalCache::new();
        assert!(c.selection(0, 0, 1, true).is_none());
        let (first, added) = c.insert_selection(0, 0, 1, true, vec![3, 5, 8]);
        assert_eq!(*first, vec![3, 5, 8]);
        assert!(added > 0);
        let bytes = c.bytes();
        assert_eq!(bytes, added);
        // Losing writer keeps the existing entry and adds no bytes.
        let (second, re_added) = c.insert_selection(0, 0, 1, true, vec![9]);
        assert_eq!(*second, vec![3, 5, 8]);
        assert_eq!(re_added, 0);
        assert_eq!(c.bytes(), bytes);
        assert_eq!(c.selection_entries(), 1);
        // Indexed flag is part of the key.
        assert!(c.selection(0, 0, 1, false).is_none());
    }

    #[test]
    fn subtree_roundtrip_and_race() {
        let c = EvalCache::new();
        assert!(c.subtree(0, b"k1").is_none());
        let added = c.insert_subtree(0, b"k1".to_vec(), 1, vec![7, 9]);
        assert!(added > 0);
        assert_eq!(*c.subtree(0, b"k1").unwrap(), vec![7, 9]);
        assert_eq!(c.insert_subtree(0, b"k1".to_vec(), 1, vec![1]), 0);
        assert_eq!(*c.subtree(0, b"k1").unwrap(), vec![7, 9]);
        assert_eq!(c.subtree_entries(), 1);
        // Empty sets are legitimate entries (dead-subtree proofs).
        c.insert_subtree(0, b"k2".to_vec(), 1, vec![]);
        assert_eq!(*c.subtree(0, b"k2").unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn hit_miss_counters_track_all_layers() {
        let c = EvalCache::new();
        assert!(c.selection(0, 0, 0, true).is_none());
        assert!(c.subtree(0, b"nope").is_none());
        assert_eq!((c.hits(), c.misses()), (0, 2));
        c.insert_selection(0, 0, 0, true, vec![1]);
        c.insert_subtree(0, b"yes".to_vec(), 1, vec![4]);
        assert!(c.selection(0, 0, 0, true).is_some());
        assert!(c.subtree(0, b"yes").is_some());
        assert_eq!((c.hits(), c.misses()), (2, 2));
    }

    #[test]
    fn budget_evicts_lru_and_returns_bytes() {
        // Each selection of 4 RowIds costs 16 bytes; budget fits two.
        let c = EvalCache::with_identity(7, 0, Some(32));
        assert_eq!(c.db_id(), 7);
        c.insert_selection(0, 0, 0, true, vec![1, 2, 3, 4]);
        c.insert_selection(0, 1, 1, true, vec![1, 2, 3, 4]);
        assert_eq!(c.evictions(), 0);
        // Touch the first so the second is the LRU victim.
        assert!(c.selection(0, 0, 0, true).is_some());
        c.insert_selection(0, 2, 2, true, vec![1, 2, 3, 4]);
        assert_eq!(c.evictions(), 1, "one entry evicted to fit the budget");
        assert!(c.bytes() <= 32, "budget enforced: {}", c.bytes());
        assert!(c.selection(0, 0, 0, true).is_some(), "recently-touched entry survives");
        assert!(c.selection(0, 1, 1, true).is_none(), "LRU entry evicted");
        assert!(c.selection(0, 2, 2, true).is_some(), "newest entry resident");
        assert_eq!(c.bytes(), c.accounted_bytes(), "accounting identity after eviction");
    }

    #[test]
    fn eviction_spans_layers_and_keeps_identity() {
        let c = EvalCache::with_identity(1, 0, Some(48));
        c.insert_subtree(0, b"old-subtree-key".to_vec(), 1, vec![1, 2]);
        c.insert_selection(0, 0, 0, true, vec![1, 2, 3, 4]);
        c.insert_selection(0, 1, 1, true, vec![1, 2, 3, 4]);
        // 15+16 key/value + 16 + 16 = 63 > 48: the oldest (subtree) goes.
        assert!(c.evictions() > 0);
        assert!(c.subtree(0, b"old-subtree-key").is_none(), "oldest layer-2 entry evicted");
        assert!(c.bytes() <= 48);
        assert_eq!(c.bytes(), c.accounted_bytes());
    }

    #[test]
    fn shared_handle_is_one_store() {
        let shared = SharedEvalCache::new(3, 0, Some(1 << 20));
        let a = shared.handle();
        let b = shared.handle();
        a.insert_subtree(0, b"k".to_vec(), 1, vec![1]);
        assert!(b.subtree(0, b"k").is_some(), "handles alias one store");
        assert_eq!(shared.db_id(), 3);
        assert_eq!(shared.epoch(), 0);
        assert_eq!(shared.budget(), Some(1 << 20));
        assert!(shared.bytes() > 0);
        assert_eq!(shared.hits(), 1);
        assert_eq!(shared.subtree_entries(), 1);
    }

    /// A two-table db (color ← item) used by the invalidation tests.
    fn writable_db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("color")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        db.insert_values("color", vec![Value::Int(1), Value::text("red")]).expect("row");
        db.insert_values("color", vec![Value::Int(2), Value::text("blue")]).expect("row");
        db.insert_values(
            "item",
            vec![Value::Int(10), Value::text("red candle"), Value::Int(1)],
        )
        .expect("row");
        db.finalize();
        db
    }

    #[test]
    fn read_fence_hides_future_entries() {
        let c = EvalCache::with_identity(9, 3, None);
        c.insert_selection(3, 0, 0, true, vec![1, 2]);
        // A reader pinned before the entry's epoch must miss it…
        assert!(c.selection(2, 0, 0, true).is_none(), "entry from the future is invisible");
        // …while a reader at (or past) it hits.
        assert!(c.selection(3, 0, 0, true).is_some());
        assert!(c.selection(4, 0, 0, true).is_some());
        assert_eq!((c.hits(), c.misses()), (2, 1));
    }

    #[test]
    fn write_fence_drops_stale_inserts() {
        let mut db = writable_db();
        let c = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        let color = db.table_id("color").expect("table");
        db.append_rows(color, vec![vec![Value::Int(3), Value::text("green")]]).expect("write");
        assert_eq!(c.invalidate(&db), 0, "empty cache: nothing to invalidate");
        assert_eq!(c.epoch(), db.epoch());
        // A session still pinned at epoch 0 computes against superseded data;
        // its inserts must not land.
        let (arc, added) = c.insert_selection(0, 0, 0, true, vec![1]);
        assert_eq!(added, 0, "stale insert fenced out");
        assert_eq!(*arc, vec![1], "caller still gets a usable value");
        assert_eq!(c.selection_entries(), 0);
        assert_eq!(c.insert_subtree(0, b"k".to_vec(), 1, vec![1]), 0);
        assert_eq!(c.insert_verdict(0, b"k".to_vec(), 1, true), 0);
        assert_eq!(c.bytes(), 0);
        // Current-epoch inserts land normally.
        let (_, added) = c.insert_selection(c.epoch(), 0, 0, true, vec![1]);
        assert!(added > 0);
    }

    #[test]
    fn invalidation_is_selective_per_keyword_and_table() {
        let mut db = writable_db();
        let color = db.table_id("color").expect("table");
        let item = db.table_id("item").expect("table");
        let c = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        let red = c.intern("red");
        let candle = c.intern("candle");
        // Selections on both tables, both keywords; one subtree per table.
        c.insert_selection(0, color, red, true, vec![0]);
        c.insert_selection(0, color, candle, true, vec![]);
        c.insert_selection(0, item, red, true, vec![0]);
        c.insert_selection(0, item, candle, true, vec![0]);
        c.insert_subtree(0, b"color-side".to_vec(), table_mask_bit(color), vec![1]);
        c.insert_subtree(0, b"item-side".to_vec(), table_mask_bit(item), vec![10]);
        c.insert_verdict(
            0,
            b"net".to_vec(),
            table_mask_bit(color) | table_mask_bit(item),
            true,
        );

        // Append a color whose text mentions "red" but not "candle".
        db.append_rows(color, vec![vec![Value::Int(3), Value::text("dark red")]])
            .expect("write");
        let removed = c.invalidate(&db);
        let pin = c.epoch();
        assert!(
            c.selection(pin, color, red, true).is_none(),
            "(color, red) dirtied by the append"
        );
        assert!(
            c.selection(pin, color, candle, true).is_some(),
            "(color, candle) untouched: 'dark red' does not contain 'candle'"
        );
        assert!(c.selection(pin, item, red, true).is_some(), "item selections untouched");
        assert!(c.selection(pin, item, candle, true).is_some());
        assert!(c.subtree(pin, b"color-side").is_none(), "color-reachable subtree evicted");
        assert!(c.subtree(pin, b"item-side").is_some(), "item-only subtree survives");
        assert!(c.verdict(pin, b"net").is_none(), "verdict spanning the written table evicted");
        assert_eq!(removed, 3);
        assert_eq!(c.invalidated(), 3);
        assert_eq!(c.bytes(), c.accounted_bytes(), "accounting identity after invalidation");
    }

    #[test]
    fn update_invalidation_uses_old_and_new_text() {
        let mut db = writable_db();
        let color = db.table_id("color").expect("table");
        let c = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        let red = c.intern("red");
        let blue = c.intern("blue");
        let green = c.intern("green");
        c.insert_selection(0, color, red, true, vec![0]);
        c.insert_selection(0, color, blue, true, vec![1]);
        c.insert_selection(0, color, green, true, vec![]);
        // Rename "blue" → "teal": the old text dirties "blue"; neither text
        // mentions "red" or "green".
        db.update_row(color, 1, vec![Value::Int(2), Value::text("teal")]).expect("write");
        c.invalidate(&db);
        let pin = c.epoch();
        assert!(c.selection(pin, color, blue, true).is_none(), "old text dirties 'blue'");
        assert!(c.selection(pin, color, red, true).is_some());
        assert!(c.selection(pin, color, green, true).is_some());
        // And the reverse: rename "teal" → "green" dirties "green" via the
        // new text.
        db.update_row(color, 1, vec![Value::Int(2), Value::text("green")]).expect("write");
        c.invalidate(&db);
        let pin = c.epoch();
        assert!(c.selection(pin, color, green, true).is_none(), "new text dirties 'green'");
        assert!(c.selection(pin, color, red, true).is_some());
    }

    #[test]
    fn postings_invalidated_by_column_writes() {
        let mut db = writable_db();
        let color = db.table_id("color").expect("table");
        let item = db.table_id("item").expect("table");
        let c = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        let candle = c.intern("candle");
        let mk = || ValuePostings::build(vec![(1, 0)]);
        c.insert_selection_postings(0, item, candle, true, 2, mk());
        c.insert_selection_postings(0, item, candle, true, 0, mk());
        // Repoint the item's color_id (column 2) without touching its text:
        // the selection survives, the col-2 postings don't, the col-0
        // postings do.
        db.update_row(
            item,
            0,
            vec![Value::Int(10), Value::text("red candle"), Value::Int(2)],
        )
        .expect("write");
        c.invalidate(&db);
        let pin = c.epoch();
        assert!(c.selection_postings(pin, item, candle, true, 2).is_none());
        assert!(c.selection_postings(pin, item, candle, true, 0).is_some());
        // A delete dirties every column's postings of the touched table.
        db.delete_row(color, 1).expect("write");
        c.insert_selection_postings(c.epoch(), color, candle, true, 1, mk());
        db.delete_row(item, 0).expect("write");
        c.invalidate(&db);
        let pin = c.epoch();
        assert!(c.selection_postings(pin, item, candle, true, 0).is_none());
        assert!(
            c.selection_postings(pin, color, candle, true, 1).is_some(),
            "postings on the untouched table survive"
        );
        assert_eq!(c.bytes(), c.accounted_bytes());
    }

    #[test]
    fn truncated_delta_log_purges_everything() {
        let mut db = writable_db();
        let color = db.table_id("color").expect("table");
        let c = EvalCache::with_identity(db.db_id(), db.epoch(), None);
        c.insert_selection(0, color, 0, true, vec![0]);
        c.insert_subtree(0, b"s".to_vec(), table_mask_bit(1), vec![1]);
        db.append_rows(color, vec![vec![Value::Int(3), Value::text("green")]]).expect("write");
        db.truncate_deltas(db.epoch());
        let removed = c.invalidate(&db);
        assert_eq!(removed, 2, "unauditable gap: everything goes");
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.selection_entries() + c.subtree_entries(), 0);
    }

    #[test]
    fn foreign_database_is_ignored() {
        let db = writable_db();
        let c = EvalCache::with_identity(db.db_id().wrapping_add(1), 0, None);
        c.insert_selection(0, 0, 0, true, vec![0]);
        assert_eq!(c.invalidate(&db), 0, "identity mismatch: no-op");
        assert_eq!(c.selection_entries(), 1);
    }

    #[test]
    fn invalidating_an_evicted_entry_never_double_subtracts() {
        let mut db = writable_db();
        let color = db.table_id("color").expect("table");
        // Budget fits two 16-byte selections; the third insert evicts the
        // LRU one — which is exactly the entry the write then dirties.
        let c = EvalCache::with_identity(db.db_id(), db.epoch(), Some(32));
        let red = c.intern("red");
        let stale = c.intern("stale");
        c.insert_selection(0, color, red, true, vec![0, 1, 2, 3]);
        c.insert_selection(0, color, stale, true, vec![0, 1, 2, 3]);
        assert!(c.selection(0, color, stale, true).is_some(), "touch: 'red' becomes LRU");
        c.insert_selection(0, 1, 9, true, vec![0, 1, 2, 3]);
        assert_eq!(c.evictions(), 1, "'red' evicted by the budget");
        let before = c.bytes();
        assert_eq!(before, c.accounted_bytes());
        // Append text matching both keywords: invalidation wants both
        // selections, but 'red' is already gone — it must be skipped, not
        // subtracted again.
        db.append_rows(color, vec![vec![Value::Int(3), Value::text("stale red")]])
            .expect("write");
        let removed = c.invalidate(&db);
        assert_eq!(removed, 1, "only the resident entry is invalidated");
        assert_eq!(c.invalidated(), 1);
        assert_eq!(c.bytes(), c.accounted_bytes(), "no double subtraction");
        assert!(c.bytes() < before);
    }
}
