//! Session-scoped cross-probe evaluation cache.
//!
//! Every aliveness probe of a debug session runs against the same immutable
//! database, and the probed networks are subtrees of the same MTNs — so most
//! of the work of one probe is a verbatim replay of another's. This module
//! caches that work at two levels, below the verdict-level memo/R1/R2 reuse:
//!
//! * **Selection cache** — `(table, keyword)` → the sorted row ids satisfying
//!   the keyword's containment predicate. Computed once per session; every
//!   later probe attaches the shared selection to its plan node and the
//!   executor skips predicate evaluation for that node entirely.
//! * **Subtree semi-join cache** — canonical *binding* label of a cut subtree
//!   (vertices labeled `table + bound keyword`, so copy numbers don't split
//!   entries) plus the subtree's outgoing join column → the sorted set of
//!   join values surviving that subtree's Yannakakis reduction. A parent
//!   probe semi-joins against the cached value-set instead of re-reducing the
//!   subtree; an *empty* cached set proves any network joining through that
//!   cut dead without touching the engine at all.
//!
//! Both maps are lock-striped like `parallel::ShardedMemo` so the parallel
//! scheduler's workers share them without a global lock. Entries are only
//! ever written from *completed* reductions (chaos faults fire before
//! execution and abort the probe, so a failed probe contributes nothing), and
//! since the database is immutable for the life of a
//! [`crate::debugger::NonAnswerDebugger`], invalidation is simply the cache's
//! lifetime: it is created with the debugger and dropped with it.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use relengine::sortedvals::ValuePostings;
use relengine::{ColId, Database, RowId, TableId};

use crate::canonical::{direction_aware_adjacency, rooted_subtree_key};
use crate::jnts::Jnts;

/// Number of lock stripes per map (same as `parallel::MEMO_SHARDS`).
const SHARDS: usize = 16;

/// Key of one cached selection: table, interned keyword id, and whether the
/// session restricts candidates through the inverted index (the cached rows
/// must equal what the uncached path would have produced, and that path
/// differs with index availability).
type SelectionKey = (TableId, u64, bool);

/// One lock-striped map: `SHARDS` independently locked hash maps.
type Striped<K, V> = Vec<Mutex<HashMap<K, V>>>;

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// The session-scoped evaluation cache shared by all probes (and all parallel
/// workers) of one debug session. See the module docs for the two layers.
pub struct EvalCache {
    selections: Striped<SelectionKey, Arc<Vec<RowId>>>,
    /// Per-column value→rows postings of a cached selection — the derived
    /// sets probes attach as `PlanNode::col_postings`, extracted once per
    /// (selection, column) per session.
    sel_postings: Striped<(SelectionKey, ColId), Arc<ValuePostings>>,
    subtrees: Striped<Vec<u8>, Arc<Vec<i64>>>,
    interner: Mutex<HashMap<String, u64>>,
    bytes: AtomicU64,
}

impl EvalCache {
    /// Creates an empty cache.
    pub fn new() -> EvalCache {
        EvalCache {
            selections: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            sel_postings: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            subtrees: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            interner: Mutex::new(HashMap::new()),
            bytes: AtomicU64::new(0),
        }
    }

    /// Stable per-session id of a keyword string (used in binding labels and
    /// selection keys, so entries survive across queries sharing keywords).
    pub fn intern(&self, keyword: &str) -> u64 {
        let mut map = self.interner.lock().expect("interner poisoned");
        let next = map.len() as u64;
        *map.entry(keyword.to_owned()).or_insert(next)
    }

    /// Looks up a cached selection.
    pub fn selection(&self, table: TableId, kw: u64, indexed: bool) -> Option<Arc<Vec<RowId>>> {
        let key = (table, kw, indexed);
        self.selections[shard_of(&key)]
            .lock()
            .expect("selection shard poisoned")
            .get(&key)
            .cloned()
    }

    /// Inserts a selection, keeping the existing entry on a race. Returns the
    /// canonical shared vector plus the bytes newly added to the cache
    /// (0 when it lost the race).
    pub fn insert_selection(
        &self,
        table: TableId,
        kw: u64,
        indexed: bool,
        rows: Vec<RowId>,
    ) -> (Arc<Vec<RowId>>, u64) {
        let key = (table, kw, indexed);
        let mut shard = self.selections[shard_of(&key)].lock().expect("selection shard poisoned");
        if let Some(existing) = shard.get(&key) {
            return (Arc::clone(existing), 0);
        }
        let bytes = std::mem::size_of_val(rows.as_slice()) as u64;
        let arc = Arc::new(rows);
        shard.insert(key, Arc::clone(&arc));
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        (arc, bytes)
    }

    /// Looks up the cached value→rows postings of selection
    /// `(table, kw, indexed)` in column `col`.
    pub fn selection_postings(
        &self,
        table: TableId,
        kw: u64,
        indexed: bool,
        col: ColId,
    ) -> Option<Arc<ValuePostings>> {
        let key = ((table, kw, indexed), col);
        self.sel_postings[shard_of(&key)]
            .lock()
            .expect("selection-postings shard poisoned")
            .get(&key)
            .cloned()
    }

    /// Inserts the value→rows postings of a selection in one column, keeping
    /// the existing entry on a race. Returns the canonical shared postings
    /// plus the bytes newly added (0 when it lost the race).
    pub fn insert_selection_postings(
        &self,
        table: TableId,
        kw: u64,
        indexed: bool,
        col: ColId,
        postings: ValuePostings,
    ) -> (Arc<ValuePostings>, u64) {
        let key = ((table, kw, indexed), col);
        let mut shard =
            self.sel_postings[shard_of(&key)].lock().expect("selection-postings shard poisoned");
        if let Some(existing) = shard.get(&key) {
            return (Arc::clone(existing), 0);
        }
        let bytes = postings.payload_bytes();
        let arc = Arc::new(postings);
        shard.insert(key, Arc::clone(&arc));
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        (arc, bytes)
    }

    /// Looks up a cached subtree value-set by its binding key.
    pub fn subtree(&self, key: &[u8]) -> Option<Arc<Vec<i64>>> {
        self.subtrees[shard_of(&key)]
            .lock()
            .expect("subtree shard poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts a subtree value-set, keeping the existing entry on a race.
    /// Returns the bytes newly added to the cache (0 when it lost the race).
    pub fn insert_subtree(&self, key: Vec<u8>, values: Vec<i64>) -> u64 {
        let shard = shard_of(&key.as_slice());
        let mut map = self.subtrees[shard].lock().expect("subtree shard poisoned");
        if map.contains_key(key.as_slice()) {
            return 0;
        }
        let bytes = (key.len() + std::mem::size_of_val(values.as_slice())) as u64;
        map.insert(key, Arc::new(values));
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        bytes
    }

    /// Total payload bytes currently resident (selections + subtree sets).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Number of cached selections.
    pub fn selection_entries(&self) -> usize {
        self.selections.iter().map(|s| s.lock().expect("selection shard poisoned").len()).sum()
    }

    /// Number of cached subtree value-sets.
    pub fn subtree_entries(&self) -> usize {
        self.subtrees.iter().map(|s| s.lock().expect("subtree shard poisoned").len()).sum()
    }

    /// Number of interned keywords.
    pub fn interned_keywords(&self) -> usize {
        self.interner.lock().expect("interner poisoned").len()
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

/// One cut subtree of a network, as seen from the tree rooted at vertex 0:
/// removing the edge `parent — vertex` leaves the component containing
/// `vertex`, whose canonical binding key (plus the component's outgoing join
/// column) addresses the subtree cache.
pub struct SubtreeRef {
    /// Root of the cut component (jnts vertex index).
    pub vertex: usize,
    /// The vertex on the root-0 side of the cut edge.
    pub parent: usize,
    /// `vertex`-side join column of the cut edge — the column the cached
    /// value-set is projected on.
    pub child_col: ColId,
    /// `parent`-side join column of the cut edge — the column a reusing probe
    /// constrains.
    pub parent_col: ColId,
    /// Cache key: rooted binding key of the component ++ `child_col`.
    pub key: Vec<u8>,
}

/// Computes the [`SubtreeRef`] of every non-root vertex of `j` (rooted at
/// vertex 0, matching the executor's reduction root), in DFS pre-order.
/// `vid` labels vertices by binding — see
/// [`crate::oracle::AlivenessOracle::with_eval_cache`] for how labels are
/// built from an interpretation.
pub fn subtree_refs(j: &Jnts, db: &Database, vid: &dyn Fn(usize) -> u64) -> Vec<SubtreeRef> {
    let n = j.node_count();
    let dadj = direction_aware_adjacency(j);
    // Plain adjacency with edge indices, for join columns.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (ei, e) in j.edges().iter().enumerate() {
        adj[e.a as usize].push((ei, e.b as usize));
        adj[e.b as usize].push((ei, e.a as usize));
    }
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    let mut stack = vec![(0usize, usize::MAX)];
    let mut visited = vec![false; n];
    while let Some((u, parent)) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        for &(ei, v) in &adj[u] {
            if v == parent || visited[v] {
                continue;
            }
            let e = &j.edges()[ei];
            let fk = db.foreign_key(e.fk);
            let (a_col, b_col) = if e.a_is_from {
                (fk.from_col, fk.to_col)
            } else {
                (fk.to_col, fk.from_col)
            };
            let (child_col, parent_col) =
                if e.a as usize == v { (a_col, b_col) } else { (b_col, a_col) };
            let mut key = rooted_subtree_key(v, u, &dadj, vid);
            key.extend_from_slice(&(child_col as u64).to_le_bytes());
            out.push(SubtreeRef { vertex: v, parent: u, child_col, parent_col, key });
            stack.push((v, u));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable() {
        let c = EvalCache::new();
        let a = c.intern("saffron");
        let b = c.intern("candle");
        assert_ne!(a, b);
        assert_eq!(c.intern("saffron"), a);
        assert_eq!(c.interned_keywords(), 2);
    }

    #[test]
    fn selection_roundtrip_and_race() {
        let c = EvalCache::new();
        assert!(c.selection(0, 1, true).is_none());
        let (first, added) = c.insert_selection(0, 1, true, vec![3, 5, 8]);
        assert_eq!(*first, vec![3, 5, 8]);
        assert!(added > 0);
        let bytes = c.bytes();
        assert_eq!(bytes, added);
        // Losing writer keeps the existing entry and adds no bytes.
        let (second, re_added) = c.insert_selection(0, 1, true, vec![9]);
        assert_eq!(*second, vec![3, 5, 8]);
        assert_eq!(re_added, 0);
        assert_eq!(c.bytes(), bytes);
        assert_eq!(c.selection_entries(), 1);
        // Indexed flag is part of the key.
        assert!(c.selection(0, 1, false).is_none());
    }

    #[test]
    fn subtree_roundtrip_and_race() {
        let c = EvalCache::new();
        assert!(c.subtree(b"k1").is_none());
        let added = c.insert_subtree(b"k1".to_vec(), vec![7, 9]);
        assert!(added > 0);
        assert_eq!(*c.subtree(b"k1").unwrap(), vec![7, 9]);
        assert_eq!(c.insert_subtree(b"k1".to_vec(), vec![1]), 0);
        assert_eq!(*c.subtree(b"k1").unwrap(), vec![7, 9]);
        assert_eq!(c.subtree_entries(), 1);
        // Empty sets are legitimate entries (dead-subtree proofs).
        c.insert_subtree(b"k2".to_vec(), vec![]);
        assert_eq!(*c.subtree(b"k2").unwrap(), Vec::<i64>::new());
    }
}
