//! Cross-probe evaluation cache: session-scoped by default, optionally
//! promoted to a process-wide [`SharedEvalCache`].
//!
//! Every aliveness probe of a debug session runs against the same immutable
//! database, and the probed networks are subtrees of the same MTNs — so most
//! of the work of one probe is a verbatim replay of another's. This module
//! caches that work at three levels, below the node-id memo/R1/R2 reuse:
//!
//! * **Selection cache** — `(table, keyword)` → the sorted row ids satisfying
//!   the keyword's containment predicate. Computed once per session; every
//!   later probe attaches the shared selection to its plan node and the
//!   executor skips predicate evaluation for that node entirely.
//! * **Subtree semi-join cache** — canonical *binding* label of a cut subtree
//!   (vertices labeled `table + bound keyword`, so copy numbers don't split
//!   entries) plus the subtree's outgoing join column → the sorted set of
//!   join values surviving that subtree's Yannakakis reduction. A parent
//!   probe semi-joins against the cached value-set instead of re-reducing the
//!   subtree; an *empty* cached set proves any network joining through that
//!   cut dead without touching the engine at all.
//! * **Verdict cache** — canonical binding key of a *whole* network
//!   ([`network_key`]) → its completed semi-join verdict. The memo answers
//!   repeats by lattice node id within one traversal; this layer answers
//!   them structurally, across traversals and (shared) across sessions: a
//!   probe whose exact bound network was ever fully reduced is answered —
//!   alive or dead — without touching the engine
//!   (`verdict_cache_hits`).
//!
//! Both maps are lock-striped like `parallel::ShardedMemo` so the parallel
//! scheduler's workers share them without a global lock. Entries are only
//! ever written from *completed* reductions (chaos faults fire before
//! execution and abort the probe, so a failed probe contributes nothing), and
//! since the database is immutable for the life of a
//! [`crate::debugger::NonAnswerDebugger`], invalidation is simply the cache's
//! lifetime: it is created with the debugger and dropped with it.
//!
//! ## Process-wide sharing (DESIGN.md §12, CACHING.md)
//!
//! Under the serving layer most redundant probe work is *across* sessions —
//! tenants hitting overlapping keywords recompute each other's selections
//! and subtree reductions. [`SharedEvalCache`] promotes one `EvalCache` to a
//! process-wide store handed to every session through
//! [`crate::debugger::SharedParts`]: the store is keyed by the substrate's
//! **database generation** (a fresh database build gets a fresh generation,
//! so a stale store can never attach to new data — the invalidation
//! contract), and bounded by a **byte-budget LRU** so one tenant's working
//! set cannot blow out process memory for all. Every lookup stamps the entry
//! with a logical clock; when an insert pushes [`EvalCache::bytes`] past the
//! budget, least-recently-used entries are evicted (and their bytes
//! *returned* to the accounting — `bytes()` always equals the sum of
//! resident entry footprints, see [`EvalCache::accounted_bytes`]) until the
//! store fits again. Hits, misses and evictions are counted on the store
//! itself, surfaced by the serving layer's `shared_cache_*` metrics.
//!
//! Sharing never changes answers: the differential suites
//! (`tests/probe_cache_equivalence.rs`, `tests/shared_cache_equivalence.rs`)
//! pin reports bit-identical with the cache off, session-scoped, or shared.

use std::collections::HashMap;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use relengine::sortedvals::ValuePostings;
use relengine::{ColId, Database, RowId, TableId};

use crate::canonical::{direction_aware_adjacency, rooted_subtree_key};
use crate::jnts::Jnts;

/// Number of lock stripes per map (same as `parallel::MEMO_SHARDS`).
const SHARDS: usize = 16;

/// Key of one cached selection: table, interned keyword id, and whether the
/// session restricts candidates through the inverted index (the cached rows
/// must equal what the uncached path would have produced, and that path
/// differs with index availability).
type SelectionKey = (TableId, u64, bool);

/// One resident cache entry: the shared value, its accounted footprint, and
/// the logical-clock stamp of its last touch (insert or hit) driving LRU
/// eviction.
struct Entry<V> {
    value: Arc<V>,
    bytes: u64,
    stamp: u64,
}

/// One lock-striped map: `SHARDS` independently locked hash maps.
type Striped<K, V> = Vec<Mutex<HashMap<K, Entry<V>>>>;

fn shard_of<K: Hash>(key: &K) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % SHARDS
}

/// Which striped map a victim entry lives in (internal to eviction).
enum Victim {
    Selection(SelectionKey),
    Postings((SelectionKey, ColId)),
    Subtree(Vec<u8>),
    Verdict(Vec<u8>),
}

/// The cross-probe evaluation cache shared by all probes (and all parallel
/// workers) of one debug session — or, wrapped in a [`SharedEvalCache`], by
/// every session of a serving process. See the module docs for the layers,
/// the generation key and the LRU byte budget.
pub struct EvalCache {
    selections: Striped<SelectionKey, Vec<RowId>>,
    /// Per-column value→rows postings of a cached selection — the derived
    /// sets probes attach as `PlanNode::col_postings`, extracted once per
    /// (selection, column) per cache generation.
    sel_postings: Striped<(SelectionKey, ColId), ValuePostings>,
    subtrees: Striped<Vec<u8>, Vec<i64>>,
    /// Completed whole-network verdicts by canonical binding key (see
    /// [`network_key`]); `true` = alive.
    verdicts: Striped<Vec<u8>, bool>,
    interner: Mutex<HashMap<String, u64>>,
    /// Sum of resident entry footprints. Incremented on insert, decremented
    /// on eviction — `bytes() == accounted_bytes()` is the accounting
    /// identity the shared-cache suite asserts.
    bytes: AtomicU64,
    /// Logical LRU clock; every touch (insert or hit) takes the next tick.
    clock: AtomicU64,
    /// Byte budget (`None` = unbounded, the session-scoped default). When an
    /// insert pushes `bytes` past it, least-recently-stamped entries are
    /// evicted until the store fits.
    budget: Option<u64>,
    /// Database generation this cache was built for (0 = session-private).
    generation: u64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    /// Serializes evictors so concurrent over-budget inserts don't stampede
    /// the shard scan; held only during eviction, never during lookups.
    evict_lock: Mutex<()>,
}

impl EvalCache {
    /// Creates an empty, unbounded, session-private cache (generation 0).
    pub fn new() -> EvalCache {
        EvalCache::with_budget(0, None)
    }

    /// Creates an empty cache for database generation `generation`, bounded
    /// by `budget` payload bytes (`None` = unbounded).
    pub fn with_budget(generation: u64, budget: Option<u64>) -> EvalCache {
        EvalCache {
            selections: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            sel_postings: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            subtrees: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            verdicts: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            interner: Mutex::new(HashMap::new()),
            bytes: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            budget,
            generation,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            evict_lock: Mutex::new(()),
        }
    }

    /// The next logical-clock tick (monotone across threads).
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Stable per-cache id of a keyword string (used in binding labels and
    /// selection keys, so entries survive across queries sharing keywords).
    pub fn intern(&self, keyword: &str) -> u64 {
        let mut map = self.interner.lock().expect("interner poisoned");
        let next = map.len() as u64;
        *map.entry(keyword.to_owned()).or_insert(next)
    }

    /// Looks up a cached selection, stamping it most-recently-used.
    pub fn selection(&self, table: TableId, kw: u64, indexed: bool) -> Option<Arc<Vec<RowId>>> {
        let key = (table, kw, indexed);
        let mut shard =
            self.selections[shard_of(&key)].lock().expect("selection shard poisoned");
        match shard.get_mut(&key) {
            Some(entry) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a selection, keeping the existing entry on a race. Returns the
    /// canonical shared vector plus the bytes newly added to the cache
    /// (0 when it lost the race).
    pub fn insert_selection(
        &self,
        table: TableId,
        kw: u64,
        indexed: bool,
        rows: Vec<RowId>,
    ) -> (Arc<Vec<RowId>>, u64) {
        let key = (table, kw, indexed);
        let stamp = self.tick();
        let mut shard =
            self.selections[shard_of(&key)].lock().expect("selection shard poisoned");
        if let Some(existing) = shard.get(&key) {
            return (Arc::clone(&existing.value), 0);
        }
        let bytes = std::mem::size_of_val(rows.as_slice()) as u64;
        let arc = Arc::new(rows);
        shard.insert(key, Entry { value: Arc::clone(&arc), bytes, stamp });
        drop(shard);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        (arc, bytes)
    }

    /// Looks up the cached value→rows postings of selection
    /// `(table, kw, indexed)` in column `col`, stamping them
    /// most-recently-used.
    pub fn selection_postings(
        &self,
        table: TableId,
        kw: u64,
        indexed: bool,
        col: ColId,
    ) -> Option<Arc<ValuePostings>> {
        let key = ((table, kw, indexed), col);
        let mut shard =
            self.sel_postings[shard_of(&key)].lock().expect("selection-postings shard poisoned");
        match shard.get_mut(&key) {
            Some(entry) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts the value→rows postings of a selection in one column, keeping
    /// the existing entry on a race. Returns the canonical shared postings
    /// plus the bytes newly added (0 when it lost the race).
    pub fn insert_selection_postings(
        &self,
        table: TableId,
        kw: u64,
        indexed: bool,
        col: ColId,
        postings: ValuePostings,
    ) -> (Arc<ValuePostings>, u64) {
        let key = ((table, kw, indexed), col);
        let stamp = self.tick();
        let mut shard =
            self.sel_postings[shard_of(&key)].lock().expect("selection-postings shard poisoned");
        if let Some(existing) = shard.get(&key) {
            return (Arc::clone(&existing.value), 0);
        }
        let bytes = postings.payload_bytes();
        let arc = Arc::new(postings);
        shard.insert(key, Entry { value: Arc::clone(&arc), bytes, stamp });
        drop(shard);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        (arc, bytes)
    }

    /// Looks up a cached subtree value-set by its binding key, stamping it
    /// most-recently-used.
    pub fn subtree(&self, key: &[u8]) -> Option<Arc<Vec<i64>>> {
        let mut shard = self.subtrees[shard_of(&key)].lock().expect("subtree shard poisoned");
        match shard.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&entry.value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a subtree value-set, keeping the existing entry on a race.
    /// Returns the bytes newly added to the cache (0 when it lost the race).
    pub fn insert_subtree(&self, key: Vec<u8>, values: Vec<i64>) -> u64 {
        let stamp = self.tick();
        let shard = shard_of(&key.as_slice());
        let mut map = self.subtrees[shard].lock().expect("subtree shard poisoned");
        if map.contains_key(key.as_slice()) {
            return 0;
        }
        let bytes = (key.len() + std::mem::size_of_val(values.as_slice())) as u64;
        map.insert(key, Entry { value: Arc::new(values), bytes, stamp });
        drop(map);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        bytes
    }

    /// Looks up a completed whole-network verdict by canonical binding key,
    /// stamping it most-recently-used.
    pub fn verdict(&self, key: &[u8]) -> Option<bool> {
        let mut shard = self.verdicts[shard_of(&key)].lock().expect("verdict shard poisoned");
        match shard.get_mut(key) {
            Some(entry) => {
                entry.stamp = self.tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(*entry.value)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a completed whole-network verdict, keeping the existing entry
    /// on a race. Returns the bytes newly added (0 when it lost the race).
    pub fn insert_verdict(&self, key: Vec<u8>, alive: bool) -> u64 {
        let stamp = self.tick();
        let shard = shard_of(&key.as_slice());
        let mut map = self.verdicts[shard].lock().expect("verdict shard poisoned");
        if map.contains_key(key.as_slice()) {
            return 0;
        }
        let bytes = (key.len() + 1) as u64;
        map.insert(key, Entry { value: Arc::new(alive), bytes, stamp });
        drop(map);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.maybe_evict();
        bytes
    }

    /// Evicts least-recently-used entries until the store fits its budget.
    /// Eviction is approximate LRU (the global minimum stamp at scan time);
    /// losing a race with a concurrent touch merely evicts a slightly-stale
    /// victim, never corrupts accounting. Each removed entry returns its
    /// footprint to [`EvalCache::bytes`] and counts one eviction.
    fn maybe_evict(&self) {
        let Some(budget) = self.budget else { return };
        if self.bytes.load(Ordering::Relaxed) <= budget {
            return;
        }
        let _guard = self.evict_lock.lock().expect("evict lock poisoned");
        while self.bytes.load(Ordering::Relaxed) > budget {
            // Find the globally oldest entry across all three maps.
            let mut best: Option<(u64, Victim)> = None;
            let better = |best: &Option<(u64, Victim)>, stamp: u64| {
                best.as_ref().is_none_or(|(s, _)| stamp < *s)
            };
            for shard in &self.selections {
                for (k, e) in shard.lock().expect("selection shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Selection(*k)));
                    }
                }
            }
            for shard in &self.sel_postings {
                for (k, e) in shard.lock().expect("selection-postings shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Postings(*k)));
                    }
                }
            }
            for shard in &self.subtrees {
                for (k, e) in shard.lock().expect("subtree shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Subtree(k.clone())));
                    }
                }
            }
            for shard in &self.verdicts {
                for (k, e) in shard.lock().expect("verdict shard poisoned").iter() {
                    if better(&best, e.stamp) {
                        best = Some((e.stamp, Victim::Verdict(k.clone())));
                    }
                }
            }
            let Some((_, victim)) = best else { break };
            let freed = match victim {
                Victim::Selection(k) => self.selections[shard_of(&k)]
                    .lock()
                    .expect("selection shard poisoned")
                    .remove(&k)
                    .map(|e| e.bytes),
                Victim::Postings(k) => self.sel_postings[shard_of(&k)]
                    .lock()
                    .expect("selection-postings shard poisoned")
                    .remove(&k)
                    .map(|e| e.bytes),
                Victim::Subtree(k) => self.subtrees[shard_of(&k.as_slice())]
                    .lock()
                    .expect("subtree shard poisoned")
                    .remove(k.as_slice())
                    .map(|e| e.bytes),
                Victim::Verdict(k) => self.verdicts[shard_of(&k.as_slice())]
                    .lock()
                    .expect("verdict shard poisoned")
                    .remove(k.as_slice())
                    .map(|e| e.bytes),
            };
            if let Some(freed) = freed {
                self.bytes.fetch_sub(freed, Ordering::Relaxed);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Total payload bytes currently resident (selections + postings +
    /// subtree sets + verdicts). Decremented on eviction; always equals
    /// [`EvalCache::accounted_bytes`].
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Recomputes the resident footprint by walking every shard — the slow
    /// ground truth for the `bytes()` accounting identity, used by the
    /// shared-cache differential suite.
    pub fn accounted_bytes(&self) -> u64 {
        let sel: u64 = self
            .selections
            .iter()
            .map(|s| {
                s.lock().expect("selection shard poisoned").values().map(|e| e.bytes).sum::<u64>()
            })
            .sum();
        let post: u64 = self
            .sel_postings
            .iter()
            .map(|s| {
                s.lock()
                    .expect("selection-postings shard poisoned")
                    .values()
                    .map(|e| e.bytes)
                    .sum::<u64>()
            })
            .sum();
        let sub: u64 = self
            .subtrees
            .iter()
            .map(|s| {
                s.lock().expect("subtree shard poisoned").values().map(|e| e.bytes).sum::<u64>()
            })
            .sum();
        let ver: u64 = self
            .verdicts
            .iter()
            .map(|s| {
                s.lock().expect("verdict shard poisoned").values().map(|e| e.bytes).sum::<u64>()
            })
            .sum();
        sel + post + sub + ver
    }

    /// The byte budget, if this cache is bounded.
    pub fn budget(&self) -> Option<u64> {
        self.budget
    }

    /// Database generation this cache serves (0 = session-private).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Lookups answered from the cache (all three layers).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that found nothing (all three layers).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries evicted to keep the store within its byte budget.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Number of cached selections.
    pub fn selection_entries(&self) -> usize {
        self.selections.iter().map(|s| s.lock().expect("selection shard poisoned").len()).sum()
    }

    /// Number of cached subtree value-sets.
    pub fn subtree_entries(&self) -> usize {
        self.subtrees.iter().map(|s| s.lock().expect("subtree shard poisoned").len()).sum()
    }

    /// Number of cached whole-network verdicts.
    pub fn verdict_entries(&self) -> usize {
        self.verdicts.iter().map(|s| s.lock().expect("verdict shard poisoned").len()).sum()
    }

    /// Number of interned keywords.
    pub fn interned_keywords(&self) -> usize {
        self.interner.lock().expect("interner poisoned").len()
    }
}

impl Default for EvalCache {
    fn default() -> Self {
        EvalCache::new()
    }
}

/// A process-wide evaluation cache handle, shared by every session of a
/// serving process (DESIGN.md §12, CACHING.md).
///
/// Wraps one [`EvalCache`] keyed by **database generation** and bounded by a
/// **byte-budget LRU**: sessions built over the same
/// [`crate::debugger::SharedParts`] reuse each other's keyword selections and
/// subtree semi-join value-sets, so a keyword one tenant warmed is free for
/// the next. Cloning shares the store (reference-count bump). Attach with
/// [`crate::debugger::SharedParts::share_eval_cache`] (which stamps the
/// matching generation) or [`crate::debugger::SharedParts::adopt_eval_cache`]
/// (which validates it); the serving layer's `ServeConfig::shared_cache` knob
/// does this per server.
#[derive(Clone)]
pub struct SharedEvalCache {
    inner: Arc<EvalCache>,
}

impl SharedEvalCache {
    /// Creates a process-wide store for database generation `generation`,
    /// bounded by `budget_bytes` (`None` = unbounded).
    pub fn new(generation: u64, budget_bytes: Option<u64>) -> SharedEvalCache {
        SharedEvalCache { inner: Arc::new(EvalCache::with_budget(generation, budget_bytes)) }
    }

    /// The shared store, in the form sessions attach to their oracles.
    pub fn handle(&self) -> Arc<EvalCache> {
        Arc::clone(&self.inner)
    }

    /// Database generation the store was built for.
    pub fn generation(&self) -> u64 {
        self.inner.generation()
    }

    /// The byte budget (`None` = unbounded).
    pub fn budget(&self) -> Option<u64> {
        self.inner.budget()
    }

    /// Resident payload bytes (≤ budget after any insert returns).
    pub fn bytes(&self) -> u64 {
        self.inner.bytes()
    }

    /// Lookups answered from the store, across all sessions and layers.
    pub fn hits(&self) -> u64 {
        self.inner.hits()
    }

    /// Lookups that found nothing.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Entries evicted by the LRU byte budget.
    pub fn evictions(&self) -> u64 {
        self.inner.evictions()
    }

    /// Number of resident selections (dashboards; see `kws_repl :cache`).
    pub fn selection_entries(&self) -> usize {
        self.inner.selection_entries()
    }

    /// Number of resident subtree value-sets.
    pub fn subtree_entries(&self) -> usize {
        self.inner.subtree_entries()
    }

    /// Number of resident whole-network verdicts.
    pub fn verdict_entries(&self) -> usize {
        self.inner.verdict_entries()
    }
}

impl std::fmt::Debug for SharedEvalCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedEvalCache")
            .field("generation", &self.generation())
            .field("bytes", &self.bytes())
            .field("budget", &self.budget())
            .field("evictions", &self.evictions())
            .finish()
    }
}

/// One cut subtree of a network, as seen from the tree rooted at vertex 0:
/// removing the edge `parent — vertex` leaves the component containing
/// `vertex`, whose canonical binding key (plus the component's outgoing join
/// column) addresses the subtree cache.
pub struct SubtreeRef {
    /// Root of the cut component (jnts vertex index).
    pub vertex: usize,
    /// The vertex on the root-0 side of the cut edge.
    pub parent: usize,
    /// `vertex`-side join column of the cut edge — the column the cached
    /// value-set is projected on.
    pub child_col: ColId,
    /// `parent`-side join column of the cut edge — the column a reusing probe
    /// constrains.
    pub parent_col: ColId,
    /// Cache key: rooted binding key of the component ++ `child_col`.
    pub key: Vec<u8>,
}

/// Canonical binding key of a *whole* network: the rooted byte code of the
/// full tree (rooted at vertex 0, matching the executor's reduction root),
/// with vertices labeled by binding like the cut-subtree keys. Two probes
/// with this key equal ask the engine the exact same question, so the
/// verdict-cache layer ([`EvalCache::verdict`]) answers the second from the
/// first's completed reduction — within a session or, through
/// [`SharedEvalCache`], across every session of the generation.
pub fn network_key(j: &Jnts, vid: &dyn Fn(usize) -> u64) -> Vec<u8> {
    rooted_subtree_key(0, usize::MAX, &direction_aware_adjacency(j), vid)
}

/// Computes the [`SubtreeRef`] of every non-root vertex of `j` (rooted at
/// vertex 0, matching the executor's reduction root), in DFS pre-order.
/// `vid` labels vertices by binding — see
/// [`crate::oracle::AlivenessOracle::with_eval_cache`] for how labels are
/// built from an interpretation.
pub fn subtree_refs(j: &Jnts, db: &Database, vid: &dyn Fn(usize) -> u64) -> Vec<SubtreeRef> {
    let n = j.node_count();
    let dadj = direction_aware_adjacency(j);
    // Plain adjacency with edge indices, for join columns.
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
    for (ei, e) in j.edges().iter().enumerate() {
        adj[e.a as usize].push((ei, e.b as usize));
        adj[e.b as usize].push((ei, e.a as usize));
    }
    let mut out = Vec::with_capacity(n.saturating_sub(1));
    let mut stack = vec![(0usize, usize::MAX)];
    let mut visited = vec![false; n];
    while let Some((u, parent)) = stack.pop() {
        if visited[u] {
            continue;
        }
        visited[u] = true;
        for &(ei, v) in &adj[u] {
            if v == parent || visited[v] {
                continue;
            }
            let e = &j.edges()[ei];
            let fk = db.foreign_key(e.fk);
            let (a_col, b_col) = if e.a_is_from {
                (fk.from_col, fk.to_col)
            } else {
                (fk.to_col, fk.from_col)
            };
            let (child_col, parent_col) =
                if e.a as usize == v { (a_col, b_col) } else { (b_col, a_col) };
            let mut key = rooted_subtree_key(v, u, &dadj, vid);
            key.extend_from_slice(&(child_col as u64).to_le_bytes());
            out.push(SubtreeRef { vertex: v, parent: u, child_col, parent_col, key });
            stack.push((v, u));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interner_is_stable() {
        let c = EvalCache::new();
        let a = c.intern("saffron");
        let b = c.intern("candle");
        assert_ne!(a, b);
        assert_eq!(c.intern("saffron"), a);
        assert_eq!(c.interned_keywords(), 2);
    }

    #[test]
    fn selection_roundtrip_and_race() {
        let c = EvalCache::new();
        assert!(c.selection(0, 1, true).is_none());
        let (first, added) = c.insert_selection(0, 1, true, vec![3, 5, 8]);
        assert_eq!(*first, vec![3, 5, 8]);
        assert!(added > 0);
        let bytes = c.bytes();
        assert_eq!(bytes, added);
        // Losing writer keeps the existing entry and adds no bytes.
        let (second, re_added) = c.insert_selection(0, 1, true, vec![9]);
        assert_eq!(*second, vec![3, 5, 8]);
        assert_eq!(re_added, 0);
        assert_eq!(c.bytes(), bytes);
        assert_eq!(c.selection_entries(), 1);
        // Indexed flag is part of the key.
        assert!(c.selection(0, 1, false).is_none());
    }

    #[test]
    fn subtree_roundtrip_and_race() {
        let c = EvalCache::new();
        assert!(c.subtree(b"k1").is_none());
        let added = c.insert_subtree(b"k1".to_vec(), vec![7, 9]);
        assert!(added > 0);
        assert_eq!(*c.subtree(b"k1").unwrap(), vec![7, 9]);
        assert_eq!(c.insert_subtree(b"k1".to_vec(), vec![1]), 0);
        assert_eq!(*c.subtree(b"k1").unwrap(), vec![7, 9]);
        assert_eq!(c.subtree_entries(), 1);
        // Empty sets are legitimate entries (dead-subtree proofs).
        c.insert_subtree(b"k2".to_vec(), vec![]);
        assert_eq!(*c.subtree(b"k2").unwrap(), Vec::<i64>::new());
    }

    #[test]
    fn hit_miss_counters_track_all_layers() {
        let c = EvalCache::new();
        assert!(c.selection(0, 0, true).is_none());
        assert!(c.subtree(b"nope").is_none());
        assert_eq!((c.hits(), c.misses()), (0, 2));
        c.insert_selection(0, 0, true, vec![1]);
        c.insert_subtree(b"yes".to_vec(), vec![4]);
        assert!(c.selection(0, 0, true).is_some());
        assert!(c.subtree(b"yes").is_some());
        assert_eq!((c.hits(), c.misses()), (2, 2));
    }

    #[test]
    fn budget_evicts_lru_and_returns_bytes() {
        // Each selection of 4 RowIds costs 16 bytes; budget fits two.
        let c = EvalCache::with_budget(7, Some(32));
        assert_eq!(c.generation(), 7);
        c.insert_selection(0, 0, true, vec![1, 2, 3, 4]);
        c.insert_selection(1, 1, true, vec![1, 2, 3, 4]);
        assert_eq!(c.evictions(), 0);
        // Touch the first so the second is the LRU victim.
        assert!(c.selection(0, 0, true).is_some());
        c.insert_selection(2, 2, true, vec![1, 2, 3, 4]);
        assert_eq!(c.evictions(), 1, "one entry evicted to fit the budget");
        assert!(c.bytes() <= 32, "budget enforced: {}", c.bytes());
        assert!(c.selection(0, 0, true).is_some(), "recently-touched entry survives");
        assert!(c.selection(1, 1, true).is_none(), "LRU entry evicted");
        assert!(c.selection(2, 2, true).is_some(), "newest entry resident");
        assert_eq!(c.bytes(), c.accounted_bytes(), "accounting identity after eviction");
    }

    #[test]
    fn eviction_spans_layers_and_keeps_identity() {
        let c = EvalCache::with_budget(1, Some(48));
        c.insert_subtree(b"old-subtree-key".to_vec(), vec![1, 2]);
        c.insert_selection(0, 0, true, vec![1, 2, 3, 4]);
        c.insert_selection(1, 1, true, vec![1, 2, 3, 4]);
        // 15+16 key/value + 16 + 16 = 63 > 48: the oldest (subtree) goes.
        assert!(c.evictions() > 0);
        assert!(c.subtree(b"old-subtree-key").is_none(), "oldest layer-2 entry evicted");
        assert!(c.bytes() <= 48);
        assert_eq!(c.bytes(), c.accounted_bytes());
    }

    #[test]
    fn shared_handle_is_one_store() {
        let shared = SharedEvalCache::new(3, Some(1 << 20));
        let a = shared.handle();
        let b = shared.handle();
        a.insert_subtree(b"k".to_vec(), vec![1]);
        assert!(b.subtree(b"k").is_some(), "handles alias one store");
        assert_eq!(shared.generation(), 3);
        assert_eq!(shared.budget(), Some(1 << 20));
        assert!(shared.bytes() > 0);
        assert_eq!(shared.hits(), 1);
        assert_eq!(shared.subtree_entries(), 1);
    }
}
