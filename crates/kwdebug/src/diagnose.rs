//! Root-cause diagnosis: minimal dead sub-queries and repair hints.
//!
//! MPANs are the *maximal alive* frontier of a non-answer — what still works.
//! Debugging also wants the dual: the **minimal dead nodes (MDNs)** — dead
//! sub-queries all of whose own sub-queries are alive. Each MDN is a smallest
//! reproducible failure, and its shape tells the developer *what kind* of
//! problem they have (the paper's introduction lists exactly these cases):
//!
//! * a single-relation MDN ⇒ the data problem: the relation is empty or no
//!   tuple matches the keyword;
//! * a two-relation MDN ⇒ the join problem: both sides have matching tuples
//!   but the key/foreign-key join connects none of them — the
//!   "add `saffron` as a synonym of `yellow`" case from Example 1, or a
//!   missing association row;
//! * a larger MDN whose every proper sub-query is alive ⇒ a co-occurrence
//!   problem: every pairwise relationship exists, the full combination does
//!   not (the merchandising case).
//!
//! Diagnoses are computed from complete traversal statuses (e.g. a finished
//! [`crate::session::DebugSession`]), so no extra SQL is executed.

use std::fmt;

use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;
use crate::traversal::Status;
use crate::KwError;

/// Category of a minimal failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CauseKind {
    /// A single free tuple set is empty: the relation itself has no rows.
    EmptyRelation {
        /// The empty table.
        table: String,
    },
    /// A single keyword-bound tuple set is empty: the keyword matches no
    /// tuple of its relation (under the current interpretation).
    KeywordMatchesNothing {
        /// The searched table.
        table: String,
        /// The keyword that found nothing.
        keyword: String,
    },
    /// A two-relation join is empty although both sides are alive: the
    /// key/foreign-key association never links the matching tuples.
    BrokenJoin {
        /// Referencing side of the join (`table.column`).
        from: String,
        /// Referenced side of the join (`table.column`).
        to: String,
    },
    /// Every proper sub-query is alive but the full combination never
    /// co-occurs.
    CombinationNeverOccurs {
        /// Number of relations in the failing combination.
        relations: usize,
    },
}

/// One minimal dead sub-query with its classification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// Dense index of the minimal dead node in the pruned lattice.
    pub node: usize,
    /// Lattice level of the failure (number of relations involved).
    pub level: u32,
    /// The failing SQL.
    pub sql: String,
    /// What kind of failure this is.
    pub kind: CauseKind,
}

impl fmt::Display for Diagnosis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            CauseKind::EmptyRelation { table } => {
                write!(f, "relation `{table}` holds no tuples at all")
            }
            CauseKind::KeywordMatchesNothing { table, keyword } => write!(
                f,
                "keyword \"{keyword}\" matches nothing in `{table}` — vocabulary fix \
                 (synonyms, spelling) needed"
            ),
            CauseKind::BrokenJoin { from, to } => write!(
                f,
                "both sides have matching tuples but the join {from} = {to} links none of \
                 them — consider a synonym/data fix on either side or missing association rows"
            ),
            CauseKind::CombinationNeverOccurs { relations } => write!(
                f,
                "every sub-relationship exists, but the full {relations}-relation \
                 combination never co-occurs in the data"
            ),
        }?;
        write!(f, " [{}]", self.sql)
    }
}

/// Minimal dead nodes of dead MTN `m`: dead nodes in `Desc+(m)` whose every
/// child is alive (single-relation dead nodes are trivially minimal).
///
/// Statuses must be complete over `Desc+(m)`.
pub fn minimal_dead_nodes(pruned: &PrunedLattice, status: &[Status], m: usize) -> Vec<usize> {
    debug_assert_eq!(status[m], Status::Dead);
    pruned
        .desc_plus(m)
        .iter()
        .copied()
        .filter(|&n| {
            status[n] == Status::Dead
                && pruned.children(n).iter().all(|&c| status[c] == Status::Alive)
        })
        .collect()
}

/// Diagnoses dead MTN `m` from complete statuses: one [`Diagnosis`] per
/// minimal dead node, classified by shape. The oracle is only used to render
/// SQL and to read schema names — no queries are executed.
pub fn diagnose(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    status: &[Status],
    m: usize,
    oracle: &AlivenessOracle<'_>,
) -> Result<Vec<Diagnosis>, KwError> {
    let db = oracle.database();
    let mut out = Vec::new();
    for node in minimal_dead_nodes(pruned, status, m) {
        let jnts = pruned.jnts(lattice, node);
        let sql = oracle.sql(jnts)?;
        let kind = match jnts.node_count() {
            1 => {
                let ts = jnts.nodes()[0];
                let table = db.table(ts.table).schema().name.clone();
                match oracle.keyword_of(ts) {
                    None => CauseKind::EmptyRelation { table },
                    Some(kw) => {
                        CauseKind::KeywordMatchesNothing { table, keyword: kw.to_owned() }
                    }
                }
            }
            2 => {
                let e = jnts.edges()[0];
                let fk = db.foreign_key(e.fk);
                let name = |t: usize, c: usize| {
                    let s = db.table(t).schema();
                    format!("{}.{}", s.name, s.columns[c].name)
                };
                CauseKind::BrokenJoin {
                    from: name(fk.from_table, fk.from_col),
                    to: name(fk.to_table, fk.to_col),
                }
            }
            n => CauseKind::CombinationNeverOccurs { relations: n },
        };
        out.push(Diagnosis { node, level: pruned.level(node), sql, kind });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binding::{map_keywords, KeywordQuery};
    use crate::session::DebugSession;
    use crate::schema_graph::SchemaGraph;
    use relengine::{DataType, Database, DatabaseBuilder, Value};
    use textindex::InvertedIndex;

    /// ptype(candle, incense) <- item -> color(red, saffron); items: a red
    /// candle and a saffron oil... except `incense` exists as a type with no
    /// items, and `saffron` colors nothing that is a candle.
    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("ptype").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.table("item")
            .column("id", DataType::Int)
            .column("name", DataType::Text)
            .column("ptype_id", DataType::Int)
            .column("color_id", DataType::Int)
            .primary_key("id");
        b.table("color").column("id", DataType::Int).column("name", DataType::Text)
            .primary_key("id");
        b.foreign_key("item", "ptype_id", "ptype", "id").expect("static");
        b.foreign_key("item", "color_id", "color", "id").expect("static");
        let mut db = b.finish().expect("static");
        for (id, n) in [(1, "candle"), (2, "oil"), (3, "incense")] {
            db.insert_values("ptype", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n) in [(1, "red"), (2, "saffron")] {
            db.insert_values("color", vec![Value::Int(id), Value::text(n)]).expect("row");
        }
        for (id, n, p, c) in [(1, "wick", 1, 1), (2, "drop", 2, 2)] {
            db.insert_values(
                "item",
                vec![Value::Int(id), Value::text(n), Value::Int(p), Value::Int(c)],
            )
            .expect("row");
        }
        db.finalize();
        db
    }

    struct Fix {
        db: Database,
        index: InvertedIndex,
        lattice: Lattice,
        keywords: Vec<String>,
        interp: crate::binding::Interpretation,
    }

    fn fix(text: &str) -> Fix {
        let db = db();
        let index = InvertedIndex::build(&db);
        let graph = SchemaGraph::new(&db);
        let lattice = Lattice::build(&db, &graph, 2);
        let query = KeywordQuery::parse(text).expect("parses");
        let mapping = map_keywords(&query, &index);
        let interp = mapping.interpretations[0].clone();
        Fix { db, index, lattice, keywords: mapping.keywords, interp }
    }

    fn diagnose_first_dead(f: &Fix) -> Vec<Diagnosis> {
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        session.run_to_completion(&mut oracle).expect("session runs");
        let out = session.outcome().expect("complete");
        assert!(!out.dead_mtns.is_empty(), "fixture query must be a non-answer");
        let statuses: Vec<Status> =
            (0..session.pruned().len()).map(|i| session.status(i)).collect();
        diagnose(&f.lattice, session.pruned(), &statuses, out.dead_mtns[0], &oracle)
            .expect("diagnosis runs")
    }

    #[test]
    fn broken_join_detected_for_saffron_candle() {
        let f = fix("saffron candle");
        let diags = diagnose_first_dead(&f);
        // Both I⋈C_saffron... the saffron oil exists so item-color is alive;
        // the dead frontier is the candle-side join combination. At least one
        // diagnosis must exist and be join- or combination-shaped.
        assert!(!diags.is_empty());
        for d in &diags {
            assert!(d.level >= 2, "single tables are alive here: {d}");
            assert!(matches!(
                d.kind,
                CauseKind::BrokenJoin { .. } | CauseKind::CombinationNeverOccurs { .. }
            ));
            assert!(!d.to_string().is_empty());
        }
    }

    #[test]
    fn empty_relationship_frontier_for_scented_incense() {
        // "incense drop": incense exists (ptype 3) but no item references it;
        // "drop" matches item 2. The MDN is the item⋈ptype join.
        let f = fix("drop incense");
        let diags = diagnose_first_dead(&f);
        assert!(diags.iter().any(|d| matches!(
            d.kind,
            CauseKind::BrokenJoin { ref to, .. } if to == "ptype.id"
        )), "{diags:?}");
        let text = diags[0].to_string();
        assert!(text.contains("join"), "{text}");
    }

    #[test]
    fn minimal_dead_nodes_are_minimal() {
        let f = fix("saffron candle");
        let pruned = PrunedLattice::build(&f.lattice, &f.interp);
        let mut oracle =
            AlivenessOracle::new(&f.db, Some(&f.index), &f.interp, &f.keywords, false);
        let mut session = DebugSession::new(&f.lattice, pruned, 0.5);
        session.run_to_completion(&mut oracle).expect("session runs");
        let out = session.outcome().expect("complete");
        let statuses: Vec<Status> =
            (0..session.pruned().len()).map(|i| session.status(i)).collect();
        for &m in &out.dead_mtns {
            for mdn in minimal_dead_nodes(session.pruned(), &statuses, m) {
                assert_eq!(statuses[mdn], Status::Dead);
                for &c in session.pruned().children(mdn) {
                    assert_eq!(statuses[c], Status::Alive, "child of MDN must be alive");
                }
                // Every dead node above an MDN stays dead (R2): the MDN set
                // explains all deadness in the cone.
                for &a in session.pruned().asc_plus(mdn) {
                    if session.pruned().is_desc_or_self(a, m) {
                        assert_eq!(statuses[a], Status::Dead);
                    }
                }
            }
        }
    }

    #[test]
    fn display_messages_are_actionable() {
        let d = Diagnosis {
            node: 0,
            level: 1,
            sql: "SELECT *".into(),
            kind: CauseKind::KeywordMatchesNothing {
                table: "color".into(),
                keyword: "saffron".into(),
            },
        };
        assert!(d.to_string().contains("vocabulary fix"));
        let d = Diagnosis {
            node: 0,
            level: 2,
            sql: "SELECT *".into(),
            kind: CauseKind::BrokenJoin { from: "item.color_id".into(), to: "color.id".into() },
        };
        assert!(d.to_string().contains("item.color_id = color.id"));
        let d = Diagnosis {
            node: 0,
            level: 3,
            sql: "SELECT *".into(),
            kind: CauseKind::CombinationNeverOccurs { relations: 3 },
        };
        assert!(d.to_string().contains("3-relation"));
        let d = Diagnosis {
            node: 0,
            level: 1,
            sql: "SELECT *".into(),
            kind: CauseKind::EmptyRelation { table: "writes".into() },
        };
        assert!(d.to_string().contains("no tuples"));
    }
}
