//! Probe-level observability: counters, timers and serializable snapshots.
//!
//! The paper's entire evaluation (§3) ranks strategies by *how many SQL
//! queries they execute* and *where the time goes*. This module makes those
//! quantities first-class: every [`crate::oracle::AlivenessOracle`] owns a
//! [`Metrics`] block of lock-free counters that the oracle and the Phase-3
//! traversals increment as they work, and every layer above (traversal →
//! debugger → bench binaries) reads them through cheap [`ProbeCounters`]
//! snapshots with delta semantics.
//!
//! Counter → paper cross-reference:
//!
//! | counter | incremented by | paper counterpart |
//! |---|---|---|
//! | `probes_executed` | oracle, per `is_alive`/`sample` execution | "# of SQL queries" (Figs. 11, 14; Table 4) |
//! | `probe_time` | oracle, wall clock of each execution | "SQL time" (Figs. 12, 15) |
//! | `tuples_scanned` | oracle, engine rows examined per probe | cost model behind §3.4 |
//! | `memo_hits` | oracle, memoized verdict reuse (ablation knob) | beyond the paper (re-execution baseline) |
//! | `r1_inferences` | traversals, nodes classified alive by rule R1 | §2.4 rule 1 |
//! | `r2_inferences` | traversals, nodes classified dead by rule R2 | §2.4 rule 2 |
//! | `reuse_hits` | traversals, visits skipped because a node was already classified | the "WR" in BUWR/TDWR (Fig. 13) |
//! | `retries` | oracle, probe attempts re-issued after a transient fault | beyond the paper (degraded mode) |
//! | `faults_injected` | oracle, fault errors observed (injected or real) | beyond the paper (degraded mode) |
//! | `probes_abandoned` | oracle, probes given up on (node stays `Unknown`) | beyond the paper (degraded mode) |
//! | `budget_exhausted` | oracle, [`crate::budget::ProbeBudget`] cap trips | beyond the paper (degraded mode) |
//! | `workers` | parallel scheduler, pool size per parallel traversal | beyond the paper (parallel probing) |
//! | `steals` | parallel scheduler, jobs a worker took from another's queue | beyond the paper (parallel probing) |
//! | `inference_suppressed_probes` | parallel dispatcher, probes answered by the shared memo at dispatch time | beyond the paper (parallel probing) |
//! | `phase1_nodes_touched` | debugger, posting-list entries scanned by Phase 1 (DESIGN.md §9) | beyond the paper (compact substrate) |
//! | `workspace_reuses` | debugger, `PrunedLattice` builds served from the pooled [`crate::workspace::QueryWorkspace`] | beyond the paper (compact substrate) |
//! | `selection_cache_hits` | oracle, plan nodes served a shared keyword selection by [`crate::evalcache`] | beyond the paper (evaluation cache) |
//! | `subtree_cache_hits` | oracle, probe subtrees replaced by a cached semi-join value-set | beyond the paper (evaluation cache) |
//! | `subtree_cache_dead_shortcuts` | oracle/dispatcher, probes answered Dead from an empty cached value-set | beyond the paper (evaluation cache) |
//! | `verdict_cache_hits` | oracle/dispatcher, probes answered (Alive *or* Dead) from a cached whole-network verdict | beyond the paper (evaluation cache) |
//! | `cache_bytes` | oracle, payload bytes resident in the session [`crate::evalcache::EvalCache`] | beyond the paper (evaluation cache) |
//! | `delta_postings_merged` | oracle, bound plan nodes whose posting list was merged on read over pending index deltas | beyond the paper (mutable databases) |
//! | `batched_waves` | batched dispatcher, waves this session parked in a [`crate::batch::WaveExchange`] | beyond the paper (cross-session batching) |
//! | `coalesced_probes` | batched dispatcher, probes answered by another session's in-flight execution | beyond the paper (cross-session batching) |
//! | `epoch` | debugger, gauge of the session's pinned database write epoch | beyond the paper (mutable databases) |
//! | `entries_invalidated` | debugger, gauge of cache entries evicted by write-delta invalidation | beyond the paper (mutable databases) |
//! | `compactions` | debugger, gauge of the index's delta-postings compactions | beyond the paper (mutable databases) |
//!
//! The invariant the integration tests pin down: `probes_executed` equals the
//! engine's own `ExecStats::queries`, so a strategy can never misreport its
//! probe count. All counters are relaxed atomics, which also makes the whole
//! block safe to share across the worker threads of [`crate::parallel`] —
//! workers increment the *same* `Metrics`, so one snapshot already is the
//! merged per-worker view.
//!
//! [`MetricsSnapshot`] bundles one experiment record (probes + per-phase
//! timings + Phase-1/2 statistics) and renders it as a single stable-key JSON
//! object — hand-rolled like [`crate::lattice_io`], no external dependencies —
//! which the bench binaries write as `BENCH_*.json` lines. The keys of the
//! `probes` object are emitted in sorted order so bench diffs stay clean as
//! counters are added.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use crate::lattice::LevelStats;
use crate::prune::PruneStats;

/// A monotonically increasing event counter (relaxed atomic, so it can be
/// bumped through a shared borrow while the owner is otherwise `&mut`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Adds one event.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n` events.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Overwrites the value — for the gauge-style fields (`epoch`,
    /// `entries_invalidated`, `compactions`) that mirror external state
    /// instead of counting events.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A monotonic accumulator of elapsed wall-clock time (stored as nanoseconds).
#[derive(Debug, Default)]
pub struct TimeCounter(AtomicU64);

impl TimeCounter {
    /// A timer starting at zero.
    pub const fn new() -> TimeCounter {
        TimeCounter(AtomicU64::new(0))
    }

    /// Accumulates one elapsed span.
    pub fn add(&self, d: Duration) {
        self.0.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Total accumulated time.
    pub fn get(&self) -> Duration {
        Duration::from_nanos(self.nanos())
    }

    /// Total accumulated nanoseconds.
    pub fn nanos(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// The live instrumentation block owned by an aliveness oracle.
///
/// The oracle maintains the probe counters itself; the Phase-3 strategies
/// record their inference/reuse events through
/// [`crate::oracle::AlivenessOracle::metrics`]. All fields are atomics, so
/// recording never needs `&mut`.
#[derive(Debug, Default)]
pub struct Metrics {
    /// SQL probes actually executed (`is_alive` misses + report samples).
    pub probes_executed: Counter,
    /// Wall-clock time spent inside probe executions.
    pub probe_time: TimeCounter,
    /// Engine rows examined across all probes.
    pub tuples_scanned: Counter,
    /// `is_alive` calls answered from the memo table without executing.
    pub memo_hits: Counter,
    /// Nodes classified alive by rule R1 (descendants of an executed alive
    /// node), excluding the executed node itself.
    pub r1_inferences: Counter,
    /// Nodes classified dead by rule R2 (ancestors of an executed dead
    /// node), excluding the executed node itself.
    pub r2_inferences: Counter,
    /// Traversal visits skipped because the node was already classified —
    /// cross-MTN sharing for the with-reuse strategies, within-MTN
    /// R1/R2 coverage for BU/TD.
    pub reuse_hits: Counter,
    /// Probe attempts re-issued after a transient failure (one per retry,
    /// not per probe).
    pub retries: Counter,
    /// Fault errors ([`relengine::EngineError::is_fault`]) observed by the
    /// oracle, whether or not a retry later succeeded.
    pub faults_injected: Counter,
    /// Probes given up on after a permanent failure or exhausted retries;
    /// the node stays `Unknown` in the partial report.
    pub probes_abandoned: Counter,
    /// Times a [`crate::budget::ProbeBudget`] cap tripped (at most once per
    /// oracle — budgets are sticky).
    pub budget_exhausted: Counter,
    /// Worker threads used by [`crate::parallel`] traversals (the pool size,
    /// summed per parallel traversal); 0 on sequential runs.
    pub workers: Counter,
    /// Jobs a parallel worker stole from another worker's queue; 0 on
    /// sequential runs (and scheduling-dependent, so never compared exactly).
    pub steals: Counter,
    /// Probes the parallel dispatcher never issued because the sharded memo
    /// already held a verdict at dispatch time — cross-thread suppression the
    /// sequential engine counts as plain `memo_hits`. Always 0 on sequential
    /// runs; in parallel runs every such event also counts one `memo_hits`,
    /// keeping the memo accounting comparable across modes.
    pub inference_suppressed_probes: Counter,
    /// Posting-list entries scanned by the postings-based Phase 1 (union of
    /// unbound copies + bound-copy intersection; see `DESIGN.md` §9). A proxy
    /// for Phase-1 work that, unlike the old full-lattice scan, shrinks with
    /// selective keywords.
    pub phase1_nodes_touched: Counter,
    /// `PrunedLattice` builds that reused a pooled
    /// [`crate::workspace::QueryWorkspace`] instead of allocating fresh
    /// scratch (first build on a pool slot counts 0).
    pub workspace_reuses: Counter,
    /// Plan nodes whose keyword selection was served from the session
    /// [`crate::evalcache::EvalCache`] instead of re-evaluating the
    /// containment predicate (population-order-dependent in parallel runs).
    pub selection_cache_hits: Counter,
    /// Probe subtrees pruned because a cached semi-join value-set stood in
    /// for their reduction (population-order-dependent in parallel runs).
    pub subtree_cache_hits: Counter,
    /// Probes answered Dead without touching the engine because a cached cut
    /// value-set was empty; counted like an inference, never as a probe.
    pub subtree_cache_dead_shortcuts: Counter,
    /// Probes answered without touching the engine because the evaluation
    /// cache held a completed verdict for the network's canonical binding key
    /// ([`crate::evalcache::network_key`]); unlike dead shortcuts this layer
    /// answers *alive* repeats too.
    pub verdict_cache_hits: Counter,
    /// Payload bytes this oracle newly added to the session evaluation
    /// cache; summed across a session the counter equals the cache's
    /// resident size (warm runs that add nothing report 0).
    pub cache_bytes: Counter,
    /// Bound plan nodes whose inverted-index posting list was assembled by a
    /// merge-on-read over pending write deltas
    /// ([`textindex::InvertedIndex::rows_containing`] returning an owned
    /// union) instead of a borrowed base list. 0 on fully-compacted indexes.
    pub delta_postings_merged: Counter,
    /// Waves this session parked in a cross-session
    /// [`crate::batch::WaveExchange`] instead of executing alone; 0 when
    /// batching is off or the exchange was bypassed (single-session traffic).
    pub batched_waves: Counter,
    /// Probes answered by another session's in-flight execution of the same
    /// canonical network in a merged wave — counted like an inference (never
    /// as `probes_executed`), mirroring the memo-hit accounting. The probe
    /// still charges this session's budget gate at its original dispatch
    /// slot, so budget-cut partials match unbatched runs.
    pub coalesced_probes: Counter,
    /// Gauge: the database write epoch this session is pinned at (set once
    /// per debug call, not accumulated — see [`ProbeCounters::delta`]).
    pub epoch: Counter,
    /// Gauge: total entries the attached evaluation cache has evicted through
    /// write-delta invalidation ([`crate::evalcache::EvalCache::invalidated`]);
    /// 0 without a cache.
    pub entries_invalidated: Counter,
    /// Gauge: total delta-postings compactions the session's inverted index
    /// has performed ([`textindex::InvertedIndex::compactions`]); 0 without
    /// an index.
    pub compactions: Counter,
}

impl Metrics {
    /// A zeroed metrics block.
    pub const fn new() -> Metrics {
        Metrics {
            probes_executed: Counter::new(),
            probe_time: TimeCounter::new(),
            tuples_scanned: Counter::new(),
            memo_hits: Counter::new(),
            r1_inferences: Counter::new(),
            r2_inferences: Counter::new(),
            reuse_hits: Counter::new(),
            retries: Counter::new(),
            faults_injected: Counter::new(),
            probes_abandoned: Counter::new(),
            budget_exhausted: Counter::new(),
            workers: Counter::new(),
            steals: Counter::new(),
            inference_suppressed_probes: Counter::new(),
            phase1_nodes_touched: Counter::new(),
            workspace_reuses: Counter::new(),
            selection_cache_hits: Counter::new(),
            subtree_cache_hits: Counter::new(),
            subtree_cache_dead_shortcuts: Counter::new(),
            verdict_cache_hits: Counter::new(),
            cache_bytes: Counter::new(),
            delta_postings_merged: Counter::new(),
            batched_waves: Counter::new(),
            coalesced_probes: Counter::new(),
            epoch: Counter::new(),
            entries_invalidated: Counter::new(),
            compactions: Counter::new(),
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ProbeCounters {
        ProbeCounters {
            probes_executed: self.probes_executed.get(),
            probe_time_ns: self.probe_time.nanos(),
            tuples_scanned: self.tuples_scanned.get(),
            memo_hits: self.memo_hits.get(),
            r1_inferences: self.r1_inferences.get(),
            r2_inferences: self.r2_inferences.get(),
            reuse_hits: self.reuse_hits.get(),
            retries: self.retries.get(),
            faults_injected: self.faults_injected.get(),
            probes_abandoned: self.probes_abandoned.get(),
            budget_exhausted: self.budget_exhausted.get(),
            workers: self.workers.get(),
            steals: self.steals.get(),
            inference_suppressed_probes: self.inference_suppressed_probes.get(),
            phase1_nodes_touched: self.phase1_nodes_touched.get(),
            workspace_reuses: self.workspace_reuses.get(),
            selection_cache_hits: self.selection_cache_hits.get(),
            subtree_cache_hits: self.subtree_cache_hits.get(),
            subtree_cache_dead_shortcuts: self.subtree_cache_dead_shortcuts.get(),
            verdict_cache_hits: self.verdict_cache_hits.get(),
            cache_bytes: self.cache_bytes.get(),
            delta_postings_merged: self.delta_postings_merged.get(),
            batched_waves: self.batched_waves.get(),
            coalesced_probes: self.coalesced_probes.get(),
            epoch: self.epoch.get(),
            entries_invalidated: self.entries_invalidated.get(),
            compactions: self.compactions.get(),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        self.probes_executed.reset();
        self.probe_time.reset();
        self.tuples_scanned.reset();
        self.memo_hits.reset();
        self.r1_inferences.reset();
        self.r2_inferences.reset();
        self.reuse_hits.reset();
        self.retries.reset();
        self.faults_injected.reset();
        self.probes_abandoned.reset();
        self.budget_exhausted.reset();
        self.workers.reset();
        self.steals.reset();
        self.inference_suppressed_probes.reset();
        self.phase1_nodes_touched.reset();
        self.workspace_reuses.reset();
        self.selection_cache_hits.reset();
        self.subtree_cache_hits.reset();
        self.subtree_cache_dead_shortcuts.reset();
        self.verdict_cache_hits.reset();
        self.cache_bytes.reset();
        self.delta_postings_merged.reset();
        self.batched_waves.reset();
        self.coalesced_probes.reset();
        self.epoch.reset();
        self.entries_invalidated.reset();
        self.compactions.reset();
    }
}

/// A plain-value snapshot of [`Metrics`], with delta and merge semantics.
///
/// Snapshots taken before and after a traversal subtract
/// ([`ProbeCounters::delta`]) to attribute counts to that traversal alone;
/// per-interpretation counters sum ([`ProbeCounters::accumulate`]) into
/// per-query aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCounters {
    /// SQL probes executed.
    pub probes_executed: u64,
    /// Nanoseconds spent executing probes.
    pub probe_time_ns: u64,
    /// Engine rows examined.
    pub tuples_scanned: u64,
    /// Memoized verdicts reused.
    pub memo_hits: u64,
    /// Nodes classified alive by rule R1.
    pub r1_inferences: u64,
    /// Nodes classified dead by rule R2.
    pub r2_inferences: u64,
    /// Visits skipped on already-classified nodes.
    pub reuse_hits: u64,
    /// Probe attempts re-issued after transient failures.
    pub retries: u64,
    /// Fault errors observed by the oracle.
    pub faults_injected: u64,
    /// Probes abandoned (node left `Unknown`).
    pub probes_abandoned: u64,
    /// Budget caps tripped.
    pub budget_exhausted: u64,
    /// Parallel worker threads used (0 on sequential runs).
    pub workers: u64,
    /// Jobs stolen between parallel workers (0 on sequential runs).
    pub steals: u64,
    /// Probes suppressed by the parallel dispatcher's memo pre-check
    /// (0 on sequential runs).
    pub inference_suppressed_probes: u64,
    /// Posting-list entries scanned by Phase 1.
    pub phase1_nodes_touched: u64,
    /// `PrunedLattice` builds that reused pooled workspace scratch.
    pub workspace_reuses: u64,
    /// Plan nodes served a shared keyword selection by the evaluation cache.
    pub selection_cache_hits: u64,
    /// Probe subtrees replaced by a cached semi-join value-set.
    pub subtree_cache_hits: u64,
    /// Probes answered Dead from an empty cached value-set (no execution).
    pub subtree_cache_dead_shortcuts: u64,
    /// Probes answered from a cached whole-network verdict (no execution).
    pub verdict_cache_hits: u64,
    /// Payload bytes newly added to the session evaluation cache.
    pub cache_bytes: u64,
    /// Bound plan nodes whose posting list was merged on read over pending
    /// index write deltas.
    pub delta_postings_merged: u64,
    /// Waves parked in a cross-session exchange (0 when batching is off or
    /// bypassed).
    pub batched_waves: u64,
    /// Probes answered by another session's in-flight execution in a merged
    /// wave (never counted as `probes_executed`).
    pub coalesced_probes: u64,
    /// Gauge: database write epoch the session is pinned at.
    pub epoch: u64,
    /// Gauge: total cache entries evicted by write-delta invalidation.
    pub entries_invalidated: u64,
    /// Gauge: total delta-postings compactions of the session's index.
    pub compactions: u64,
}

impl ProbeCounters {
    /// Counts attributable to the window between `baseline` and `self`.
    /// The gauge fields (`epoch`, `entries_invalidated`, `compactions`) are
    /// state mirrors, not event counts, so the window carries `self`'s value
    /// unchanged instead of a meaningless subtraction.
    pub fn delta(self, baseline: ProbeCounters) -> ProbeCounters {
        ProbeCounters {
            probes_executed: self.probes_executed - baseline.probes_executed,
            probe_time_ns: self.probe_time_ns - baseline.probe_time_ns,
            tuples_scanned: self.tuples_scanned - baseline.tuples_scanned,
            memo_hits: self.memo_hits - baseline.memo_hits,
            r1_inferences: self.r1_inferences - baseline.r1_inferences,
            r2_inferences: self.r2_inferences - baseline.r2_inferences,
            reuse_hits: self.reuse_hits - baseline.reuse_hits,
            retries: self.retries - baseline.retries,
            faults_injected: self.faults_injected - baseline.faults_injected,
            probes_abandoned: self.probes_abandoned - baseline.probes_abandoned,
            budget_exhausted: self.budget_exhausted - baseline.budget_exhausted,
            workers: self.workers - baseline.workers,
            steals: self.steals - baseline.steals,
            inference_suppressed_probes: self.inference_suppressed_probes
                - baseline.inference_suppressed_probes,
            phase1_nodes_touched: self.phase1_nodes_touched - baseline.phase1_nodes_touched,
            workspace_reuses: self.workspace_reuses - baseline.workspace_reuses,
            selection_cache_hits: self.selection_cache_hits - baseline.selection_cache_hits,
            subtree_cache_hits: self.subtree_cache_hits - baseline.subtree_cache_hits,
            subtree_cache_dead_shortcuts: self.subtree_cache_dead_shortcuts
                - baseline.subtree_cache_dead_shortcuts,
            verdict_cache_hits: self.verdict_cache_hits - baseline.verdict_cache_hits,
            cache_bytes: self.cache_bytes - baseline.cache_bytes,
            delta_postings_merged: self.delta_postings_merged - baseline.delta_postings_merged,
            batched_waves: self.batched_waves - baseline.batched_waves,
            coalesced_probes: self.coalesced_probes - baseline.coalesced_probes,
            epoch: self.epoch,
            entries_invalidated: self.entries_invalidated,
            compactions: self.compactions,
        }
    }

    /// Adds another window's counts into this one. Gauge fields take the
    /// maximum — accumulating per-interpretation windows of one debug call
    /// must report the call's (single) epoch and final cache/index state,
    /// not a sum of repeats.
    pub fn accumulate(&mut self, other: ProbeCounters) {
        self.probes_executed += other.probes_executed;
        self.probe_time_ns += other.probe_time_ns;
        self.tuples_scanned += other.tuples_scanned;
        self.memo_hits += other.memo_hits;
        self.r1_inferences += other.r1_inferences;
        self.r2_inferences += other.r2_inferences;
        self.reuse_hits += other.reuse_hits;
        self.retries += other.retries;
        self.faults_injected += other.faults_injected;
        self.probes_abandoned += other.probes_abandoned;
        self.budget_exhausted += other.budget_exhausted;
        self.workers += other.workers;
        self.steals += other.steals;
        self.inference_suppressed_probes += other.inference_suppressed_probes;
        self.phase1_nodes_touched += other.phase1_nodes_touched;
        self.workspace_reuses += other.workspace_reuses;
        self.selection_cache_hits += other.selection_cache_hits;
        self.subtree_cache_hits += other.subtree_cache_hits;
        self.subtree_cache_dead_shortcuts += other.subtree_cache_dead_shortcuts;
        self.verdict_cache_hits += other.verdict_cache_hits;
        self.cache_bytes += other.cache_bytes;
        self.delta_postings_merged += other.delta_postings_merged;
        self.batched_waves += other.batched_waves;
        self.coalesced_probes += other.coalesced_probes;
        self.epoch = self.epoch.max(other.epoch);
        self.entries_invalidated = self.entries_invalidated.max(other.entries_invalidated);
        self.compactions = self.compactions.max(other.compactions);
    }

    /// Probe time as a [`Duration`].
    pub fn probe_time(&self) -> Duration {
        Duration::from_nanos(self.probe_time_ns)
    }

    /// Total nodes classified without execution (R1 + R2 inferences).
    pub fn inferences(&self) -> u64 {
        self.r1_inferences + self.r2_inferences
    }
}

/// Wall-clock breakdown of one debug call across the paper's phases.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase 1 lookup: keyword → schema-term mapping (§3.3).
    pub mapping: Duration,
    /// Phases 1–2: lattice pruning and MTN identification (Figure 10).
    pub pruning: Duration,
    /// Phase 3: traversal, including SQL (Figures 11–12).
    pub traversal: Duration,
    /// SQL execution alone (subset of `traversal`).
    pub sql: Duration,
    /// Report assembly: SQL rendering and sample fetching.
    pub reporting: Duration,
    /// End-to-end elapsed time.
    pub total: Duration,
}

impl PhaseTiming {
    /// Adds another breakdown into this one, phase by phase.
    pub fn accumulate(&mut self, other: &PhaseTiming) {
        self.mapping += other.mapping;
        self.pruning += other.pruning;
        self.traversal += other.traversal;
        self.sql += other.sql;
        self.reporting += other.reporting;
        self.total += other.total;
    }
}

/// One serializable experiment record: identification, probe counters,
/// per-phase timings, and the Phase-0/1/2 statistics that already existed
/// ([`LevelStats`], [`PruneStats`]) folded into a single object.
///
/// [`MetricsSnapshot::to_json`] renders it as one JSON object with a stable
/// key order, suitable for newline-delimited `BENCH_*.json` files.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Emitting experiment (e.g. `exp_traversal`).
    pub experiment: String,
    /// Workload query id or raw keyword text.
    pub query: String,
    /// Traversal strategy short name (`BU`, `SBH`, ...), if one applies.
    pub strategy: String,
    /// Free-form run variant label (e.g. `fault_pm=50` for chaos sweeps);
    /// empty when the record has no sub-variant.
    pub variant: String,
    /// Dataset scale label (`tiny`..`paper`).
    pub scale: String,
    /// Lattice levels (`maxJoins + 1`).
    pub max_level: u64,
    /// Interpretations explored for the query.
    pub interpretations: u64,
    /// Resident bytes of the shared offline lattice arena (see
    /// [`crate::lattice::Lattice::memory_footprint`]); 0 when the record does
    /// not cover a lattice-backed run.
    pub lattice_bytes: u64,
    /// Probe and inference counters (summed over interpretations).
    pub probes: ProbeCounters,
    /// Per-phase wall-clock breakdown.
    pub phases: PhaseTiming,
    /// Phase-1/2 statistics, when the record covers a query run.
    pub prune: Option<PruneStats>,
    /// Phase-0 per-level lattice build statistics, when relevant.
    pub levels: Vec<LevelStats>,
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl MetricsSnapshot {
    /// Renders the record as one JSON object with stable key order.
    ///
    /// Durations are emitted as integer nanoseconds (`*_ns`), so records are
    /// byte-stable for identical inputs and need no float parsing.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut j = String::with_capacity(512);
        let _ = write!(
            j,
            "{{\"experiment\":\"{}\",\"query\":\"{}\",\"strategy\":\"{}\",\
             \"variant\":\"{}\",\"scale\":\"{}\",\"max_level\":{},\"interpretations\":{},\
             \"lattice_bytes\":{}",
            esc(&self.experiment),
            esc(&self.query),
            esc(&self.strategy),
            esc(&self.variant),
            esc(&self.scale),
            self.max_level,
            self.interpretations,
            self.lattice_bytes,
        );
        // Counter keys in sorted order, so diffs stay clean as counters grow.
        let p = &self.probes;
        let _ = write!(
            j,
            ",\"probes\":{{\"batched_waves\":{},\"budget_exhausted\":{},\"cache_bytes\":{},\
             \"coalesced_probes\":{},\"compactions\":{},\
             \"delta_postings_merged\":{},\"entries_invalidated\":{},\"epoch\":{},\
             \"executed\":{},\
             \"faults_injected\":{},\
             \"inference_suppressed_probes\":{},\"memo_hits\":{},\"phase1_nodes_touched\":{},\
             \"probes_abandoned\":{},\
             \"r1_inferences\":{},\"r2_inferences\":{},\"retries\":{},\"reuse_hits\":{},\
             \"selection_cache_hits\":{},\
             \"steals\":{},\"subtree_cache_dead_shortcuts\":{},\"subtree_cache_hits\":{},\
             \"time_ns\":{},\"tuples_scanned\":{},\"verdict_cache_hits\":{},\"workers\":{},\
             \"workspace_reuses\":{}}}",
            p.batched_waves,
            p.budget_exhausted,
            p.cache_bytes,
            p.coalesced_probes,
            p.compactions,
            p.delta_postings_merged,
            p.entries_invalidated,
            p.epoch,
            p.probes_executed,
            p.faults_injected,
            p.inference_suppressed_probes,
            p.memo_hits,
            p.phase1_nodes_touched,
            p.probes_abandoned,
            p.r1_inferences,
            p.r2_inferences,
            p.retries,
            p.reuse_hits,
            p.selection_cache_hits,
            p.steals,
            p.subtree_cache_dead_shortcuts,
            p.subtree_cache_hits,
            p.probe_time_ns,
            p.tuples_scanned,
            p.verdict_cache_hits,
            p.workers,
            p.workspace_reuses,
        );
        let t = &self.phases;
        let _ = write!(
            j,
            ",\"phases\":{{\"mapping_ns\":{},\"pruning_ns\":{},\"traversal_ns\":{},\
             \"sql_ns\":{},\"reporting_ns\":{},\"total_ns\":{}}}",
            t.mapping.as_nanos(),
            t.pruning.as_nanos(),
            t.traversal.as_nanos(),
            t.sql.as_nanos(),
            t.reporting.as_nanos(),
            t.total.as_nanos(),
        );
        match &self.prune {
            None => j.push_str(",\"prune\":null"),
            Some(s) => {
                let _ = write!(
                    j,
                    ",\"prune\":{{\"lattice_nodes\":{},\"retained_phase1\":{},\
                     \"total_nodes\":{},\"mtn_count\":{},\"pruned_nodes\":{},\
                     \"mtn_descendants_total\":{},\"mtn_descendants_unique\":{}}}",
                    s.lattice_nodes,
                    s.retained_phase1,
                    s.total_nodes,
                    s.mtn_count,
                    s.pruned_nodes,
                    s.mtn_descendants_total,
                    s.mtn_descendants_unique,
                );
            }
        }
        j.push_str(",\"levels\":[");
        for (i, l) in self.levels.iter().enumerate() {
            if i > 0 {
                j.push(',');
            }
            let _ = write!(
                j,
                "{{\"level\":{},\"generated\":{},\"duplicates\":{},\"kept\":{},\"elapsed_ns\":{}}}",
                i + 1,
                l.generated,
                l.duplicates,
                l.kept,
                l.elapsed.as_nanos(),
            );
        }
        j.push_str("]}");
        j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_count() {
        let c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        c.reset();
        assert_eq!(c.get(), 0);

        let t = TimeCounter::new();
        t.add(Duration::from_micros(3));
        t.add(Duration::from_micros(2));
        assert_eq!(t.get(), Duration::from_micros(5));
        t.reset();
        assert_eq!(t.nanos(), 0);
    }

    #[test]
    fn snapshot_delta_and_accumulate() {
        let m = Metrics::new();
        m.probes_executed.add(3);
        m.r2_inferences.add(2);
        m.epoch.set(5);
        m.compactions.set(1);
        let before = m.snapshot();
        m.probes_executed.add(4);
        m.probe_time.add(Duration::from_nanos(70));
        m.reuse_hits.incr();
        let window = m.snapshot().delta(before);
        assert_eq!(window.probes_executed, 4);
        assert_eq!(window.probe_time_ns, 70);
        assert_eq!(window.r2_inferences, 0);
        assert_eq!(window.reuse_hits, 1);
        assert_eq!(window.inferences(), 0);
        assert_eq!(window.epoch, 5, "gauges pass through a delta window");
        assert_eq!(window.compactions, 1);

        let mut sum = ProbeCounters::default();
        sum.accumulate(window);
        sum.accumulate(window);
        assert_eq!(sum.probes_executed, 8);
        assert_eq!(sum.probe_time(), Duration::from_nanos(140));
        assert_eq!(sum.epoch, 5, "gauges accumulate by max, not sum");
    }

    #[test]
    fn metrics_reset_zeroes_everything() {
        let m = Metrics::new();
        m.probes_executed.incr();
        m.memo_hits.incr();
        m.r1_inferences.incr();
        m.reset();
        assert_eq!(m.snapshot(), ProbeCounters::default());
    }

    #[test]
    fn phase_timing_accumulates() {
        let mut a = PhaseTiming { mapping: Duration::from_nanos(5), ..PhaseTiming::default() };
        let b = PhaseTiming {
            mapping: Duration::from_nanos(7),
            sql: Duration::from_nanos(11),
            ..PhaseTiming::default()
        };
        a.accumulate(&b);
        assert_eq!(a.mapping, Duration::from_nanos(12));
        assert_eq!(a.sql, Duration::from_nanos(11));
        assert_eq!(a.pruning, Duration::ZERO);
    }

    #[test]
    fn json_is_stable_and_complete() {
        let snap = MetricsSnapshot {
            experiment: "exp_traversal".into(),
            query: "Q3".into(),
            strategy: "BUWR".into(),
            variant: "fault_pm=50".into(),
            scale: "small".into(),
            max_level: 5,
            interpretations: 1,
            lattice_bytes: 4096,
            probes: ProbeCounters {
                probes_executed: 12,
                probe_time_ns: 345,
                tuples_scanned: 678,
                memo_hits: 0,
                r1_inferences: 4,
                r2_inferences: 9,
                reuse_hits: 3,
                retries: 2,
                faults_injected: 5,
                probes_abandoned: 1,
                budget_exhausted: 1,
                workers: 4,
                steals: 7,
                inference_suppressed_probes: 2,
                phase1_nodes_touched: 42,
                workspace_reuses: 1,
                selection_cache_hits: 13,
                subtree_cache_hits: 6,
                subtree_cache_dead_shortcuts: 2,
                verdict_cache_hits: 8,
                cache_bytes: 512,
                delta_postings_merged: 3,
                batched_waves: 3,
                coalesced_probes: 4,
                epoch: 11,
                entries_invalidated: 7,
                compactions: 2,
            },
            phases: PhaseTiming {
                mapping: Duration::from_nanos(1),
                pruning: Duration::from_nanos(2),
                traversal: Duration::from_nanos(3),
                sql: Duration::from_nanos(4),
                reporting: Duration::from_nanos(5),
                total: Duration::from_nanos(6),
            },
            prune: Some(PruneStats {
                lattice_nodes: 100,
                retained_phase1: 20,
                total_nodes: 5,
                mtn_count: 2,
                pruned_nodes: 15,
                mtn_descendants_total: 8,
                mtn_descendants_unique: 6,
            }),
            levels: vec![LevelStats {
                generated: 10,
                duplicates: 4,
                kept: 6,
                elapsed: Duration::from_nanos(9),
            }],
        };
        let json = snap.to_json();
        assert_eq!(
            json,
            "{\"experiment\":\"exp_traversal\",\"query\":\"Q3\",\"strategy\":\"BUWR\",\
             \"variant\":\"fault_pm=50\",\
             \"scale\":\"small\",\"max_level\":5,\"interpretations\":1,\
             \"lattice_bytes\":4096,\
             \"probes\":{\"batched_waves\":3,\"budget_exhausted\":1,\"cache_bytes\":512,\
             \"coalesced_probes\":4,\"compactions\":2,\
             \"delta_postings_merged\":3,\"entries_invalidated\":7,\"epoch\":11,\
             \"executed\":12,\
             \"faults_injected\":5,\
             \"inference_suppressed_probes\":2,\"memo_hits\":0,\"phase1_nodes_touched\":42,\
             \"probes_abandoned\":1,\
             \"r1_inferences\":4,\"r2_inferences\":9,\"retries\":2,\"reuse_hits\":3,\
             \"selection_cache_hits\":13,\
             \"steals\":7,\"subtree_cache_dead_shortcuts\":2,\"subtree_cache_hits\":6,\
             \"time_ns\":345,\"tuples_scanned\":678,\"verdict_cache_hits\":8,\"workers\":4,\
             \"workspace_reuses\":1},\
             \"phases\":{\"mapping_ns\":1,\"pruning_ns\":2,\"traversal_ns\":3,\
             \"sql_ns\":4,\"reporting_ns\":5,\"total_ns\":6},\
             \"prune\":{\"lattice_nodes\":100,\"retained_phase1\":20,\"total_nodes\":5,\
             \"mtn_count\":2,\"pruned_nodes\":15,\"mtn_descendants_total\":8,\
             \"mtn_descendants_unique\":6},\
             \"levels\":[{\"level\":1,\"generated\":10,\"duplicates\":4,\"kept\":6,\
             \"elapsed_ns\":9}]}"
        );
        // The default record still renders a full object.
        let empty = MetricsSnapshot::default().to_json();
        assert!(empty.contains("\"prune\":null"));
        assert!(empty.ends_with("\"levels\":[]}"));
    }

    #[test]
    fn json_escapes_strings() {
        let snap = MetricsSnapshot {
            query: "say \"hi\"\\\n".into(),
            ..MetricsSnapshot::default()
        };
        assert!(snap.to_json().contains("say \\\"hi\\\"\\\\\\n"));
    }
}
