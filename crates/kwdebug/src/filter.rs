//! Post-processing filters over reported MPANs (paper §1, future work).
//!
//! The paper notes that the number of maximal alive sub-queries can be large
//! and suggests letting the developer "define various filters or a priority
//! hierarchy on the returned sub-queries" as follow-on work, while the core
//! system stays complete. This module provides that layer: composable
//! [`MpanFilter`]s applied to a [`DebugReport`] *after* the complete set has
//! been computed — filtering never changes what was explored, only what is
//! shown.

use relengine::Database;

use crate::report::{DebugReport, QueryInfo};

/// A predicate/priority over reported MPANs.
pub trait MpanFilter {
    /// Whether to keep this sub-query in the displayed report.
    fn keep(&self, mpan: &QueryInfo) -> bool;

    /// Sort key; lower sorts first. Default: stable (constant key).
    fn priority(&self, _mpan: &QueryInfo) -> i64 {
        0
    }
}

/// Keeps MPANs of at least the given level — deeper sub-queries carry more
/// of the original query's structure.
#[derive(Debug, Clone, Copy)]
pub struct MinLevel(pub u32);

impl MpanFilter for MinLevel {
    fn keep(&self, mpan: &QueryInfo) -> bool {
        mpan.level >= self.0
    }
}

/// Prefers (and optionally restricts to) MPANs that mention given tables —
/// e.g. an SEO person may only care about explanations involving the
/// synonym-bearing `color` table.
#[derive(Debug, Clone)]
pub struct TablePriority {
    /// Table names in decreasing priority.
    pub tables: Vec<String>,
    /// When true, MPANs mentioning none of the tables are dropped.
    pub exclusive: bool,
}

impl TablePriority {
    /// Builds a priority over the given table names (validated to exist so
    /// typos surface early).
    pub fn new(db: &Database, tables: &[&str], exclusive: bool) -> Option<Self> {
        if tables.iter().any(|t| db.table_id(t).is_none()) {
            return None;
        }
        Some(TablePriority {
            tables: tables.iter().map(|s| (*s).to_owned()).collect(),
            exclusive,
        })
    }

    fn best_rank(&self, mpan: &QueryInfo) -> Option<usize> {
        // The rendered SQL names every table as `FROM name AS alias`; a
        // simple containment check is exact enough for prioritization.
        self.tables.iter().position(|t| mpan.sql.contains(&format!("{t} AS")))
    }
}

impl MpanFilter for TablePriority {
    fn keep(&self, mpan: &QueryInfo) -> bool {
        !self.exclusive || self.best_rank(mpan).is_some()
    }

    fn priority(&self, mpan: &QueryInfo) -> i64 {
        self.best_rank(mpan).map_or(i64::MAX, |r| r as i64)
    }
}

/// Applies filters to a report in place: per non-answer, drop MPANs rejected
/// by any filter, sort the rest by `(summed priority, -level)`, and truncate
/// to `top_k` per non-answer if given.
///
/// Returns the number of MPANs removed across the report.
pub fn apply(
    report: &mut DebugReport,
    filters: &[&dyn MpanFilter],
    top_k: Option<usize>,
) -> usize {
    let top_k = top_k.unwrap_or(usize::MAX);
    let mut removed = 0;
    for interp in &mut report.interpretations {
        for na in &mut interp.non_answers {
            let before = na.mpans.len();
            na.mpans.retain(|m| filters.iter().all(|f| f.keep(m)));
            na.mpans.sort_by_key(|m| {
                let p: i64 = filters.iter().map(|f| f.priority(m)).sum();
                (p, std::cmp::Reverse(m.level))
            });
            na.mpans.truncate(top_k);
            removed += before - na.mpans.len();
        }
    }
    removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prune::PruneStats;
    use crate::report::{InterpretationOutcome, NonAnswerInfo};
    use std::time::Duration;

    fn q(sql: &str, level: u32) -> QueryInfo {
        QueryInfo { sql: sql.to_owned(), level, sample_tuples: vec![] }
    }

    fn report() -> DebugReport {
        DebugReport {
            keywords: vec!["a".into(), "b".into()],
            unknown_keywords: vec![],
            interpretations: vec![InterpretationOutcome {
                keyword_tables: vec![],
                answers: vec![],
                non_answers: vec![NonAnswerInfo {
                    query: q("DEAD", 3),
                    mpans: vec![
                        q("SELECT * FROM color AS color1 WHERE x", 1),
                        q("SELECT * FROM ptype AS ptype1, item AS item0 WHERE y", 2),
                        q("SELECT * FROM item AS item0 WHERE z", 1),
                    ],
                    possible_mpans: vec![],
                }],
                unknown: vec![],
                budget_exhausted: None,
                prune_stats: PruneStats::default(),
                sql_queries: 0,
                sql_time: Duration::ZERO,
                probes: crate::metrics::ProbeCounters::default(),
                timing: crate::metrics::PhaseTiming::default(),
            }],
            mapping_time: Duration::ZERO,
            total_time: Duration::ZERO,
            timing: crate::metrics::PhaseTiming::default(),
        }
    }

    #[test]
    fn min_level_drops_shallow_mpans() {
        let mut r = report();
        let removed = apply(&mut r, &[&MinLevel(2)], None);
        assert_eq!(removed, 2);
        let mpans = &r.interpretations[0].non_answers[0].mpans;
        assert_eq!(mpans.len(), 1);
        assert_eq!(mpans[0].level, 2);
    }

    #[test]
    fn table_priority_orders_and_restricts() {
        let db = crate::filter::tests::toy_db();
        let prio = TablePriority::new(&db, &["color"], false).expect("tables exist");
        let mut r = report();
        apply(&mut r, &[&prio], None);
        let mpans = &r.interpretations[0].non_answers[0].mpans;
        assert_eq!(mpans.len(), 3, "non-exclusive keeps everything");
        assert!(mpans[0].sql.contains("color AS"), "color-mentioning MPAN first");

        let exclusive = TablePriority::new(&db, &["color"], true).expect("tables exist");
        let mut r = report();
        let removed = apply(&mut r, &[&exclusive], None);
        assert_eq!(removed, 2);
        assert_eq!(r.interpretations[0].non_answers[0].mpans.len(), 1);
    }

    #[test]
    fn unknown_table_rejected() {
        let db = toy_db();
        assert!(TablePriority::new(&db, &["ghost"], false).is_none());
    }

    #[test]
    fn filters_compose() {
        let db = toy_db();
        let prio = TablePriority::new(&db, &["item"], false).expect("tables exist");
        let mut r = report();
        let removed = apply(&mut r, &[&prio, &MinLevel(1)], Some(2));
        assert_eq!(removed, 1, "top-k truncation removed the lowest-priority MPAN");
        let mpans = &r.interpretations[0].non_answers[0].mpans;
        assert_eq!(mpans.len(), 2);
        // item-mentioning MPANs first; among them, higher level first.
        assert!(mpans[0].sql.contains("item AS"));
        assert_eq!(mpans[0].level, 2);
    }

    pub(super) fn toy_db() -> relengine::Database {
        let mut b = relengine::DatabaseBuilder::new();
        b.table("color").column("id", relengine::DataType::Int);
        b.table("ptype").column("id", relengine::DataType::Int);
        b.table("item").column("id", relengine::DataType::Int);
        b.finish().expect("static schema")
    }
}
