//! The comparison alternatives of §3.8.
//!
//! * **Return Nothing** ([`rn`]): the standard KWS-S behaviour — non-answers
//!   produce an empty page, and a developer debugging "why not" re-submits
//!   every keyword-subset query by hand; the system executes the candidate
//!   networks of each. Incomplete (only minimal networks whose leaves are all
//!   keyword-bound are ever explored) and redundant (answers of alive MTNs
//!   are recomputed).
//! * **Return Everything** ([`re`]): no lattice — classify every MTN by
//!   executing it, then execute *every* descendant of every dead MTN to find
//!   its alive sub-queries, with no R1/R2 inference and no sharing across
//!   MTNs. Complete but maximally redundant.
//!
//! Both report the same query-count/time metrics as
//! [`crate::traversal::TraversalOutcome`], so Figures 14 and 15 compare all
//! three approaches directly.

pub mod re;
pub mod rn;

pub use re::{run_return_everything, ReOutcome};
pub use rn::{run_return_nothing, RnOutcome};
