//! Return Nothing (RN): manual subset re-submission.
//!
//! With a standard KWS-S system a non-answer yields a blank page. A developer
//! who wants to know *why* re-submits modified queries by removing keywords:
//! for "k1 k2 k3" the queries "k1 k2", "k1 k3", "k2 k3", "k1", "k2" and "k3".
//! Each submission runs the ordinary pipeline — candidate networks (MTNs) are
//! generated for that subset and **all** of them are executed. The total SQL
//! work across all submissions is the cost of this approach; completeness is
//! lost (sub-queries with free leaves are never candidate networks, so some
//! MPANs are unreachable).

use std::time::Duration;

use relengine::Database;
use textindex::InvertedIndex;

use crate::binding::{map_keywords, KeywordQuery};
use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;

/// Result of the RN baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RnOutcome {
    /// Keyword-subset queries submitted (the original plus all proper
    /// non-empty subsets).
    pub submissions: u32,
    /// Candidate networks executed across all submissions.
    pub sql_queries: u64,
    /// Wall-clock SQL time across all submissions.
    pub sql_time: Duration,
    /// Submissions that produced at least one alive candidate network.
    pub submissions_with_answers: u32,
}

/// Runs RN for `query`: submits every non-empty keyword subset (the original
/// query first) and executes all candidate networks of each submission under
/// every interpretation.
pub fn run_return_nothing(
    db: &Database,
    index: &InvertedIndex,
    lattice: &Lattice,
    query: &KeywordQuery,
) -> Result<RnOutcome, KwError> {
    let n = query.len();
    debug_assert!(n <= 31, "subset enumeration uses a u32 mask");
    let full_mask = (1u32 << n) - 1;
    // Original query first, then subsets in decreasing keyword count — the
    // order a developer would plausibly try.
    let mut masks: Vec<u32> = (1..=full_mask).collect();
    masks.sort_unstable_by_key(|m| std::cmp::Reverse(m.count_ones()));

    let mut out = RnOutcome {
        submissions: 0,
        sql_queries: 0,
        sql_time: Duration::ZERO,
        submissions_with_answers: 0,
    };
    for mask in masks {
        let Some(sub) = query.subset(mask) else { continue };
        out.submissions += 1;
        let mapping = map_keywords(&sub, index);
        let mut any_alive = false;
        for interp in &mapping.interpretations {
            let pruned = PrunedLattice::build(lattice, interp);
            let mut oracle =
                AlivenessOracle::new(db, Some(index), interp, &mapping.keywords, false);
            for &m in pruned.mtns() {
                let alive =
                    oracle.is_alive(pruned.lattice_id(m), pruned.jnts(lattice, m))?;
                any_alive |= alive;
            }
            out.sql_queries += oracle.stats().queries;
            out.sql_time += oracle.stats().total_time;
        }
        if any_alive {
            out.submissions_with_answers += 1;
        }
    }
    Ok(out)
}
