//! Return Everything (RE): exhaustive runtime exploration without a lattice.

use std::time::Duration;

use crate::error::KwError;
use crate::lattice::Lattice;
use crate::oracle::AlivenessOracle;
use crate::prune::PrunedLattice;
use crate::traversal::{Status, TraversalOutcome};

/// Result of the RE baseline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReOutcome {
    /// The classification and MPANs (identical to any lattice traversal).
    pub outcome: TraversalOutcome,
}

/// Runs RE: execute every MTN, then every descendant of every dead MTN.
///
/// Without the lattice there is no sharing: a sub-query common to two dead
/// MTNs is executed once per MTN, and nothing is ever inferred. The resulting
/// classification is still exact, so the outcome's MPANs equal those of the
/// lattice traversals; only `sql_queries`/`sql_time` differ.
pub fn run_return_everything(
    lattice: &Lattice,
    pruned: &PrunedLattice,
    oracle: &mut AlivenessOracle<'_>,
) -> Result<ReOutcome, KwError> {
    let q0 = oracle.stats().queries;
    let t0 = oracle.stats().total_time;
    let m0 = oracle.metrics().snapshot();

    let mut status = vec![Status::Unknown; pruned.len()];
    let exec = |oracle: &mut AlivenessOracle<'_>, n: usize, status: &mut Vec<Status>| -> Result<bool, KwError> {
        // RE has no lattice, so it re-executes even already-seen nodes; the
        // recorded status is only for assembling the final report.
        let alive = oracle.is_alive(pruned.lattice_id(n), pruned.jnts(lattice, n))?;
        status[n] = if alive { Status::Alive } else { Status::Dead };
        Ok(alive)
    };

    let mut alive_mtns = Vec::new();
    let mut dead_mtns = Vec::new();
    for &m in pruned.mtns() {
        if exec(oracle, m, &mut status)? {
            alive_mtns.push(m);
        } else {
            dead_mtns.push(m);
        }
    }
    let mut mpans = Vec::new();
    for &m in &dead_mtns {
        for &d in pruned.desc_plus(m) {
            if d != m {
                exec(oracle, d, &mut status)?;
            }
        }
        mpans.push(crate::traversal::extract_mpans(pruned, &status, m));
    }

    Ok(ReOutcome {
        outcome: TraversalOutcome {
            alive_mtns,
            dead_mtns,
            possible_mpans: vec![Vec::new(); mpans.len()],
            mpans,
            unknown_mtns: Vec::new(),
            exhausted: None,
            sql_queries: oracle.stats().queries - q0,
            sql_time: oracle.stats().total_time.saturating_sub(t0).max(Duration::ZERO),
            probes: oracle.metrics().snapshot().delta(m0),
        },
    })
}
