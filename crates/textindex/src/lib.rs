//! # textindex — inverted keyword index substrate
//!
//! The paper builds Lucene inverted indexes over the data so that Phase 1 can
//! map each keyword of the user query to the relations that contain it, and so
//! that per-relation keyword predicates can be seeded with candidate tuples
//! instead of scanning. This crate is the self-contained stand-in: a simple
//! tokenizer plus an inverted index from terms to `(table, row)` postings,
//! built directly over a [`relengine::Database`].
//!
//! ```
//! use relengine::{DatabaseBuilder, DataType, Value};
//! use textindex::InvertedIndex;
//!
//! let mut b = DatabaseBuilder::new();
//! b.table("color").column("id", DataType::Int).column("name", DataType::Text);
//! let mut db = b.finish().unwrap();
//! db.insert_values("color", vec![Value::Int(1), Value::text("Saffron Orange")]).unwrap();
//! let idx = InvertedIndex::build(&db);
//! assert_eq!(idx.tables_containing("saffron"), vec![0]);
//! assert!(idx.tables_containing("teal").is_empty());
//! ```

mod index;
mod tokenizer;

pub use index::InvertedIndex;
pub use tokenizer::tokenize;
