//! Tokenization: lowercase terms split on non-alphanumeric characters.
//!
//! This matches the behaviour a `StandardAnalyzer`-configured Lucene index
//! gives the paper's system: case-insensitive whole-term matching, digits
//! kept (queries like "histograms" and data like "3.4 oz" both tokenize
//! predictably). No stemming and no stop words — debugging must see the data
//! exactly as stored.

/// Splits `text` into lowercase alphanumeric terms.
///
/// ```
/// use textindex::tokenize;
/// assert_eq!(tokenize("Keyword-Search, over 2 DBs!"),
///            vec!["keyword", "search", "over", "2", "dbs"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lc in ch.to_lowercase() {
                current.push(lc);
            }
        } else if !current.is_empty() {
            terms.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        terms.push(current);
    }
    terms
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_split_and_lowercase() {
        assert_eq!(tokenize("Widom Trio"), vec!["widom", "trio"]);
        assert_eq!(tokenize("  multiple   spaces "), vec!["multiple", "spaces"]);
    }

    #[test]
    fn punctuation_is_a_separator() {
        assert_eq!(tokenize("burn time 50 hrs. 6.4 oz. 2pck."),
                   vec!["burn", "time", "50", "hrs", "6", "4", "oz", "2pck"]);
    }

    #[test]
    fn empty_and_symbol_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("!@# --").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(tokenize("Ärger Straße"), vec!["ärger", "straße"]);
    }

    #[test]
    fn digits_kept() {
        assert_eq!(tokenize("VLDB 2002"), vec!["vldb", "2002"]);
    }
}
