//! The inverted index proper: base postings plus per-epoch delta postings.
//!
//! The base postings are built offline ([`InvertedIndex::build`]), like the
//! paper's Lucene indexes. Once the database goes mutable, the index keeps
//! up **incrementally**: [`InvertedIndex::apply_deltas`] folds the
//! database's epoch delta log into small per-term *delta postings* (pending
//! adds and removes), reads merge base + delta on the fly
//! (`Cow::Owned` only for dirtied terms), and a threshold-triggered
//! [`InvertedIndex::compact`] rewrites just the touched terms into the base
//! — a LeIndex-style partial rebuild instead of a full reindex.

use std::borrow::Cow;
use std::collections::HashMap;

use relengine::{Database, DeltaKind, Row, RowId, TableId};

use crate::tokenizer::tokenize;

/// Pending delta rows (term × row pairs) that trigger a compaction.
const DEFAULT_COMPACT_THRESHOLD: usize = 4096;

/// Inverted index over all text attributes of a database.
///
/// For each term it records, per table, the sorted distinct row ids whose
/// text attributes contain the term. Query-time lookups are hash probes;
/// terms with pending deltas pay one merge on read.
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// term → (sorted by table id) list of per-table posting lists.
    postings: HashMap<String, Vec<(TableId, Vec<RowId>)>>,
    /// term → table → sorted row ids added since the last compaction.
    delta_adds: HashMap<String, HashMap<TableId, Vec<RowId>>>,
    /// term → table → sorted row ids removed since the last compaction.
    delta_removes: HashMap<String, HashMap<TableId, Vec<RowId>>>,
    /// Pending (term, row) pairs across both delta maps.
    pending: usize,
    /// Compaction trigger: `pending >= compact_threshold` after an
    /// [`InvertedIndex::apply_deltas`] call compacts.
    compact_threshold: usize,
    /// The database epoch this index has fully absorbed.
    applied_epoch: u64,
    /// Lifetime number of compactions performed.
    compactions: u64,
    /// Number of indexed (table, row) pairs, for reporting.
    indexed_rows: usize,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        InvertedIndex {
            postings: HashMap::new(),
            delta_adds: HashMap::new(),
            delta_removes: HashMap::new(),
            pending: 0,
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
            applied_epoch: 0,
            compactions: 0,
            indexed_rows: 0,
        }
    }
}

/// The distinct normalized terms of one row's text columns.
fn row_terms(row: &Row, text_cols: &[usize]) -> Vec<String> {
    let mut terms: Vec<String> = Vec::new();
    for &c in text_cols {
        if let Some(s) = row[c].as_text() {
            terms.extend(tokenize(s));
        }
    }
    terms.sort_unstable();
    terms.dedup();
    terms
}

/// Removes `(term, table, rid)` from a delta map if present, pruning empty
/// levels. Returns whether a pending pair was cancelled.
fn cancel(
    map: &mut HashMap<String, HashMap<TableId, Vec<RowId>>>,
    term: &str,
    table: TableId,
    rid: RowId,
) -> bool {
    let Some(by_table) = map.get_mut(term) else { return false };
    let Some(list) = by_table.get_mut(&table) else { return false };
    let Ok(pos) = list.binary_search(&rid) else { return false };
    list.remove(pos);
    if list.is_empty() {
        by_table.remove(&table);
    }
    if by_table.is_empty() {
        map.remove(term);
    }
    true
}

impl InvertedIndex {
    /// Builds the index over every text column of every table in `db`,
    /// synchronized to the database's current epoch. Tombstoned rows are
    /// excluded (the table iterator skips them).
    pub fn build(db: &Database) -> Self {
        // term → table → rows (dedup within a row across columns).
        let mut map: HashMap<String, HashMap<TableId, Vec<RowId>>> = HashMap::new();
        let mut indexed_rows = 0usize;
        for (tid, table) in db.tables() {
            let text_cols = table.schema().text_columns();
            if text_cols.is_empty() {
                continue;
            }
            for (rid, row) in table.iter() {
                indexed_rows += 1;
                for term in row_terms(row, &text_cols) {
                    map.entry(term).or_default().entry(tid).or_default().push(rid);
                }
            }
        }
        let postings = map
            .into_iter()
            .map(|(term, by_table)| {
                let mut lists: Vec<(TableId, Vec<RowId>)> = by_table.into_iter().collect();
                lists.sort_unstable_by_key(|(t, _)| *t);
                // Rows were visited in ascending rid order, so lists are sorted.
                (term, lists)
            })
            .collect();
        InvertedIndex {
            postings,
            indexed_rows,
            applied_epoch: db.epoch(),
            ..InvertedIndex::default()
        }
    }

    /// Absorbs every database delta recorded after this index's
    /// [`InvertedIndex::applied_epoch`] into the delta postings, then
    /// compacts if the pending volume crossed the threshold. Idempotent when
    /// already current. `db` must be the same database (same lineage) the
    /// index was built from.
    pub fn apply_deltas(&mut self, db: &Database) {
        for d in db.deltas_since(self.applied_epoch) {
            let table = db.table(d.table);
            let text_cols = table.schema().text_columns();
            if text_cols.is_empty() {
                continue;
            }
            match d.kind {
                DeltaKind::Append => {
                    for &rid in &d.rows {
                        self.indexed_rows += 1;
                        for term in row_terms(table.row(rid), &text_cols) {
                            self.record_add(term, d.table, rid);
                        }
                    }
                }
                DeltaKind::Update => {
                    for (rid, old) in &d.old {
                        let old_terms = row_terms(old, &text_cols);
                        let new_terms = row_terms(table.row(*rid), &text_cols);
                        for t in &old_terms {
                            if new_terms.binary_search(t).is_err() {
                                self.record_remove(t.clone(), d.table, *rid);
                            }
                        }
                        for t in new_terms {
                            if old_terms.binary_search(&t).is_err() {
                                self.record_add(t, d.table, *rid);
                            }
                        }
                    }
                }
                DeltaKind::Delete => {
                    for (rid, old) in &d.old {
                        self.indexed_rows -= 1;
                        for term in row_terms(old, &text_cols) {
                            self.record_remove(term, d.table, *rid);
                        }
                    }
                }
            }
        }
        self.applied_epoch = db.epoch();
        if self.pending >= self.compact_threshold {
            self.compact();
        }
    }

    fn record_add(&mut self, term: String, table: TableId, rid: RowId) {
        if cancel(&mut self.delta_removes, &term, table, rid) {
            self.pending -= 1;
            return;
        }
        let list = self.delta_adds.entry(term).or_default().entry(table).or_default();
        if let Err(pos) = list.binary_search(&rid) {
            list.insert(pos, rid);
            self.pending += 1;
        }
    }

    fn record_remove(&mut self, term: String, table: TableId, rid: RowId) {
        if cancel(&mut self.delta_adds, &term, table, rid) {
            self.pending -= 1;
            return;
        }
        let list = self.delta_removes.entry(term).or_default().entry(table).or_default();
        if let Err(pos) = list.binary_search(&rid) {
            list.insert(pos, rid);
            self.pending += 1;
        }
    }

    /// Folds all pending delta postings into the base — a partial rebuild
    /// touching only dirtied terms. No-op when nothing is pending.
    pub fn compact(&mut self) {
        if self.delta_adds.is_empty() && self.delta_removes.is_empty() {
            return;
        }
        for (term, by_table) in std::mem::take(&mut self.delta_removes) {
            let Some(lists) = self.postings.get_mut(&term) else { continue };
            for (tid, rids) in by_table {
                if let Ok(i) = lists.binary_search_by_key(&tid, |(t, _)| *t) {
                    lists[i].1.retain(|r| rids.binary_search(r).is_err());
                    if lists[i].1.is_empty() {
                        lists.remove(i);
                    }
                }
            }
            if lists.is_empty() {
                self.postings.remove(&term);
            }
        }
        for (term, by_table) in std::mem::take(&mut self.delta_adds) {
            let lists = self.postings.entry(term).or_default();
            for (tid, rids) in by_table {
                match lists.binary_search_by_key(&tid, |(t, _)| *t) {
                    Ok(i) => {
                        let l = &mut lists[i].1;
                        for r in rids {
                            if let Err(p) = l.binary_search(&r) {
                                l.insert(p, r);
                            }
                        }
                    }
                    Err(i) => lists.insert(i, (tid, rids)),
                }
            }
        }
        self.pending = 0;
        self.compactions += 1;
    }

    /// Sets how many pending delta rows trigger a compaction at the end of
    /// [`InvertedIndex::apply_deltas`].
    pub fn set_compaction_threshold(&mut self, pending_rows: usize) {
        self.compact_threshold = pending_rows.max(1);
    }

    /// The database epoch this index has fully absorbed.
    pub fn applied_epoch(&self) -> u64 {
        self.applied_epoch
    }

    /// Lifetime number of compactions performed.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Pending (term, row) delta pairs not yet compacted into the base.
    pub fn pending_delta_rows(&self) -> usize {
        self.pending
    }

    /// Whether `(term, table)` has pending (uncompacted) delta postings —
    /// i.e. a [`InvertedIndex::rows_containing`] call would merge on read.
    pub fn has_delta(&self, table: TableId, term: &str) -> bool {
        let needle = normalize(term);
        let hit = |m: &HashMap<String, HashMap<TableId, Vec<RowId>>>| {
            m.get(&needle).is_some_and(|by_table| by_table.contains_key(&table))
        };
        hit(&self.delta_adds) || hit(&self.delta_removes)
    }

    /// Base posting list for a normalized term and table (no delta merge).
    fn base_rows(&self, needle: &str, table: TableId) -> &[RowId] {
        self.postings
            .get(needle)
            .and_then(|lists| {
                lists
                    .binary_search_by_key(&table, |(t, _)| *t)
                    .ok()
                    .map(|i| lists[i].1.as_slice())
            })
            .unwrap_or(&[])
    }

    /// Merged (base ∪ adds) \ removes view for a normalized term and table.
    /// Borrowed when the term is clean, owned (one merge) when dirtied.
    fn merged_rows(&self, needle: &str, table: TableId) -> Cow<'_, [RowId]> {
        let base = self.base_rows(needle, table);
        let adds = self
            .delta_adds
            .get(needle)
            .and_then(|m| m.get(&table))
            .map_or(&[][..], Vec::as_slice);
        let removes = self
            .delta_removes
            .get(needle)
            .and_then(|m| m.get(&table))
            .map_or(&[][..], Vec::as_slice);
        if adds.is_empty() && removes.is_empty() {
            return Cow::Borrowed(base);
        }
        let mut merged = Vec::with_capacity(base.len() + adds.len());
        let (mut i, mut j) = (0, 0);
        while i < base.len() || j < adds.len() {
            let next = match (base.get(i), adds.get(j)) {
                (Some(&a), Some(&b)) if a <= b => {
                    if a == b {
                        j += 1;
                    }
                    i += 1;
                    a
                }
                (Some(&a), None) => {
                    i += 1;
                    a
                }
                (_, Some(&b)) => {
                    j += 1;
                    b
                }
                (None, None) => unreachable!("loop condition"),
            };
            if removes.binary_search(&next).is_err() {
                merged.push(next);
            }
        }
        Cow::Owned(merged)
    }

    /// Whether a normalized term has pending deltas in any table.
    fn term_dirty(&self, needle: &str) -> bool {
        self.delta_adds.contains_key(needle) || self.delta_removes.contains_key(needle)
    }

    /// Tables whose text contains the term (whole-token match), ascending.
    pub fn tables_containing(&self, term: &str) -> Vec<TableId> {
        let needle = normalize(term);
        let base = self.postings.get(&needle);
        if !self.term_dirty(&needle) {
            return base.map(|lists| lists.iter().map(|(t, _)| *t).collect()).unwrap_or_default();
        }
        let mut candidates: Vec<TableId> =
            base.map(|lists| lists.iter().map(|(t, _)| *t).collect()).unwrap_or_default();
        if let Some(by_table) = self.delta_adds.get(&needle) {
            candidates.extend(by_table.keys().copied());
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|&t| !self.merged_rows(&needle, t).is_empty());
        candidates
    }

    /// Sorted row ids of `table` containing the term; empty if none.
    /// `Cow::Borrowed` when the term has no pending deltas; `Cow::Owned`
    /// (a merge-on-read) when it does.
    pub fn rows_containing(&self, table: TableId, term: &str) -> Cow<'_, [RowId]> {
        let needle = normalize(term);
        self.merged_rows(&needle, table)
    }

    /// Whether the term occurs anywhere in the database.
    pub fn contains_term(&self, term: &str) -> bool {
        let needle = normalize(term);
        if !self.term_dirty(&needle) {
            return self.postings.contains_key(&needle);
        }
        !self.tables_containing(term).is_empty()
    }

    /// Number of distinct indexed terms. Terms whose every posting was
    /// delta-removed still count until the next compaction.
    pub fn term_count(&self) -> usize {
        self.postings.len()
            + self.delta_adds.keys().filter(|t| !self.postings.contains_key(*t)).count()
    }

    /// Number of live (table, row) pairs the index covers.
    pub fn indexed_rows(&self) -> usize {
        self.indexed_rows
    }

    /// Document frequency of a term in one table.
    pub fn doc_frequency(&self, table: TableId, term: &str) -> usize {
        self.rows_containing(table, term).len()
    }
}

/// Queries arrive as raw user keywords; normalize them through the same
/// tokenizer so "Saffron," and "saffron" meet in the index. A multi-token
/// input keeps only its first token (keywords are single terms in the paper).
fn normalize(term: &str) -> String {
    tokenize(term).into_iter().next().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("person")
            .column("id", DataType::Int)
            .column("name", DataType::Text);
        b.table("pub")
            .column("id", DataType::Int)
            .column("title", DataType::Text)
            .column("abstract", DataType::Text);
        b.table("writes")
            .column("pid", DataType::Int)
            .column("pubid", DataType::Int);
        let mut db = b.finish().unwrap();
        db.insert_values("person", vec![Value::Int(1), Value::text("Jennifer Widom")]).unwrap();
        db.insert_values("person", vec![Value::Int(2), Value::text("David DeWitt")]).unwrap();
        db.insert_values(
            "pub",
            vec![
                Value::Int(1),
                Value::text("Trio: A System for Data Uncertainty"),
                Value::text("we present trio, managing uncertainty and lineage"),
            ],
        )
        .unwrap();
        db.insert_values(
            "pub",
            vec![Value::Int(2), Value::text("Keyword Search in Databases"), Value::Null],
        )
        .unwrap();
        db.insert_values("writes", vec![Value::Int(1), Value::Int(1)]).unwrap();
        db
    }

    #[test]
    fn tables_containing_terms() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.tables_containing("widom"), vec![0]);
        assert_eq!(idx.tables_containing("trio"), vec![1]);
        assert_eq!(idx.tables_containing("keyword"), vec![1]);
        assert!(idx.tables_containing("nonexistent").is_empty());
    }

    #[test]
    fn case_and_punctuation_insensitive_lookup() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.tables_containing("WIDOM"), vec![0]);
        assert_eq!(idx.tables_containing("Trio,"), vec![1]);
    }

    #[test]
    fn rows_containing_and_dedup_across_columns() {
        let idx = InvertedIndex::build(&db());
        // "trio" appears in both title and abstract of pub row 0: one posting.
        assert_eq!(&idx.rows_containing(1, "trio")[..], &[0]);
        assert_eq!(&idx.rows_containing(1, "keyword")[..], &[1]);
        assert_eq!(&idx.rows_containing(0, "trio")[..], &[] as &[RowId]);
        assert_eq!(idx.doc_frequency(1, "trio"), 1);
    }

    #[test]
    fn relationship_tables_not_indexed() {
        let idx = InvertedIndex::build(&db());
        // 2 person + 2 pub rows indexed; writes has no text columns.
        assert_eq!(idx.indexed_rows(), 4);
        assert!(idx.tables_containing("1").is_empty());
    }

    #[test]
    fn contains_term() {
        let idx = InvertedIndex::build(&db());
        assert!(idx.contains_term("uncertainty"));
        assert!(!idx.contains_term("zanzibar"));
        assert!(idx.term_count() > 5);
    }

    #[test]
    fn null_text_skipped() {
        let idx = InvertedIndex::build(&db());
        // pub row 1 has NULL abstract; still indexed via its title.
        assert_eq!(&idx.rows_containing(1, "databases")[..], &[1]);
    }

    #[test]
    fn empty_database() {
        let db = DatabaseBuilder::new().finish().unwrap();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.term_count(), 0);
        assert!(!idx.contains_term("x"));
    }
}

#[cfg(test)]
mod delta_tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("doc").column("id", DataType::Int).column("body", DataType::Text);
        let mut db = b.finish().unwrap();
        db.insert_values("doc", vec![Value::Int(1), Value::text("alpha beta")]).unwrap();
        db.insert_values("doc", vec![Value::Int(2), Value::text("beta gamma")]).unwrap();
        db.finalize();
        db
    }

    /// The invariant every mutation path must keep: merged reads equal a
    /// fresh rebuild of the mutated database.
    fn assert_matches_rebuild(idx: &InvertedIndex, db: &Database) {
        let fresh = InvertedIndex::build(db);
        for term in ["alpha", "beta", "gamma", "delta", "omega"] {
            assert_eq!(
                &idx.rows_containing(0, term)[..],
                &fresh.rows_containing(0, term)[..],
                "term `{term}` diverged from rebuild"
            );
            assert_eq!(
                idx.tables_containing(term),
                fresh.tables_containing(term),
                "tables for `{term}` diverged"
            );
            assert_eq!(idx.contains_term(term), fresh.contains_term(term));
        }
        assert_eq!(idx.indexed_rows(), fresh.indexed_rows());
    }

    #[test]
    fn append_merges_on_read() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        db.append_rows(0, vec![vec![Value::Int(3), Value::text("alpha delta")]]).unwrap();
        idx.apply_deltas(&db);
        assert_eq!(idx.applied_epoch(), 1);
        let rows = idx.rows_containing(0, "alpha");
        assert!(matches!(rows, Cow::Owned(_)), "dirtied term merges on read");
        assert_eq!(&rows[..], &[0, 2]);
        let clean = idx.rows_containing(0, "gamma");
        assert!(matches!(clean, Cow::Borrowed(_)), "clean term stays borrowed");
        assert_matches_rebuild(&idx, &db);
    }

    #[test]
    fn update_moves_terms() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        db.update_row(0, 0, vec![Value::Int(1), Value::text("alpha omega")]).unwrap();
        idx.apply_deltas(&db);
        assert_eq!(&idx.rows_containing(0, "beta")[..], &[1], "old term removed");
        assert_eq!(&idx.rows_containing(0, "omega")[..], &[0], "new term added");
        assert_eq!(&idx.rows_containing(0, "alpha")[..], &[0], "kept term untouched");
        assert_matches_rebuild(&idx, &db);
    }

    #[test]
    fn delete_removes_terms_everywhere() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        db.delete_row(0, 1).unwrap();
        idx.apply_deltas(&db);
        assert_eq!(&idx.rows_containing(0, "beta")[..], &[0]);
        assert!(!idx.contains_term("gamma"), "term fully removed");
        assert!(idx.tables_containing("gamma").is_empty());
        assert_matches_rebuild(&idx, &db);
    }

    #[test]
    fn add_then_delete_cancels_pending() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        let ids = db
            .append_rows(0, vec![vec![Value::Int(3), Value::text("theta")]])
            .unwrap();
        db.delete_row(0, ids[0]).unwrap();
        idx.apply_deltas(&db);
        assert_eq!(idx.pending_delta_rows(), 0, "add+delete cancels out");
        assert!(!idx.contains_term("theta"));
        assert_matches_rebuild(&idx, &db);
    }

    #[test]
    fn threshold_compaction_rewrites_base() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        idx.set_compaction_threshold(4);
        db.append_rows(0, vec![vec![Value::Int(3), Value::text("alpha")]]).unwrap();
        idx.apply_deltas(&db);
        assert_eq!(idx.compactions(), 0, "below threshold: still delta");
        assert!(idx.pending_delta_rows() > 0);
        db.append_rows(
            0,
            vec![
                vec![Value::Int(4), Value::text("beta gamma")],
                vec![Value::Int(5), Value::text("delta epsilon")],
            ],
        )
        .unwrap();
        db.delete_row(0, 0).unwrap();
        idx.apply_deltas(&db);
        assert_eq!(idx.compactions(), 1, "threshold crossed: compacted");
        assert_eq!(idx.pending_delta_rows(), 0);
        let rows = idx.rows_containing(0, "alpha");
        assert!(matches!(rows, Cow::Borrowed(_)), "compaction restores borrowed reads");
        assert_eq!(&rows[..], &[2]);
        assert_matches_rebuild(&idx, &db);
    }

    #[test]
    fn apply_is_incremental_and_idempotent() {
        let mut db = db();
        let mut idx = InvertedIndex::build(&db);
        db.append_rows(0, vec![vec![Value::Int(3), Value::text("zeta")]]).unwrap();
        idx.apply_deltas(&db);
        idx.apply_deltas(&db); // no-op: already at the current epoch
        assert_eq!(&idx.rows_containing(0, "zeta")[..], &[2]);
        assert_eq!(idx.applied_epoch(), db.epoch());
        db.update_row(0, 2, vec![Value::Int(3), Value::text("eta")]).unwrap();
        idx.apply_deltas(&db);
        assert!(!idx.contains_term("zeta"));
        assert_eq!(&idx.rows_containing(0, "eta")[..], &[2]);
        assert_matches_rebuild(&idx, &db);
    }
}

impl InvertedIndex {
    /// Sorted row ids of `table` containing **all** the given terms
    /// (conjunctive tuple-set semantics, DISCOVER's `R^{k1,k2}`). Posting
    /// lists are intersected smallest-first; an unknown term short-circuits
    /// to empty. With no terms, returns `None` (the free tuple set — every
    /// row — is not materialized).
    pub fn rows_containing_all(&self, table: TableId, terms: &[&str]) -> Option<Vec<RowId>> {
        if terms.is_empty() {
            return None;
        }
        let mut lists: Vec<Cow<'_, [RowId]>> =
            terms.iter().map(|t| self.rows_containing(table, t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        let mut result: Vec<RowId> = lists[0].to_vec();
        for list in &lists[1..] {
            if result.is_empty() {
                break;
            }
            result.retain(|rid| list.binary_search(rid).is_ok());
        }
        Some(result)
    }

    /// Tables containing **all** the given terms (in possibly different
    /// rows), ascending. Empty input means every table qualifies vacuously —
    /// returns empty instead to avoid surprises.
    pub fn tables_containing_all(&self, terms: &[&str]) -> Vec<TableId> {
        let mut iter = terms.iter();
        let Some(first) = iter.next() else { return Vec::new() };
        let mut tables = self.tables_containing(first);
        for t in iter {
            let next = self.tables_containing(t);
            tables.retain(|x| next.binary_search(x).is_ok());
        }
        tables
    }
}

#[cfg(test)]
mod multiterm_tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    fn index() -> InvertedIndex {
        let mut b = DatabaseBuilder::new();
        b.table("topic").column("id", DataType::Int).column("name", DataType::Text);
        b.table("pub").column("id", DataType::Int).column("title", DataType::Text);
        let mut db = b.finish().unwrap();
        for (id, name) in [
            (1, "Probabilistic Data"),
            (2, "Stream Data"),
            (3, "Histograms"),
            (4, "Probabilistic Streams"),
        ] {
            db.insert_values("topic", vec![Value::Int(id), Value::text(name)]).unwrap();
        }
        db.insert_values("pub", vec![Value::Int(1), Value::text("Data Sketches")]).unwrap();
        InvertedIndex::build(&db)
    }

    #[test]
    fn conjunctive_rows() {
        let idx = index();
        assert_eq!(
            idx.rows_containing_all(0, &["probabilistic", "data"]).unwrap(),
            vec![0]
        );
        assert_eq!(idx.rows_containing_all(0, &["data"]).unwrap(), vec![0, 1]);
        assert!(idx.rows_containing_all(0, &["data", "histograms"]).unwrap().is_empty());
        assert!(idx.rows_containing_all(0, &["zzz"]).unwrap().is_empty());
        assert!(idx.rows_containing_all(0, &[]).is_none());
    }

    #[test]
    fn conjunctive_tables() {
        let idx = index();
        assert_eq!(idx.tables_containing_all(&["data"]), vec![0, 1]);
        assert_eq!(idx.tables_containing_all(&["data", "probabilistic"]), vec![0]);
        assert!(idx.tables_containing_all(&["data", "zzz"]).is_empty());
        assert!(idx.tables_containing_all(&[]).is_empty());
    }
}
