//! The inverted index proper.

use std::collections::HashMap;

use relengine::{Database, RowId, TableId};

use crate::tokenizer::tokenize;

/// Inverted index over all text attributes of a database.
///
/// For each term it records, per table, the sorted distinct row ids whose text
/// attributes contain the term. Built once, offline, like the paper's Lucene
/// indexes; query-time lookups are hash probes.
#[derive(Debug, Clone, Default)]
pub struct InvertedIndex {
    /// term → (sorted by table id) list of per-table posting lists.
    postings: HashMap<String, Vec<(TableId, Vec<RowId>)>>,
    /// Number of indexed (table, row) pairs, for reporting.
    indexed_rows: usize,
    /// Number of distinct terms.
    term_count: usize,
}

impl InvertedIndex {
    /// Builds the index over every text column of every table in `db`.
    pub fn build(db: &Database) -> Self {
        // term → table → rows (dedup within a row across columns).
        let mut map: HashMap<String, HashMap<TableId, Vec<RowId>>> = HashMap::new();
        let mut indexed_rows = 0usize;
        for (tid, table) in db.tables() {
            let text_cols = table.schema().text_columns();
            if text_cols.is_empty() {
                continue;
            }
            for (rid, row) in table.iter() {
                indexed_rows += 1;
                let mut row_terms: Vec<String> = Vec::new();
                for &c in &text_cols {
                    if let Some(s) = row[c].as_text() {
                        row_terms.extend(tokenize(s));
                    }
                }
                row_terms.sort_unstable();
                row_terms.dedup();
                for term in row_terms {
                    map.entry(term).or_default().entry(tid).or_default().push(rid);
                }
            }
        }
        let term_count = map.len();
        let postings = map
            .into_iter()
            .map(|(term, by_table)| {
                let mut lists: Vec<(TableId, Vec<RowId>)> = by_table.into_iter().collect();
                lists.sort_unstable_by_key(|(t, _)| *t);
                // Rows were visited in ascending rid order, so lists are sorted.
                (term, lists)
            })
            .collect();
        InvertedIndex { postings, indexed_rows, term_count }
    }

    /// Tables whose text contains the term (whole-token match), ascending.
    pub fn tables_containing(&self, term: &str) -> Vec<TableId> {
        let needle = normalize(term);
        self.postings
            .get(&needle)
            .map(|lists| lists.iter().map(|(t, _)| *t).collect())
            .unwrap_or_default()
    }

    /// Sorted row ids of `table` containing the term; empty if none.
    pub fn rows_containing(&self, table: TableId, term: &str) -> &[RowId] {
        let needle = normalize(term);
        self.postings
            .get(&needle)
            .and_then(|lists| {
                lists
                    .binary_search_by_key(&table, |(t, _)| *t)
                    .ok()
                    .map(|i| lists[i].1.as_slice())
            })
            .unwrap_or(&[])
    }

    /// Whether the term occurs anywhere in the database.
    pub fn contains_term(&self, term: &str) -> bool {
        self.postings.contains_key(&normalize(term))
    }

    /// Number of distinct indexed terms.
    pub fn term_count(&self) -> usize {
        self.term_count
    }

    /// Number of (table, row) pairs visited during the build.
    pub fn indexed_rows(&self) -> usize {
        self.indexed_rows
    }

    /// Document frequency of a term in one table.
    pub fn doc_frequency(&self, table: TableId, term: &str) -> usize {
        self.rows_containing(table, term).len()
    }
}

/// Queries arrive as raw user keywords; normalize them through the same
/// tokenizer so "Saffron," and "saffron" meet in the index. A multi-token
/// input keeps only its first token (keywords are single terms in the paper).
fn normalize(term: &str) -> String {
    tokenize(term).into_iter().next().unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    fn db() -> Database {
        let mut b = DatabaseBuilder::new();
        b.table("person")
            .column("id", DataType::Int)
            .column("name", DataType::Text);
        b.table("pub")
            .column("id", DataType::Int)
            .column("title", DataType::Text)
            .column("abstract", DataType::Text);
        b.table("writes")
            .column("pid", DataType::Int)
            .column("pubid", DataType::Int);
        let mut db = b.finish().unwrap();
        db.insert_values("person", vec![Value::Int(1), Value::text("Jennifer Widom")]).unwrap();
        db.insert_values("person", vec![Value::Int(2), Value::text("David DeWitt")]).unwrap();
        db.insert_values(
            "pub",
            vec![
                Value::Int(1),
                Value::text("Trio: A System for Data Uncertainty"),
                Value::text("we present trio, managing uncertainty and lineage"),
            ],
        )
        .unwrap();
        db.insert_values(
            "pub",
            vec![Value::Int(2), Value::text("Keyword Search in Databases"), Value::Null],
        )
        .unwrap();
        db.insert_values("writes", vec![Value::Int(1), Value::Int(1)]).unwrap();
        db
    }

    #[test]
    fn tables_containing_terms() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.tables_containing("widom"), vec![0]);
        assert_eq!(idx.tables_containing("trio"), vec![1]);
        assert_eq!(idx.tables_containing("keyword"), vec![1]);
        assert!(idx.tables_containing("nonexistent").is_empty());
    }

    #[test]
    fn case_and_punctuation_insensitive_lookup() {
        let idx = InvertedIndex::build(&db());
        assert_eq!(idx.tables_containing("WIDOM"), vec![0]);
        assert_eq!(idx.tables_containing("Trio,"), vec![1]);
    }

    #[test]
    fn rows_containing_and_dedup_across_columns() {
        let idx = InvertedIndex::build(&db());
        // "trio" appears in both title and abstract of pub row 0: one posting.
        assert_eq!(idx.rows_containing(1, "trio"), &[0]);
        assert_eq!(idx.rows_containing(1, "keyword"), &[1]);
        assert_eq!(idx.rows_containing(0, "trio"), &[] as &[RowId]);
        assert_eq!(idx.doc_frequency(1, "trio"), 1);
    }

    #[test]
    fn relationship_tables_not_indexed() {
        let idx = InvertedIndex::build(&db());
        // 2 person + 2 pub rows indexed; writes has no text columns.
        assert_eq!(idx.indexed_rows(), 4);
        assert!(idx.tables_containing("1").is_empty());
    }

    #[test]
    fn contains_term() {
        let idx = InvertedIndex::build(&db());
        assert!(idx.contains_term("uncertainty"));
        assert!(!idx.contains_term("zanzibar"));
        assert!(idx.term_count() > 5);
    }

    #[test]
    fn null_text_skipped() {
        let idx = InvertedIndex::build(&db());
        // pub row 1 has NULL abstract; still indexed via its title.
        assert_eq!(idx.rows_containing(1, "databases"), &[1]);
    }

    #[test]
    fn empty_database() {
        let db = DatabaseBuilder::new().finish().unwrap();
        let idx = InvertedIndex::build(&db);
        assert_eq!(idx.term_count(), 0);
        assert!(!idx.contains_term("x"));
    }
}

impl InvertedIndex {
    /// Sorted row ids of `table` containing **all** the given terms
    /// (conjunctive tuple-set semantics, DISCOVER's `R^{k1,k2}`). Posting
    /// lists are intersected smallest-first; an unknown term short-circuits
    /// to empty. With no terms, returns `None` (the free tuple set — every
    /// row — is not materialized).
    pub fn rows_containing_all(&self, table: TableId, terms: &[&str]) -> Option<Vec<RowId>> {
        if terms.is_empty() {
            return None;
        }
        let mut lists: Vec<&[RowId]> =
            terms.iter().map(|t| self.rows_containing(table, t)).collect();
        lists.sort_unstable_by_key(|l| l.len());
        let mut result: Vec<RowId> = lists[0].to_vec();
        for list in &lists[1..] {
            if result.is_empty() {
                break;
            }
            result.retain(|rid| list.binary_search(rid).is_ok());
        }
        Some(result)
    }

    /// Tables containing **all** the given terms (in possibly different
    /// rows), ascending. Empty input means every table qualifies vacuously —
    /// returns empty instead to avoid surprises.
    pub fn tables_containing_all(&self, terms: &[&str]) -> Vec<TableId> {
        let mut iter = terms.iter();
        let Some(first) = iter.next() else { return Vec::new() };
        let mut tables = self.tables_containing(first);
        for t in iter {
            let next = self.tables_containing(t);
            tables.retain(|x| next.binary_search(x).is_ok());
        }
        tables
    }
}

#[cfg(test)]
mod multiterm_tests {
    use super::*;
    use relengine::{DataType, DatabaseBuilder, Value};

    fn index() -> InvertedIndex {
        let mut b = DatabaseBuilder::new();
        b.table("topic").column("id", DataType::Int).column("name", DataType::Text);
        b.table("pub").column("id", DataType::Int).column("title", DataType::Text);
        let mut db = b.finish().unwrap();
        for (id, name) in [
            (1, "Probabilistic Data"),
            (2, "Stream Data"),
            (3, "Histograms"),
            (4, "Probabilistic Streams"),
        ] {
            db.insert_values("topic", vec![Value::Int(id), Value::text(name)]).unwrap();
        }
        db.insert_values("pub", vec![Value::Int(1), Value::text("Data Sketches")]).unwrap();
        InvertedIndex::build(&db)
    }

    #[test]
    fn conjunctive_rows() {
        let idx = index();
        assert_eq!(
            idx.rows_containing_all(0, &["probabilistic", "data"]).unwrap(),
            vec![0]
        );
        assert_eq!(idx.rows_containing_all(0, &["data"]).unwrap(), vec![0, 1]);
        assert!(idx.rows_containing_all(0, &["data", "histograms"]).unwrap().is_empty());
        assert!(idx.rows_containing_all(0, &["zzz"]).unwrap().is_empty());
        assert!(idx.rows_containing_all(0, &[]).is_none());
    }

    #[test]
    fn conjunctive_tables() {
        let idx = index();
        assert_eq!(idx.tables_containing_all(&["data"]), vec![0, 1]);
        assert_eq!(idx.tables_containing_all(&["data", "probabilistic"]), vec![0]);
        assert!(idx.tables_containing_all(&["data", "zzz"]).is_empty());
        assert!(idx.tables_containing_all(&[]).is_empty());
    }
}
