//! # datagen — datasets and workloads for the reproduction
//!
//! Two datasets back the paper's narrative and evaluation:
//!
//! * [`toydb`] — the product database of Figure 2 (Items, Product Type,
//!   Colors, Attributes), reproduced row for row. It drives the running
//!   example: the keyword query *"saffron scented candle"* maps to two
//!   structured queries, both non-answers, whose maximal alive sub-queries
//!   the paper derives by hand. Tests assert our system produces exactly
//!   those.
//! * [`dblife`] — a seeded synthetic stand-in for the DBLife snapshot the
//!   paper evaluates on (801,189 tuples, 14 tables: 5 entity tables carrying
//!   text, 9 relationship tables carrying only keys, star-shaped around
//!   Person). The real snapshot is not publicly distributable, so the
//!   generator reproduces its *structural* properties: the same 14-table
//!   schema, text confined to entity tables, a skewed degree distribution,
//!   and a planted vocabulary that makes the paper's ten benchmark queries
//!   ([`workload`]) behave qualitatively the same — e.g. "DeRose VLDB" is
//!   empty at the two-table level but connects through longer join paths,
//!   and "Washington" occurs in three different entity tables.
//!
//! Scale is configurable; [`dblife::DblifeConfig::paper_scale`] approximates
//! the original tuple count, while the `tiny`/`small`/`medium` presets keep
//! tests and benchmarks fast.

pub mod dblife;
pub mod rng;
pub mod toydb;
pub mod workload;

pub use dblife::{generate_dblife, DblifeConfig};
pub use toydb::product_database;
pub use workload::{paper_queries, WorkloadQuery};
